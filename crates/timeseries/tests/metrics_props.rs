//! Property suite for the forecast accuracy metrics — the laws the
//! degradation harness leans on when it feeds repaired (sanitized)
//! series back into evaluation: boundedness, symmetry, zero-actual
//! handling, and NaN signalling on malformed input.

use eadrl_ptest::prelude::*;
use eadrl_timeseries::metrics::{mae, mape, mse, nrmse, r2, rmse, smape};

/// Unzips generated `(actual, predicted)` pairs into metric arguments.
fn unzip(pairs: &[(f64, f64)]) -> (Vec<f64>, Vec<f64>) {
    pairs.iter().copied().unzip()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn smape_is_bounded_in_0_200(
        pairs in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..48),
    ) {
        let (a, p) = unzip(&pairs);
        let v = smape(&a, &p);
        prop_assert!(
            (0.0..=200.0 + 1e-9).contains(&v),
            "smape {v} escaped [0, 200] for {pairs:?}"
        );
    }

    #[test]
    fn smape_is_symmetric_in_its_arguments(
        pairs in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 1..40),
    ) {
        let (a, p) = unzip(&pairs);
        // Both |a - p| and the mean-magnitude denominator are symmetric,
        // and the summation order is identical — so the symmetry holds
        // bitwise, not just approximately.
        prop_assert_eq!(smape(&a, &p).to_bits(), smape(&p, &a).to_bits());
    }

    #[test]
    fn mape_skips_zero_actuals_without_shifting_the_rest(
        pairs in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 1..24),
        junk in prop::collection::vec(-1e4f64..1e4, 1..8),
    ) {
        let (a, p) = unzip(&pairs);
        // Interleave zero-actual pairs (carrying arbitrary predictions)
        // through the clean stream: they must be skipped, leaving the
        // metric bitwise equal to the zero-free computation.
        let mut a_padded = Vec::new();
        let mut p_padded = Vec::new();
        for (i, &j) in junk.iter().enumerate() {
            a_padded.push(0.0);
            p_padded.push(j);
            if i < a.len() {
                a_padded.push(a[i]);
                p_padded.push(p[i]);
            }
        }
        a_padded.extend_from_slice(&a[junk.len().min(a.len())..]);
        p_padded.extend_from_slice(&p[junk.len().min(p.len())..]);
        prop_assert_eq!(
            mape(&a_padded, &p_padded).to_bits(),
            mape(&a, &p).to_bits(),
            "zero-actual pairs must not contribute: {:?} vs {:?}",
            mape(&a_padded, &p_padded),
            mape(&a, &p)
        );
    }

    #[test]
    fn mape_of_all_zero_actuals_is_nan(
        predicted in prop::collection::vec(-1e4f64..1e4, 1..16),
    ) {
        let zeros = vec![0.0; predicted.len()];
        prop_assert!(mape(&zeros, &predicted).is_nan());
    }

    #[test]
    fn nrmse_stays_finite_on_constant_series(
        level in -1e3f64..1e3,
        noise in prop::collection::vec(-10.0f64..10.0, 2..32),
    ) {
        // A constant actual series has zero range — the normalizer must
        // fall back instead of dividing by zero (the degenerate case the
        // paper cites as destabilizing error-magnitude rewards).
        let actual = vec![level; noise.len()];
        let predicted: Vec<f64> = noise.iter().map(|n| level + n).collect();
        let v = nrmse(&actual, &predicted);
        prop_assert!(v.is_finite(), "nrmse {v} not finite at level {level}");
        prop_assert!(v >= 0.0);
    }

    #[test]
    fn every_metric_signals_nan_on_length_mismatch(
        a in prop::collection::vec(-1e3f64..1e3, 2..16),
        extra in 1usize..4,
    ) {
        let p = vec![0.0; a.len() + extra];
        prop_assert!(mse(&a, &p).is_nan());
        prop_assert!(rmse(&a, &p).is_nan());
        prop_assert!(nrmse(&a, &p).is_nan());
        prop_assert!(mae(&a, &p).is_nan());
        prop_assert!(mape(&a, &p).is_nan());
        prop_assert!(smape(&a, &p).is_nan());
        prop_assert!(r2(&a, &p).is_nan());
    }

    #[test]
    fn every_metric_signals_nan_on_empty_input(_x in 0u64..1) {
        prop_assert!(mse(&[], &[]).is_nan());
        prop_assert!(rmse(&[], &[]).is_nan());
        prop_assert!(nrmse(&[], &[]).is_nan());
        prop_assert!(mae(&[], &[]).is_nan());
        prop_assert!(mape(&[], &[]).is_nan());
        prop_assert!(smape(&[], &[]).is_nan());
        prop_assert!(r2(&[], &[]).is_nan());
    }
}
