//! Repo-owned property-testing harness.
//!
//! The workspace's property suites state algebraic laws ("LU solve
//! satisfies the system", "ranks sum to the triangular number") and
//! check them against many randomly generated inputs. This crate is the
//! engine behind those suites: composable [`Strategy`] values describe
//! input distributions, and the [`proptest!`] macro turns a block of
//! `fn name(x in strategy)` definitions into ordinary `#[test]`
//! functions that run each body over `cases` generated inputs.
//!
//! The macro surface is deliberately proptest-compatible (`proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! `prop::collection::vec`, `Strategy::prop_map`) so the suites read
//! like standard Rust property tests, but the implementation is this
//! repo's own, built on [`eadrl_rng::DetRng`] and `std` alone — no
//! external framework, no build-time dependency surface.
//!
//! # Determinism
//!
//! Case generation is seeded from the test's module path and name, so a
//! failing case reproduces exactly on every machine and every rerun:
//! the failure report's case number plus the frozen [`DetRng`] stream
//! pin the offending input forever. The flip side — documented rather
//! than hidden — is that reruns never explore fresh inputs; raise
//! `ProptestConfig::with_cases` when a law deserves a wider sweep.
//!
//! # Differences from a full property-testing framework
//!
//! * **No shrinking.** A failure reports the complete generated input
//!   (inputs here are small vectors and scalars, so minimization adds
//!   little); the deterministic seed makes the case trivially
//!   re-runnable under a debugger.
//! * **Strategies are sampling rules only** — uniform ranges, fixed- or
//!   ranged-length vectors, tuples, and `prop_map` transforms cover
//!   every suite in this workspace.
//!
//! # Example
//!
//! ```
//! use eadrl_ptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!
//!     // In a test module, also put `#[test]` on each property.
//!     fn sum_is_order_independent(v in prop::collection::vec(-10.0f64..10.0, 1..8)) {
//!         let forward: f64 = v.iter().sum();
//!         let backward: f64 = v.iter().rev().sum();
//!         prop_assert!((forward - backward).abs() < 1e-9);
//!     }
//! }
//! # sum_is_order_independent();
//! ```

use eadrl_rng::DetRng;

/// How many cases a [`proptest!`] block runs per property, and the
/// reject budget that [`prop_assume!`] draws on.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — enough to exercise branch structure in CI without
    /// dominating suite runtime; laws that warrant more say so
    /// explicitly via [`ProptestConfig::with_cases`].
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass. Produced by the
/// `prop_assert*` / `prop_assume!` macros; consumed by the harness.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is violated for this input: the test fails.
    Fail(String),
    /// The input does not satisfy a precondition
    /// ([`prop_assume!`]): the case is discarded and regenerated.
    Reject,
}

impl TestCaseError {
    /// Builds the failure variant; used by the assertion macros.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A rule for generating random values of `Self::Value`.
///
/// Implemented for numeric ranges (uniform), tuples of strategies, and
/// the combinators in [`collection`]; arbitrary derived strategies come
/// from [`Strategy::prop_map`].
pub trait Strategy {
    /// The type of generated values. `Debug` so failing cases can be
    /// reported verbatim.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut DetRng) -> Self::Value;

    /// A strategy that generates from `self` and pipes the value
    /// through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut DetRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    /// Uniform in `[start, end)`.
    fn generate(&self, rng: &mut DetRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    /// Uniform in `[start, end)`.
    fn generate(&self, rng: &mut DetRng) -> f32 {
        rng.random_range(self.start..self.end)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            /// Uniform in `[start, end)`.
            fn generate(&self, rng: &mut DetRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            /// Uniform in `[start, end]`.
            fn generate(&self, rng: &mut DetRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*}
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            /// Generates each component in order.
            fn generate(&self, rng: &mut DetRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*}
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategies over collections.
pub mod collection {
    use super::{DetRng, Strategy};

    /// Length specification for [`vec()`]: a fixed `usize` or a
    /// half-open `Range<usize>` sampled per case.
    #[derive(Debug, Clone, Copy)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn length in `[min, max)`.
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Between(r.start, r.end)
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut DetRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Between(lo, hi) => rng.random_range(lo..hi),
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` whose elements come from `elem` and whose length is
    /// given by `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Derives the deterministic per-test seed from its fully qualified
/// name (FNV-1a). Public for the [`proptest!`] expansion, not for
/// direct use.
#[doc(hidden)]
#[must_use]
pub fn seed_rng_for(test_path: &str) -> DetRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    DetRng::seed_from_u64(h)
}

/// Runs one property over `config.cases` generated inputs.
///
/// `gen` produces the input tuple; `run` checks it. Rejected cases
/// ([`prop_assume!`]) are regenerated without counting toward the case
/// budget, up to 64 rejects per accepted case, after which the
/// precondition is considered unsatisfiable and the test fails.
/// Public for the [`proptest!`] expansion, not for direct use.
#[doc(hidden)]
pub fn run_property<V: std::fmt::Debug>(
    test_path: &str,
    names: &str,
    config: &ProptestConfig,
    gen: impl Fn(&mut DetRng) -> V,
    run: impl Fn(&V) -> Result<(), TestCaseError>,
) {
    let mut rng = seed_rng_for(test_path);
    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    let reject_budget = u64::from(config.cases) * 64;
    while accepted < config.cases {
        let values = gen(&mut rng);
        match run(&values) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "property '{test_path}' rejected {rejected} inputs for {accepted} \
                     accepted — the prop_assume! precondition is effectively unsatisfiable",
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{test_path}' failed at case {accepted}: {msg}\n\
                     inputs {names} =\n{values:#?}\n\
                     (deterministic: rerun this test to replay the identical case)",
                );
            }
        }
    }
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn law(x in 0.0f64..1.0, v in prop::collection::vec(0u64..9, 1..5)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
///
/// Each `fn` becomes a plain `#[test]` running its body over generated
/// inputs; the optional `#![proptest_config(..)]` header applies to
/// every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Expansion target of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    stringify!(($($pat),+)),
                    &config,
                    |rng| ($($crate::Strategy::generate(&($strat), rng),)+),
                    |values| {
                        let ($($pat),+,) = ::core::clone::Clone::clone(values);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the
/// harness reports the generated inputs and panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discards the current case when its precondition does not hold; the
/// harness regenerates a fresh input instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The one-line import for property suites:
/// `use eadrl_ptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror so call sites read `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::seed_rng_for;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn float_ranges_respect_bounds(x in -3.0f64..7.0) {
            prop_assert!((-3.0..7.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_the_size_range(
            v in prop::collection::vec(0u64..100, 2..9),
        ) {
            prop_assert!((2..9).contains(&v.len()), "bad len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn fixed_length_vecs_are_exact(v in prop::collection::vec(-1.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn tuples_and_nested_vecs_compose(
            rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 1..4),
            pair in (0usize..10, -1.0f64..1.0),
        ) {
            prop_assert!(rows.iter().all(|r| r.len() == 3));
            prop_assert!(pair.0 < 10);
        }

        #[test]
        fn prop_map_transforms_values(
            doubled in (0u64..50).prop_map(|x| x * 2),
        ) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }

        #[test]
        fn assume_discards_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mut_bindings_are_supported(mut v in prop::collection::vec(0u64..5, 1..6)) {
            v.push(7);
            prop_assert_eq!(*v.last().expect("just pushed"), 7);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_properties_panic_with_the_inputs(x in 0u64..10) {
            prop_assert!(x > 100, "x was {x}");
        }

        #[test]
        #[should_panic(expected = "effectively unsatisfiable")]
        fn impossible_assumptions_exhaust_the_reject_budget(x in 0u64..10) {
            prop_assume!(x > 100);
        }
    }

    #[test]
    fn seeds_are_stable_per_test_name() {
        let mut a = seed_rng_for("crate::mod::test_a");
        let mut b = seed_rng_for("crate::mod::test_a");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = seed_rng_for("crate::mod::test_b");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        use crate::Strategy;
        let strat = crate::collection::vec(0.0f64..1.0, 2..6);
        let mut r1 = seed_rng_for("det");
        let mut r2 = seed_rng_for("det");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
