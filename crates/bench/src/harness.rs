//! Repo-owned micro-benchmark harness behind `cargo bench`.
//!
//! The bench targets in `benches/` measure the quantities discussed in
//! the paper's runtime sections (Table III latencies, training cost).
//! This module is the engine: it calibrates an iteration count per
//! benchmark, collects timed samples, and prints a per-benchmark
//! summary — real measurements with `std::time` alone, no external
//! benchmarking framework (`std::time` is fair game here: `crates/bench`
//! is one of the two crates where the `determinism` lint permits
//! wall-clock reads, because runtime *is* the measured quantity).
//!
//! Scope is deliberately small compared to a statistical benchmarking
//! suite: no outlier classification, no regression tracking against
//! saved baselines — median/mean/min over a fixed sample count, printed
//! to stdout. The numbers feed the relative comparisons in
//! `EXPERIMENTS.md` (EA-DRL forward pass vs. baseline weight updates),
//! which depend on ratios between benchmarks run on the same machine,
//! not on absolute wall-clock claims.
//!
//! ```no_run
//! use eadrl_bench::harness::Harness;
//! use std::hint::black_box;
//!
//! let mut h = Harness::default().sample_size(20);
//! let mut group = h.benchmark_group("example");
//! group.bench_function("sum", |b| {
//!     b.iter(|| black_box((0..1000u64).sum::<u64>()))
//! });
//! group.finish();
//! ```

use std::time::{Duration, Instant};

/// Top-level bench configuration and entry point (one per bench
/// binary). Construct with [`Harness::default`], adjust via the
/// builder methods, then open [`benchmark_group`](Self::benchmark_group)s.
#[derive(Debug, Clone)]
pub struct Harness {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Harness {
    /// 2 s of measurement and 0.5 s of warm-up per benchmark, 20
    /// samples — the budget every bench target in this workspace uses.
    fn default() -> Self {
        Harness {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

impl Harness {
    /// Total measured time budget per benchmark (split across samples).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before measurement starts, which
    /// also calibrates the per-sample iteration count.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks; results print as
    /// `group/benchmark` lines.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        let name = name.into();
        println!("\n## {name}");
        Group {
            harness: self,
            name,
            sample_size: None,
            completed: Vec::new(),
        }
    }
}

/// A named set of benchmarks sharing the harness budget.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: Option<usize>,
    completed: Vec<(String, Summary)>,
}

impl Group<'_> {
    /// Overrides the harness sample count for this group (used by the
    /// slow whole-episode benchmarks).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Measures `f`'s routine and prints one summary line.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            measurement_time: self.harness.measurement_time,
            warm_up_time: self.harness.warm_up_time,
            sample_size: self.sample_size.unwrap_or(self.harness.sample_size),
            result: None,
        };
        f(&mut bencher);
        let id = id.into();
        match bencher.result {
            Some(m) => {
                println!("{}/{}  {}", self.name, id, m.render());
                self.completed.push((id, m.summary()));
            }
            None => println!(
                "{}/{}  (no measurement: bencher closure never called iter)",
                self.name, id,
            ),
        }
        self
    }

    /// Summaries of the benchmarks completed so far, in run order —
    /// for bench binaries that also emit a machine-readable report.
    pub fn measurements(&self) -> &[(String, Summary)] {
        &self.completed
    }

    /// Marks the group complete, returning every benchmark's summary in
    /// run order (call sites that only want the printed table may drop
    /// the return value).
    pub fn finish(self) -> Vec<(String, Summary)> {
        self.completed
    }
}

/// Public per-iteration timing summary of one benchmark, in
/// nanoseconds — what [`Group::finish`] hands back for JSON reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
}

/// Per-iteration timing summary, in nanoseconds.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

impl Measurement {
    fn summary(&self) -> Summary {
        Summary {
            median_ns: self.median_ns,
            mean_ns: self.mean_ns,
            min_ns: self.min_ns,
        }
    }

    fn render(&self) -> String {
        format!(
            "median {:>10}  mean {:>10}  min {:>10}  ({} samples x {} iters)",
            fmt_ns(self.median_ns),
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns),
            self.samples,
            self.iters_per_sample,
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Handed to each benchmark closure; call [`iter`](Self::iter) or
/// [`iter_batched`](Self::iter_batched) exactly once with the routine
/// to measure.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine` directly: warm-up calibrates how many calls
    /// fit in one sample, then each sample times that many calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up doubles as calibration: count how many calls fit in
        // the warm-up window (at least one call always runs).
        let warm_start = Instant::now();
        let mut warm_calls: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warm_calls += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_calls as f64;

        // Split the measurement budget evenly across samples.
        let target_sample_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((target_sample_ns / est_ns.max(1.0)).round() as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some(summarize(&mut per_iter_ns, iters));
    }

    /// Measures `routine` on a fresh input from `setup` each sample;
    /// `setup` time is excluded. Meant for routines that consume or
    /// mutate their input (model fits, full training episodes), which
    /// are milliseconds-scale, so each sample times a single call.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        // One warm-up invocation to populate caches and page in code.
        std::hint::black_box(routine(setup()));

        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            per_iter_ns.push(start.elapsed().as_nanos() as f64);
        }
        self.result = Some(summarize(&mut per_iter_ns, 1));
    }
}

fn summarize(per_iter_ns: &mut [f64], iters: u64) -> Measurement {
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = per_iter_ns.len();
    let median_ns = if n % 2 == 1 {
        per_iter_ns[n / 2]
    } else {
        0.5 * (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2])
    };
    Measurement {
        median_ns,
        mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
        min_ns: per_iter_ns[0],
        samples: n,
        iters_per_sample: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_reports() {
        let mut h = Harness::default()
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(5);
        let mut group = h.benchmark_group("harness_selftest");
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        assert_eq!(group.measurements().len(), 1);
        let summaries = group.finish();
        assert!(calls > 5, "routine should run many times, ran {calls}");
        assert_eq!(summaries[0].0, "counting");
        assert!(summaries[0].1.min_ns <= summaries[0].1.median_ns);
        assert!(summaries[0].1.median_ns > 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut h = Harness::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(4);
        let mut group = h.benchmark_group("harness_selftest_batched");
        let mut setups = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 16]
                },
                |v| v.iter().sum::<u64>(),
            )
        });
        group.finish();
        // One warm-up setup + one per sample.
        assert_eq!(setups, 5);
    }

    #[test]
    fn group_sample_size_override_wins() {
        let mut h = Harness::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(7);
        let mut group = h.benchmark_group("override");
        group.sample_size(3);
        let mut setups = 0u64;
        group.bench_function("x", |b| {
            b.iter_batched(|| setups += 1, |()| std::hint::black_box(0u64))
        });
        assert_eq!(setups, 4); // warm-up + 3 samples
    }

    #[test]
    fn formatting_picks_sensible_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.300 us");
        assert_eq!(fmt_ns(12_300_000.0), "12.300 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
