//! Seed-robustness check for the Table II headline: repeats the full
//! 20-dataset sweep under several RNG seeds (new noise realizations for
//! the synthetic series, new initializations for every stochastic model)
//! and reports EA-DRL's average rank per seed.
//!
//! ```text
//! cargo run -p eadrl-bench --release --bin robustness [-- --quick]
//! ```

use eadrl_bench::{evaluate_all, Scale};
use eadrl_eval::{average_ranks, render_table};

fn main() {
    let base = Scale::from_args();
    let seeds = [42u64, 1337, 9001];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut eadrl_means = Vec::new();

    for &seed in &seeds {
        let scale = Scale { seed, ..base };
        eprintln!("seed {seed}...");
        let evals = evaluate_all(scale);
        let names: Vec<String> = evals[0].results.iter().map(|r| r.name.clone()).collect();
        let scores: Vec<Vec<f64>> = evals
            .iter()
            .map(|e| names.iter().map(|n| e.result(n).unwrap().rmse).collect())
            .collect();
        let summary = average_ranks(&names, &scores);
        let ea = summary
            .iter()
            .find(|s| s.name == "EA-DRL")
            .expect("EA-DRL ran");
        let position = summary.iter().position(|s| s.name == "EA-DRL").unwrap() + 1;
        let best = &summary[0];
        eadrl_means.push(ea.mean);
        rows.push(vec![
            seed.to_string(),
            format!("{:.2} ± {:.1}", ea.mean, ea.std),
            format!("{position} of {}", names.len()),
            format!("{} ({:.2})", best.name, best.mean),
        ]);
    }

    println!("\nSeed robustness of the Table II headline (full 20-dataset sweep)\n");
    println!(
        "{}",
        render_table(
            &["seed", "EA-DRL avg rank", "position", "best method (rank)"],
            &rows,
        )
    );
    let mean = eadrl_means.iter().sum::<f64>() / eadrl_means.len() as f64;
    println!("EA-DRL mean-of-means across seeds: {mean:.2} (paper: 2.89 on their data)");
}
