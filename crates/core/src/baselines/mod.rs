//! Baseline ensemble-combination methods from the paper's evaluation
//! (§III, "State-of-the-art Methods").
//!
//! * [`simple`] — **SE** (static arithmetic-mean ensemble) and **SWE**
//!   (sliding-window inverse-error weighting),
//! * [`opera`] — the four online expert-aggregation rules of the `opera`
//!   R package: **EWA**, **FS** (fixed share), **OGD** (online gradient
//!   descent) and **MLPOL** (polynomially weighted averages with multiple
//!   learning rates),
//! * [`stacking`] — **Stacking** with a random-forest meta-learner,
//! * [`demsc`] — the dynamic-selection family: **Top.sel**, **Clus** and
//!   the drift-aware **DEMSC**.

pub mod demsc;
pub mod opera;
pub mod simple;
pub mod stacking;

pub use demsc::{Clus, Demsc, TopSel};
pub use opera::{Ewa, FixedShare, MlPol, Ogd};
pub use simple::{SlidingWindowEnsemble, StaticEnsemble};
pub use stacking::Stacking;

use crate::combiner::Combiner;

/// All baseline combiners with the paper's default settings, for a pool of
/// `m` models and combination window `omega` (Table II uses ω = 10).
pub fn all_baselines(omega: usize, seed: u64) -> Vec<Box<dyn Combiner>> {
    vec![
        Box::new(StaticEnsemble::new()),
        Box::new(SlidingWindowEnsemble::new(omega)),
        Box::new(Ewa::new(0.5)),
        Box::new(FixedShare::new(0.5, 0.05)),
        Box::new(Ogd::new(0.5)),
        Box::new(MlPol::new()),
        Box::new(Stacking::new(25, 8, seed)),
        Box::new(Clus::new(omega, 4, seed)),
        Box::new(TopSel::new(omega, 0.25)),
        Box::new(Demsc::new(omega, 0.25, 4, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::run_combiner;
    use eadrl_timeseries::metrics::rmse;

    /// Synthetic scenario with a mid-stream regime switch: model 0 is good
    /// in the first half, model 1 in the second, model 2 is always bad.
    /// Adaptive combiners must beat the static ensemble here.
    pub(crate) fn regime_switch_scenario() -> (Vec<Vec<f64>>, Vec<f64>) {
        let n = 240;
        let actuals: Vec<f64> = (0..n)
            .map(|t| (t as f64 / 9.0).sin() * 4.0 + 10.0)
            .collect();
        let preds: Vec<Vec<f64>> = actuals
            .iter()
            .enumerate()
            .map(|(t, &a)| {
                let wiggle = ((t * 7) % 13) as f64 / 13.0 - 0.5;
                if t < n / 2 {
                    vec![a + 0.1 * wiggle, a + 3.0 + wiggle, a - 8.0]
                } else {
                    vec![a + 3.0 - wiggle, a + 0.1 * wiggle, a - 8.0]
                }
            })
            .collect();
        (preds, actuals)
    }

    #[test]
    fn all_baselines_run_and_are_finite() {
        let (preds, actuals) = regime_switch_scenario();
        let (warm_p, online_p) = preds.split_at(60);
        let (warm_a, online_a) = actuals.split_at(60);
        for mut combiner in all_baselines(10, 3) {
            combiner.warm_up(warm_p, warm_a);
            let out = run_combiner(combiner.as_mut(), online_p, online_a);
            assert_eq!(out.len(), online_a.len());
            assert!(
                out.iter().all(|v| v.is_finite()),
                "{} produced non-finite forecasts",
                combiner.name()
            );
            let err = rmse(online_a, &out);
            assert!(
                err < 8.0,
                "{} rmse {err} worse than the uniformly-bad model",
                combiner.name()
            );
        }
    }

    #[test]
    fn adaptive_methods_beat_static_on_regime_switch() {
        let (preds, actuals) = regime_switch_scenario();
        let (warm_p, online_p) = preds.split_at(60);
        let (warm_a, online_a) = actuals.split_at(60);
        let score = |mut c: Box<dyn Combiner>| {
            c.warm_up(warm_p, warm_a);
            let out = run_combiner(c.as_mut(), online_p, online_a);
            rmse(online_a, &out)
        };
        let static_err = score(Box::new(StaticEnsemble::new()));
        let swe_err = score(Box::new(SlidingWindowEnsemble::new(10)));
        let fs_err = score(Box::new(FixedShare::new(0.5, 0.05)));
        assert!(swe_err < static_err, "SWE {swe_err} vs SE {static_err}");
        // Fixed share exists precisely to track the best expert across
        // regime switches (ML-Poly, by contrast, can legitimately be slow
        // here: its incumbent carries a large positive-regret buffer).
        assert!(fs_err < static_err, "FS {fs_err} vs SE {static_err}");
    }

    #[test]
    fn baseline_names_match_paper_labels() {
        let names: Vec<String> = all_baselines(10, 0)
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        for expect in [
            "SE", "SWE", "EWA", "FS", "OGD", "MLPOL", "Stacking", "Clus", "Top.sel", "DEMSC",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
    }
}
