//! Friedman test and Nemenyi critical difference (Demšar, JMLR 2006) —
//! the classical frequentist companions to the paper's Bayesian tests.
//!
//! The paper's rank-distribution analysis (Table II's "Avg. Rank" column)
//! is exactly the statistic the Friedman test formalizes: are the methods'
//! average ranks across datasets consistent with all methods being
//! equivalent? When the Friedman test rejects, the Nemenyi critical
//! difference says how far apart two average ranks must be for the pair
//! to differ significantly.

use crate::ranks::rank_with_ties;
use crate::special::incomplete_beta;

/// Result of the Friedman test over a datasets × methods loss matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FriedmanResult {
    /// Friedman chi-square statistic (with ties handled by mid-ranks).
    pub chi_square: f64,
    /// Iman–Davenport F correction of the statistic (less conservative).
    pub f_statistic: f64,
    /// Approximate p-value of the F statistic.
    pub p_value: f64,
    /// Average rank per method (same order as the input columns).
    pub average_ranks: Vec<f64>,
    /// Number of datasets (blocks).
    pub n_datasets: usize,
    /// Number of methods (treatments).
    pub n_methods: usize,
}

impl FriedmanResult {
    /// True when the test rejects method equivalence at level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs the Friedman test on `scores[dataset][method]` (lower = better).
///
/// Returns `None` for degenerate shapes (< 2 datasets or < 2 methods, or a
/// ragged matrix).
pub fn friedman_test(scores: &[Vec<f64>]) -> Option<FriedmanResult> {
    let n = scores.len();
    let k = scores.first()?.len();
    if n < 2 || k < 2 || scores.iter().any(|row| row.len() != k) {
        return None;
    }
    // Average ranks per method across datasets (ties get mid-ranks).
    let mut rank_sums = vec![0.0; k];
    for row in scores {
        for (j, r) in rank_with_ties(row).into_iter().enumerate() {
            rank_sums[j] += r;
        }
    }
    let average_ranks: Vec<f64> = rank_sums.iter().map(|s| s / n as f64).collect();

    let nf = n as f64;
    let kf = k as f64;
    let sum_r2: f64 = average_ranks.iter().map(|r| r * r).sum();
    let chi_square = (12.0 * nf) / (kf * (kf + 1.0)) * (sum_r2 - kf * (kf + 1.0).powi(2) / 4.0);

    // Iman–Davenport correction: F = ((n-1) χ²) / (n(k-1) − χ²), F-dist
    // with (k-1, (k-1)(n-1)) degrees of freedom.
    let denom = nf * (kf - 1.0) - chi_square;
    let f_statistic = if denom.abs() < 1e-12 {
        f64::INFINITY
    } else {
        ((nf - 1.0) * chi_square / denom).max(0.0)
    };
    let d1 = kf - 1.0;
    let d2 = (kf - 1.0) * (nf - 1.0);
    let p_value = if f_statistic.is_finite() {
        1.0 - f_cdf(f_statistic, d1, d2)
    } else {
        0.0
    };

    Some(FriedmanResult {
        chi_square,
        f_statistic,
        p_value,
        average_ranks,
        n_datasets: n,
        n_methods: k,
    })
}

/// CDF of the F distribution via the regularized incomplete beta.
fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 0.0;
    }
    let x = d1 * f / (d1 * f + d2);
    incomplete_beta(0.5 * d1, 0.5 * d2, x)
}

/// Nemenyi critical difference at α = 0.05: two methods' average ranks
/// differ significantly when their gap exceeds this value.
///
/// `CD = q_α √(k(k+1) / (6n))`, with the Studentized-range-based `q_0.05`
/// constants tabulated by Demšar for `2 ≤ k ≤ 20` methods (`None`
/// outside that range).
pub fn nemenyi_critical_difference(n_methods: usize, n_datasets: usize) -> Option<f64> {
    // q_0.05 for k = 2..=20 (Demšar 2006, Table 5a).
    const Q05: [f64; 19] = [
        1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164, 3.219, 3.268, 3.313, 3.354,
        3.391, 3.426, 3.458, 3.489, 3.517, 3.544,
    ];
    if !(2..=20).contains(&n_methods) || n_datasets == 0 {
        return None;
    }
    let q = Q05[n_methods - 2];
    let k = n_methods as f64;
    let n = n_datasets as f64;
    Some(q * (k * (k + 1.0) / (6.0 * n)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Method 0 always best, method 2 always worst — maximal disagreement
    /// with the null.
    fn dominated(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![1.0 + i as f64, 2.0 + i as f64, 3.0 + i as f64])
            .collect()
    }

    #[test]
    fn friedman_rejects_for_consistent_dominance() {
        let r = friedman_test(&dominated(15)).unwrap();
        assert!(r.rejects_at(0.05), "p = {}", r.p_value);
        assert_eq!(r.average_ranks, vec![1.0, 2.0, 3.0]);
        assert_eq!(r.n_datasets, 15);
        assert_eq!(r.n_methods, 3);
        // Maximal χ² for k=3: n·(k-1)·... here χ² = 12·15/(3·4)·(14−12) = 30.
        assert!((r.chi_square - 30.0).abs() < 1e-9);
    }

    #[test]
    fn friedman_does_not_reject_under_the_null() {
        // Rotating winners: every method has the same average rank.
        let scores: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let mut row = vec![1.0, 2.0, 3.0];
                row.rotate_left(i % 3);
                row
            })
            .collect();
        let r = friedman_test(&scores).unwrap();
        assert!(!r.rejects_at(0.05), "p = {}", r.p_value);
        for rank in &r.average_ranks {
            assert!((rank - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(friedman_test(&[]).is_none());
        assert!(friedman_test(&[vec![1.0, 2.0]]).is_none());
        assert!(friedman_test(&[vec![1.0], vec![2.0]]).is_none());
        assert!(friedman_test(&[vec![1.0, 2.0], vec![1.0]]).is_none());
    }

    #[test]
    fn nemenyi_matches_published_values() {
        // Demšar's example scale: k = 5, n = 30 → CD ≈ 1.113? Verify the
        // formula directly: q = 2.728, sqrt(5·6 / 180) = sqrt(1/6).
        let cd = nemenyi_critical_difference(5, 30).unwrap();
        let expected = 2.728 * (30.0_f64 / 180.0).sqrt();
        assert!((cd - expected).abs() < 1e-12);
        // More methods and fewer datasets both widen the CD.
        assert!(
            nemenyi_critical_difference(10, 30).unwrap() > cd,
            "more methods must widen CD"
        );
        assert!(
            nemenyi_critical_difference(5, 10).unwrap() > cd,
            "fewer datasets must widen CD"
        );
    }

    #[test]
    fn nemenyi_bounds() {
        assert!(nemenyi_critical_difference(1, 10).is_none());
        assert!(nemenyi_critical_difference(25, 10).is_none());
        // k = 21 is just past the tabulated constants: must be None, not
        // an out-of-bounds panic.
        assert!(nemenyi_critical_difference(21, 10).is_none());
        assert!(nemenyi_critical_difference(20, 10).is_some());
        assert!(nemenyi_critical_difference(16, 0).is_none());
        assert!(nemenyi_critical_difference(16, 20).is_some());
    }

    #[test]
    fn f_cdf_sanity() {
        // F CDF is 0 at 0, increases, and approaches 1.
        assert_eq!(f_cdf(0.0, 3.0, 10.0), 0.0);
        let a = f_cdf(1.0, 3.0, 10.0);
        let b = f_cdf(3.0, 3.0, 10.0);
        let c = f_cdf(100.0, 3.0, 10.0);
        assert!(a < b && b < c);
        assert!(c > 0.99);
    }

    #[test]
    fn paper_scale_critical_difference() {
        // The paper's Table II scale: 16 methods, 20 datasets.
        let cd = nemenyi_critical_difference(16, 20).unwrap();
        // EA-DRL (2.89) vs GBM (14.11) differ by far more than the CD.
        assert!(14.11 - 2.89 > cd);
        // EA-DRL vs DEMSC (4.53) is within the CD: not separable by
        // Nemenyi at this sample size — consistent with the paper needing
        // the sharper Bayesian analysis.
        assert!(4.53 - 2.89 < cd);
    }
}
