//! Tour of the base-model zoo: fit all 43 members of the paper's pool on
//! one dataset and print a per-model leaderboard of rolling one-step RMSE,
//! grouped by family. A direct view of the "heterogeneous pool whose
//! members' relative accuracy varies" that EA-DRL exploits.
//!
//! ```text
//! cargo run --release --example model_zoo
//! ```

use eadrl::datasets::{generate, DatasetId};
use eadrl::models::{rolling_forecast, standard_pool, ModelFamily};
use eadrl::timeseries::metrics::rmse;

fn main() {
    let series = generate(DatasetId::BikeRentals, 480, 42);
    let (train, test) = series.split(0.75);
    println!(
        "fitting the 43-model pool on {:?} ({} train / {} test)...\n",
        series.name(),
        train.len(),
        test.len()
    );

    let mut results: Vec<(String, &'static str, f64)> = Vec::new();
    for mut model in standard_pool(5, 24, 42) {
        let label = model.name().to_string();
        if model.fit(train).is_err() {
            println!("  {label:<26} (skipped: series too short)");
            continue;
        }
        let preds = rolling_forecast(model.as_ref(), train, test);
        let family = ModelFamily::of(&label).label();
        results.push((label, family, rmse(test, &preds)));
    }

    results.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    println!("{:<26} {:<18} {:>9}", "model", "family", "RMSE");
    for (name, fam, err) in &results {
        println!("{name:<26} {fam:<18} {err:>9.3}");
    }

    // Spread statistics: the pool diversity EA-DRL feeds on.
    let best = results.first().expect("non-empty pool");
    let worst = results.last().expect("non-empty pool");
    println!(
        "\nbest {} ({:.3}) vs worst {} ({:.3}) - a {:.1}x spread across the pool",
        best.0,
        best.2,
        worst.0,
        worst.2,
        worst.2 / best.2
    );
}
