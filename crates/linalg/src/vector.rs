//! Small vector helpers used throughout the workspace.
//!
//! These are free functions over `&[f64]` rather than a wrapper type: the
//! rest of the workspace passes plain slices around (time-series windows,
//! network activations, weight vectors), and wrapping them would add noise
//! for no safety gain.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ (the zip silently truncates
/// in release builds, so callers must ensure equal lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
#[inline]
pub fn scale_in_place(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance (divides by `n`); 0.0 for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Median of a slice (averages the two central values for even lengths).
/// Returns `f64::NAN` for an empty slice.
pub fn median(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let mut v = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Index of the maximum element (first occurrence). `None` when empty.
pub fn argmax(a: &[f64]) -> Option<usize> {
    a.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f64)>, (i, &x)| match best {
            Some((_, bx)) if bx >= x => best,
            _ => Some((i, x)),
        })
        .map(|(i, _)| i)
}

/// Index of the minimum element (first occurrence). `None` when empty.
pub fn argmin(a: &[f64]) -> Option<usize> {
    a.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f64)>, (i, &x)| match best {
            Some((_, bx)) if bx <= x => best,
            _ => Some((i, x)),
        })
        .map(|(i, _)| i)
}

/// Normalizes a non-negative slice to sum to one in place.
///
/// If the sum is zero or non-finite, falls back to the uniform distribution.
/// This is the "standard normalization" the paper applies to the policy
/// network output so weights are positive and sum to one.
pub fn normalize_simplex(a: &mut [f64]) {
    if a.is_empty() {
        return;
    }
    for x in a.iter_mut() {
        if !x.is_finite() || *x < 0.0 {
            *x = 0.0;
        }
    }
    let s: f64 = a.iter().sum();
    if s > 0.0 && s.is_finite() {
        for x in a.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / a.len() as f64;
        for x in a.iter_mut() {
            *x = u;
        }
    }
}

/// Numerically stable softmax.
pub fn softmax(a: &[f64]) -> Vec<f64> {
    if a.is_empty() {
        return Vec::new();
    }
    let m = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        // All entries -inf/NaN: fall back to uniform.
        return vec![1.0 / a.len() as f64; a.len()];
    }
    let exps: Vec<f64> = a.iter().map(|x| (x - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn stats_basics() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        assert!((variance(&a) - 4.0).abs() < 1e-12);
        assert!((std_dev(&a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn argmax_argmin() {
        let a = [1.0, 5.0, 3.0, 5.0];
        assert_eq!(argmax(&a), Some(1));
        assert_eq!(argmin(&a), Some(0));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn simplex_normalization() {
        let mut a = [1.0, 3.0];
        normalize_simplex(&mut a);
        assert_eq!(a, [0.25, 0.75]);

        // Negative and NaN entries are clamped before normalizing.
        let mut b = [-1.0, f64::NAN, 2.0];
        normalize_simplex(&mut b);
        assert_eq!(b, [0.0, 0.0, 1.0]);

        // All-zero input falls back to uniform.
        let mut c = [0.0, 0.0, 0.0, 0.0];
        normalize_simplex(&mut c);
        assert_eq!(c, [0.25; 4]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        let q = softmax(&[0.0, f64::NEG_INFINITY]);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(q[1] < 1e-300);
    }

    #[test]
    fn sq_dist_matches_norm() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(sq_dist(&a, &b), 25.0);
    }
}
