//! Fixed-capacity sliding windows for the serving hot path.
//!
//! Every sliding window in the serving loop used to be a `Vec` shifted
//! with `remove(0)` — an O(n) memmove per step, six times per served
//! forecast. The two ring types here replace all of those sites with
//! amortized O(1) slides and zero steady-state allocation, while keeping
//! the *logical* oldest-to-newest order identical to the shifted `Vec`,
//! so every consumer sees the same values in the same order and outputs
//! stay bitwise equal.
//!
//! * [`SlideWindow`] — a window of `f64` values that is always readable
//!   as one contiguous slice (the state-normalization and tail-slicing
//!   callers need `&[f64]`). It keeps a backing buffer of twice the
//!   capacity and compacts with a single `copy_within` once per lap.
//! * [`StepRing`] — a ring of `(predictions, actual)` steps with slot
//!   reuse: recording a step rewrites a pre-existing row in place
//!   instead of allocating a fresh `Vec` per observation.

/// A fixed-capacity sliding window of `f64` values, contiguous-slice
/// readable.
///
/// Semantically identical to a `Vec<f64>` driven by
/// `push(v); if len > cap { remove(0); }`, but [`SlideWindow::slide`] is
/// amortized O(1): the window lives inside a backing buffer of
/// `2 * capacity` and the write cursor walks forward, compacting the
/// live region to the front with one `copy_within` only when it reaches
/// the physical end — once per `capacity` slides.
#[derive(Debug, Clone)]
pub struct SlideWindow {
    buf: Vec<f64>,
    cap: usize,
    head: usize,
    len: usize,
}

impl SlideWindow {
    /// Creates an empty window that holds at most `capacity` values.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlideWindow {
            buf: vec![0.0; 2 * capacity],
            cap: capacity,
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of values the window retains.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `value`, evicting the oldest value once at capacity —
    /// the `remove(0)`-free equivalent of the classic window shift.
    pub fn slide(&mut self, value: f64) {
        if self.len == self.cap {
            self.head += 1;
            self.len -= 1;
        }
        if self.head + self.len == self.buf.len() {
            self.buf.copy_within(self.head.., 0);
            self.head = 0;
        }
        self.buf[self.head + self.len] = value;
        self.len += 1;
    }

    /// Replaces the contents with `values` (the trailing `capacity` of
    /// them when longer) — window (re)seeding at episode/warm-up start.
    pub fn assign(&mut self, values: &[f64]) {
        let src = if values.len() > self.cap {
            &values[values.len() - self.cap..]
        } else {
            values
        };
        self.head = 0;
        self.len = src.len();
        self.buf[..src.len()].copy_from_slice(src);
    }

    /// Drops the `k` oldest values (all of them when `k >= len`) without
    /// touching the rest — the adaptive drift detector's post-detection
    /// truncation.
    pub fn advance(&mut self, k: usize) {
        let k = k.min(self.len);
        self.head += k;
        self.len -= k;
    }

    /// Removes every value (capacity is retained).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// The stored values, oldest first, as one contiguous slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.buf[self.head..self.head + self.len]
    }
}

impl std::ops::Deref for SlideWindow {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

/// A fixed-capacity ring of `(predictions, actual)` steps with slot
/// reuse.
///
/// Semantically identical to a `Vec<(Vec<f64>, f64)>` driven by
/// `push(...); if len > cap { remove(0); }`, but [`StepRing::record`]
/// rewrites a pre-existing slot in place (`clear` + `extend_from_slice`
/// on the retained row allocation), so a saturated ring records steps
/// without allocating. Iteration yields steps oldest first, matching
/// the shifted `Vec`'s order exactly.
#[derive(Debug, Clone)]
pub struct StepRing {
    slots: Vec<(Vec<f64>, f64)>,
    head: usize,
    len: usize,
}

impl StepRing {
    /// Creates an empty ring that retains at most `capacity` steps. All
    /// slots are created up front so recording never grows the ring.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        StepRing {
            slots: (0..capacity).map(|_| (Vec::new(), 0.0)).collect(),
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of steps the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of stored steps.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no step has been stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one step, evicting the oldest once at capacity. The
    /// evicted slot's row allocation is reused for the new step.
    pub fn record(&mut self, preds: &[f64], actual: f64) {
        let cap = self.slots.len();
        let idx = if self.len == cap {
            let idx = self.head;
            self.head += 1;
            if self.head == cap {
                self.head = 0;
            }
            idx
        } else {
            let mut idx = self.head + self.len;
            if idx >= cap {
                idx -= cap;
            }
            self.len += 1;
            idx
        };
        let slot = &mut self.slots[idx];
        slot.0.clear();
        slot.0.extend_from_slice(preds);
        slot.1 = actual;
    }

    /// The `i`-th stored step, oldest first.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    pub fn get(&self, i: usize) -> &(Vec<f64>, f64) {
        assert!(
            i < self.len,
            "step index {i} out of bounds (len {})",
            self.len
        );
        let mut idx = self.head + i;
        if idx >= self.slots.len() {
            idx -= self.slots.len();
        }
        &self.slots[idx]
    }

    /// Iterates the stored steps oldest first — the same order a shifted
    /// `Vec` presents, so windowed statistics accumulate identically.
    pub fn iter(&self) -> impl Iterator<Item = &(Vec<f64>, f64)> {
        let first = (self.slots.len() - self.head).min(self.len);
        self.slots[self.head..self.head + first]
            .iter()
            .chain(self.slots[..self.len - first].iter())
    }

    /// Removes every step (slot allocations are retained).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the shifted Vec every ring replaces.
    fn shifted(values: &[f64], cap: usize) -> Vec<f64> {
        let mut v = Vec::new();
        for &x in values {
            v.push(x);
            if v.len() > cap {
                v.remove(0);
            }
        }
        v
    }

    #[test]
    fn slide_matches_shifted_vec_across_many_laps() {
        for cap in [1, 2, 3, 7] {
            let mut w = SlideWindow::new(cap);
            let mut fed = Vec::new();
            for i in 0..50 {
                let x = (i as f64) * 1.25 - 3.0;
                fed.push(x);
                w.slide(x);
                assert_eq!(
                    w.as_slice(),
                    shifted(&fed, cap).as_slice(),
                    "cap {cap} step {i}"
                );
            }
            assert_eq!(w.len(), cap);
            assert_eq!(w.capacity(), cap);
        }
    }

    #[test]
    fn assign_seeds_and_truncates_to_tail() {
        let mut w = SlideWindow::new(3);
        w.assign(&[1.0, 2.0]);
        assert_eq!(w.as_slice(), &[1.0, 2.0]);
        w.assign(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(w.as_slice(), &[3.0, 4.0, 5.0]);
        w.slide(6.0);
        assert_eq!(w.as_slice(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn advance_drops_oldest_and_keeps_sliding() {
        let mut w = SlideWindow::new(4);
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.slide(x);
        }
        w.advance(2);
        assert_eq!(w.as_slice(), &[3.0, 4.0]);
        // The window keeps working at the physical buffer boundary.
        for i in 0..20 {
            w.slide(i as f64);
        }
        assert_eq!(w.as_slice(), &[16.0, 17.0, 18.0, 19.0]);
        w.advance(100);
        assert!(w.is_empty());
        w.slide(1.0);
        assert_eq!(w.as_slice(), &[1.0]);
    }

    #[test]
    fn deref_exposes_slice_ops() {
        let mut w = SlideWindow::new(5);
        w.assign(&[10.0, 20.0, 30.0]);
        assert_eq!(w[1], 20.0);
        assert_eq!(&w[1..], &[20.0, 30.0]);
        assert_eq!(w.iter().sum::<f64>(), 60.0);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_window_panics() {
        let _ = SlideWindow::new(0);
    }

    #[test]
    fn ring_matches_shifted_vec_of_pairs() {
        let cap = 3;
        let mut ring = StepRing::new(cap);
        let mut reference: Vec<(Vec<f64>, f64)> = Vec::new();
        for i in 0..11 {
            let preds = vec![i as f64, i as f64 * 2.0];
            let actual = i as f64 + 0.5;
            ring.record(&preds, actual);
            reference.push((preds, actual));
            if reference.len() > cap {
                reference.remove(0);
            }
            let got: Vec<&(Vec<f64>, f64)> = ring.iter().collect();
            let want: Vec<&(Vec<f64>, f64)> = reference.iter().collect();
            assert_eq!(got, want, "step {i}");
            assert_eq!(ring.len(), reference.len());
            for (j, step) in reference.iter().enumerate() {
                assert_eq!(ring.get(j), step);
            }
        }
    }

    #[test]
    fn ring_reuses_slot_allocations() {
        let mut ring = StepRing::new(2);
        ring.record(&[1.0, 2.0, 3.0], 0.0);
        ring.record(&[4.0, 5.0, 6.0], 1.0);
        let before: Vec<*const f64> = (0..2).map(|i| ring.get(i).0.as_ptr()).collect();
        // A full lap rewrites both slots in place.
        ring.record(&[7.0, 8.0, 9.0], 2.0);
        ring.record(&[10.0, 11.0, 12.0], 3.0);
        let after: Vec<*const f64> = (0..2).map(|i| ring.get(i).0.as_ptr()).collect();
        let mut reused = before.clone();
        reused.sort();
        let mut now = after.clone();
        now.sort();
        assert_eq!(reused, now, "slot rows must be reused, not reallocated");
        assert_eq!(ring.get(0).0, vec![7.0, 8.0, 9.0]);
        assert_eq!(ring.get(1).0, vec![10.0, 11.0, 12.0]);
    }

    #[test]
    fn ring_clear_keeps_capacity() {
        let mut ring = StepRing::new(4);
        ring.record(&[1.0], 1.0);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 4);
        ring.record(&[2.0], 2.0);
        assert_eq!(ring.get(0).1, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_ring_panics() {
        let _ = StepRing::new(0);
    }
}
