//! Graceful degradation for the online serving path.
//!
//! Ensemble methods are valuable precisely because members fail
//! independently — but the naive Algorithm-1 loop assumes every pooled
//! forecaster always returns a finite value: one panicking or
//! NaN-emitting member poisons the weighted sum for every subsequent
//! request. [`PoolGuard`] makes member failures independent in practice:
//!
//! * every per-model call runs under `catch_unwind` with non-finite
//!   output detection (via [`Forecaster::try_predict_next`]) and an
//!   optional deterministic latency budget
//!   ([`Forecaster::cost_hint_us`] vs [`GuardConfig::latency_budget_us`]
//!   — never a wall clock, which would break bitwise reproducibility);
//! * a faulted member is masked for the step (its weight is
//!   redistributed over the survivors) and after
//!   [`GuardConfig::quarantine_after`] consecutive faults it is
//!   **quarantined**: excluded from the combination but still probed
//!   each step, re-entering after
//!   [`GuardConfig::reentry_clean_calls`] consecutive clean probes;
//! * every masking decision is observable: `eadrl.degraded` (per
//!   degraded step, with the effective weights actually served) and
//!   `eadrl.quarantine` (enter/exit transitions) telemetry events.
//!
//! The guard is *pay-per-fault*: on a fault-free step it performs the
//! identical arithmetic in the identical order as the unguarded loop,
//! and emits no additional telemetry — the committed quickstart
//! baselines stay byte-identical.

use eadrl_models::{fallback_forecast, Forecaster, PredictError};
use eadrl_obs::Level;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a guarded call failed — the classification recorded in
/// `eadrl.degraded` / `eadrl.quarantine` telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The model panicked; caught by the per-call `catch_unwind`.
    Panic,
    /// The model returned NaN or ±Inf.
    NonFinite,
    /// The model's declared per-call cost exceeds the serving budget.
    BudgetExceeded,
}

impl FaultClass {
    /// Stable lowercase label used in telemetry fields.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Panic => "panic",
            FaultClass::NonFinite => "non_finite",
            FaultClass::BudgetExceeded => "budget_exceeded",
        }
    }
}

/// Degradation policy knobs.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Consecutive faulted calls after which a member is quarantined.
    /// Before the threshold a faulted member is only masked for the
    /// faulting step (transient glitches should not cost a member its
    /// seat). `1` quarantines on first fault.
    pub quarantine_after: u32,
    /// Consecutive clean probe calls a quarantined member must produce
    /// to re-enter the combination. Quarantined members are still
    /// called every step — the probe result is discarded — so recovery
    /// is observed on live traffic without risking the forecast.
    pub reentry_clean_calls: u32,
    /// Optional deterministic per-call latency budget (µs), enforced
    /// against [`Forecaster::cost_hint_us`]. `None` disables budget
    /// enforcement; models that do not declare a cost are never
    /// budget-faulted.
    pub latency_budget_us: Option<u64>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            quarantine_after: 3,
            reentry_clean_calls: 8,
            latency_budget_us: None,
        }
    }
}

/// Per-member health state.
#[derive(Debug, Clone, Default)]
struct MemberHealth {
    fault_streak: u32,
    clean_streak: u32,
    quarantined: bool,
    total_faults: u64,
}

/// The outcome of one guarded pool sweep: per-member values with the
/// members that may take part in this step's combination.
#[derive(Debug, Clone)]
pub struct GuardedSweep {
    /// One value per pool member. Faulted members carry the documented
    /// fallback (last finite history value) so downstream state updates
    /// stay finite; their `active` flag is `false`.
    pub values: Vec<f64>,
    /// `active[i]` — member `i` produced a clean value this step *and*
    /// is not quarantined; only active members may receive weight.
    pub active: Vec<bool>,
    /// Indices that faulted on this step, with their classification.
    pub faults: Vec<(usize, FaultClass)>,
    /// True when every member is active (the fast, telemetry-free path).
    pub all_active: bool,
}

/// Tracks pool-member health across serving steps and executes the
/// guarded per-model calls. Owned by [`crate::EaDrl`]; the pool itself
/// stays outside so borrows remain simple.
#[derive(Debug, Clone)]
pub struct PoolGuard {
    config: GuardConfig,
    health: Vec<MemberHealth>,
}

impl PoolGuard {
    /// Creates a guard for a pool of `m` members.
    pub fn new(config: GuardConfig, m: usize) -> Self {
        PoolGuard {
            config,
            health: vec![MemberHealth::default(); m],
        }
    }

    /// Resets health tracking for a (re)fitted pool of `m` members.
    pub fn reset(&mut self, m: usize) {
        self.health = vec![MemberHealth::default(); m];
    }

    /// The active configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Indices currently quarantined (ascending).
    pub fn quarantined(&self) -> Vec<usize> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.quarantined)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total faults observed for member `i` since the last reset.
    pub fn total_faults(&self, i: usize) -> u64 {
        self.health.get(i).map_or(0, |h| h.total_faults)
    }

    /// Calls every pool member once under the guard and updates health.
    ///
    /// `history` is the (already sanitized) input passed to each model.
    pub fn sweep(&mut self, pool: &[Box<dyn Forecaster>], history: &[f64]) -> GuardedSweep {
        let substitute = fallback_forecast(history);
        let mut values = Vec::with_capacity(pool.len());
        let mut active = Vec::with_capacity(pool.len());
        let mut faults = Vec::new();
        for (i, model) in pool.iter().enumerate() {
            let outcome = guarded_call(model.as_ref(), history, self.config.latency_budget_us);
            match outcome {
                Ok(value) => {
                    let in_quarantine = self.record_clean(i, model.name());
                    values.push(value);
                    active.push(!in_quarantine);
                }
                Err(class) => {
                    self.record_fault(i, model.name(), class);
                    faults.push((i, class));
                    values.push(substitute);
                    active.push(false);
                }
            }
        }
        let all_active = active.iter().all(|&a| a);
        GuardedSweep {
            values,
            active,
            faults,
            all_active,
        }
    }

    /// Records a clean call; returns `true` while the member remains
    /// quarantined (probe succeeded but re-entry not yet earned).
    fn record_clean(&mut self, i: usize, name: &str) -> bool {
        let reentry = self.config.reentry_clean_calls.max(1);
        let h = &mut self.health[i];
        h.fault_streak = 0;
        if !h.quarantined {
            return false;
        }
        h.clean_streak += 1;
        if h.clean_streak >= reentry {
            h.quarantined = false;
            h.clean_streak = 0;
            eadrl_obs::event(
                "eadrl.quarantine",
                Level::Warn,
                &[
                    ("model", name.into()),
                    ("index", i.into()),
                    ("action", "exit".into()),
                    ("clean_calls", u64::from(reentry).into()),
                    ("total_faults", self.health[i].total_faults.into()),
                ],
            );
            return false;
        }
        true
    }

    fn record_fault(&mut self, i: usize, name: &str, class: FaultClass) {
        let threshold = self.config.quarantine_after.max(1);
        let h = &mut self.health[i];
        h.total_faults += 1;
        h.clean_streak = 0;
        h.fault_streak = h.fault_streak.saturating_add(1);
        if !h.quarantined && h.fault_streak >= threshold {
            h.quarantined = true;
            eadrl_obs::event(
                "eadrl.quarantine",
                Level::Warn,
                &[
                    ("model", name.into()),
                    ("index", i.into()),
                    ("action", "enter".into()),
                    ("class", class.as_str().into()),
                    ("fault_streak", u64::from(h.fault_streak).into()),
                    ("total_faults", h.total_faults.into()),
                ],
            );
        }
    }
}

/// One guarded model call: `catch_unwind` around the checked prediction
/// path, plus deterministic budget enforcement.
pub fn guarded_call(
    model: &dyn Forecaster,
    history: &[f64],
    budget_us: Option<u64>,
) -> Result<f64, FaultClass> {
    if let (Some(budget), Some(cost)) = (budget_us, model.cost_hint_us()) {
        if cost > budget {
            return Err(FaultClass::BudgetExceeded);
        }
    }
    // A fitted model is immutable while predicting (Forecaster contract),
    // so observing it after a caught panic cannot expose broken state.
    match catch_unwind(AssertUnwindSafe(|| model.try_predict_next(history))) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(PredictError::NonFinite { .. })) => Err(FaultClass::NonFinite),
        Ok(Err(PredictError::BudgetExceeded { .. })) => Err(FaultClass::BudgetExceeded),
        Err(_) => Err(FaultClass::Panic),
    }
}

/// Renormalizes `weights` over the active members.
///
/// Returns the effective simplex actually served: masked members get
/// exactly `0.0`; the surviving mass is rescaled to sum to 1. When the
/// surviving mass is numerically negligible the survivors share uniform
/// weight (the policy's opinion carries no information about them).
/// When *no* member is active, every weight is `0.0` — the caller must
/// fall back to a history-based forecast.
pub fn renormalize_over_active(weights: &[f64], active: &[bool]) -> Vec<f64> {
    let survivors = active.iter().filter(|&&a| a).count();
    if survivors == 0 {
        return vec![0.0; weights.len()];
    }
    let mass: f64 = weights
        .iter()
        .zip(active.iter())
        .filter(|(_, &a)| a)
        .map(|(w, _)| w.max(0.0))
        .sum();
    if mass > 1e-12 && mass.is_finite() {
        weights
            .iter()
            .zip(active.iter())
            .map(|(w, &a)| if a { w.max(0.0) / mass } else { 0.0 })
            .collect()
    } else {
        let uniform = 1.0 / survivors as f64;
        active
            .iter()
            .map(|&a| if a { uniform } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadrl_models::ModelError;

    /// Scripted test double: panics / returns NaN on chosen calls.
    struct Scripted {
        name: String,
        outputs: Vec<f64>, // cycled; NaN entries fault, f64::MAX panics
        calls: std::sync::atomic::AtomicUsize,
        cost: Option<u64>,
    }

    impl Scripted {
        fn new(outputs: Vec<f64>) -> Self {
            Scripted {
                name: "Scripted".into(),
                outputs,
                calls: std::sync::atomic::AtomicUsize::new(0),
                cost: None,
            }
        }
    }

    impl Forecaster for Scripted {
        fn name(&self) -> &str {
            &self.name
        }
        fn fit(&mut self, _s: &[f64]) -> Result<(), ModelError> {
            Ok(())
        }
        fn predict_next(&self, _h: &[f64]) -> f64 {
            let i = self
                .calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let v = self.outputs[i % self.outputs.len()];
            if v == f64::MAX {
                panic!("scripted panic");
            }
            v
        }
        fn cost_hint_us(&self) -> Option<u64> {
            self.cost
        }
        fn box_clone(&self) -> Box<dyn Forecaster> {
            unreachable!("test double is never cloned")
        }
    }

    fn boxed(outputs: Vec<f64>) -> Box<dyn Forecaster> {
        Box::new(Scripted::new(outputs))
    }

    #[test]
    fn clean_sweep_keeps_everyone_active() {
        let pool = vec![boxed(vec![1.0]), boxed(vec![2.0])];
        let mut guard = PoolGuard::new(GuardConfig::default(), 2);
        let sweep = guard.sweep(&pool, &[5.0]);
        assert!(sweep.all_active);
        assert_eq!(sweep.values, vec![1.0, 2.0]);
        assert!(sweep.faults.is_empty());
        assert!(guard.quarantined().is_empty());
    }

    #[test]
    fn nan_output_is_masked_and_substituted() {
        let pool = vec![boxed(vec![1.0]), boxed(vec![f64::NAN])];
        let mut guard = PoolGuard::new(GuardConfig::default(), 2);
        let sweep = guard.sweep(&pool, &[5.0, 7.0]);
        assert!(!sweep.all_active);
        assert_eq!(sweep.values, vec![1.0, 7.0]); // last history value
        assert_eq!(sweep.active, vec![true, false]);
        assert_eq!(sweep.faults, vec![(1, FaultClass::NonFinite)]);
    }

    #[test]
    fn panicking_member_is_caught_and_quarantined_after_threshold() {
        let pool = vec![boxed(vec![1.0]), boxed(vec![f64::MAX])];
        let config = GuardConfig {
            quarantine_after: 2,
            ..GuardConfig::default()
        };
        let mut guard = PoolGuard::new(config, 2);
        let s1 = guard.sweep(&pool, &[3.0]);
        assert_eq!(s1.faults, vec![(1, FaultClass::Panic)]);
        assert!(guard.quarantined().is_empty(), "one fault is transient");
        guard.sweep(&pool, &[3.0]);
        assert_eq!(guard.quarantined(), vec![1]);
        assert_eq!(guard.total_faults(1), 2);
    }

    #[test]
    fn quarantined_member_reenters_after_clean_probes() {
        // Faults twice, then recovers forever.
        let pool = vec![boxed(vec![f64::NAN, f64::NAN, 4.0, 4.0, 4.0, 4.0])];
        let config = GuardConfig {
            quarantine_after: 2,
            reentry_clean_calls: 3,
            latency_budget_us: None,
        };
        let mut guard = PoolGuard::new(config, 1);
        guard.sweep(&pool, &[1.0]);
        guard.sweep(&pool, &[1.0]);
        assert_eq!(guard.quarantined(), vec![0]);
        // Three clean probes: still quarantined during the first two.
        assert_eq!(guard.sweep(&pool, &[1.0]).active, vec![false]);
        assert_eq!(guard.sweep(&pool, &[1.0]).active, vec![false]);
        let back = guard.sweep(&pool, &[1.0]);
        assert_eq!(back.active, vec![true], "third clean probe re-enters");
        assert!(guard.quarantined().is_empty());
    }

    #[test]
    fn declared_cost_over_budget_is_a_fault() {
        let mut slow = Scripted::new(vec![1.0]);
        slow.cost = Some(10_000);
        let pool: Vec<Box<dyn Forecaster>> = vec![Box::new(slow), boxed(vec![2.0])];
        let config = GuardConfig {
            latency_budget_us: Some(500),
            ..GuardConfig::default()
        };
        let mut guard = PoolGuard::new(config, 2);
        let sweep = guard.sweep(&pool, &[9.0]);
        assert_eq!(sweep.faults, vec![(0, FaultClass::BudgetExceeded)]);
        assert_eq!(sweep.active, vec![false, true]);
    }

    #[test]
    fn renormalization_preserves_simplex_over_survivors() {
        let w = [0.5, 0.3, 0.2];
        let eff = renormalize_over_active(&w, &[true, false, true]);
        assert_eq!(eff[1], 0.0);
        assert!((eff.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((eff[0] - 0.5 / 0.7).abs() < 1e-12);

        // Zero surviving mass -> uniform over survivors.
        let eff = renormalize_over_active(&[0.0, 1.0], &[true, false]);
        assert_eq!(eff, vec![1.0, 0.0]);

        // Nobody active -> all-zero sentinel.
        let eff = renormalize_over_active(&[0.5, 0.5], &[false, false]);
        assert_eq!(eff, vec![0.0, 0.0]);
    }
}
