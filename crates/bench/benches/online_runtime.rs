//! Microbenchmarks behind Table III: the per-step online cost of EA-DRL's
//! policy inference versus the adaptive baselines' weight updates.

use eadrl_bench::harness::Harness;
use eadrl_bench::{build_pool, eadrl_config, fit_pool, prediction_matrix, Scale, OMEGA};
use eadrl_core::baselines::{Demsc, SlidingWindowEnsemble};
use eadrl_core::experiment::sanitize_predictions;
use eadrl_core::{Combiner, EaDrlPolicy};
use eadrl_datasets::{generate, DatasetId};
use std::hint::black_box;

struct Fixture {
    warm_preds: Vec<Vec<f64>>,
    warm_actuals: Vec<f64>,
    online_preds: Vec<Vec<f64>>,
    online_actuals: Vec<f64>,
}

fn fixture() -> Fixture {
    let scale = Scale {
        episodes: 10,
        ..Scale::full()
    };
    let series = generate(DatasetId::TaxiDemand1, scale.series_len, scale.seed);
    let cut = (series.len() as f64 * 0.75).round() as usize;
    let (train, test) = series.values().split_at(cut);
    let fit_len = (train.len() as f64 * 0.75).round() as usize;
    let (fit_part, warm_part) = train.split_at(fit_len);
    let pool = fit_pool(build_pool(scale, 48), fit_part);
    let mut warm_preds = prediction_matrix(&pool, fit_part, warm_part);
    let mut online_preds = prediction_matrix(&pool, train, test);
    sanitize_predictions(&mut warm_preds, fit_part);
    sanitize_predictions(&mut online_preds, train);
    Fixture {
        warm_preds,
        warm_actuals: warm_part.to_vec(),
        online_preds,
        online_actuals: test.to_vec(),
    }
}

fn bench_online(c: &mut Harness) {
    let fx = fixture();
    let scale = Scale {
        episodes: 10,
        ..Scale::full()
    };

    let mut eadrl = EaDrlPolicy::new(eadrl_config(scale));
    eadrl.warm_up(&fx.warm_preds, &fx.warm_actuals);
    let mut demsc = Demsc::new(OMEGA, 0.25, 4, scale.seed);
    demsc.warm_up(&fx.warm_preds, &fx.warm_actuals);
    let mut swe = SlidingWindowEnsemble::new(OMEGA);
    swe.warm_up(&fx.warm_preds, &fx.warm_actuals);

    let m = fx.online_preds[0].len();
    let mut group = c.benchmark_group("online_weights");
    group.bench_function("eadrl_policy_forward", |b| {
        b.iter(|| black_box(eadrl.weights(black_box(m))))
    });
    group.bench_function("demsc_weights", |b| {
        b.iter(|| black_box(demsc.weights(black_box(m))))
    });
    group.bench_function("swe_weights", |b| {
        b.iter(|| black_box(swe.weights(black_box(m))))
    });
    group.finish();

    let mut group = c.benchmark_group("online_full_segment");
    group.sample_size(20);
    group.bench_function("eadrl_combine_120_steps", |b| {
        b.iter_batched(
            || {
                let mut p = EaDrlPolicy::new(eadrl_config(scale));
                p.warm_up(&fx.warm_preds, &fx.warm_actuals);
                p
            },
            |mut p| {
                for (preds, &a) in fx.online_preds.iter().zip(fx.online_actuals.iter()) {
                    black_box(p.combine(preds));
                    p.observe(preds, a);
                }
            },
        )
    });
    group.bench_function("demsc_combine_120_steps", |b| {
        b.iter_batched(
            || {
                let mut d = Demsc::new(OMEGA, 0.25, 4, scale.seed);
                d.warm_up(&fx.warm_preds, &fx.warm_actuals);
                d
            },
            |mut d| {
                for (preds, &a) in fx.online_preds.iter().zip(fx.online_actuals.iter()) {
                    black_box(d.combine(preds));
                    d.observe(preds, a);
                }
            },
        )
    });
    group.finish();
}

fn main() {
    let mut h = Harness::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    bench_online(&mut h);
}
