//! Differentiable output maps applied to the raw actor output.

/// How raw actor outputs are mapped into the environment's action space.
///
/// The EA-DRL paper applies "a standard normalization … to the output of
/// the policy network, so that all the weights are positive and sum to
/// one" — that is [`ActionSquash::Softmax`]. [`ActionSquash::Tanh`] is the
/// classical DDPG bounded-action map and [`ActionSquash::Identity`] leaves
/// actions unbounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActionSquash {
    /// No transformation.
    Identity,
    /// Per-component `tanh` (actions in `(-1, 1)`).
    Tanh,
    /// Softmax onto the probability simplex (positive, sums to one).
    Softmax,
    /// `softmax(scale · tanh(raw))`: softmax over *bounded* logits.
    ///
    /// Plain softmax lets the deterministic policy gradient push one logit
    /// up forever; the action saturates to a one-hot vector, the softmax
    /// Jacobian vanishes, and learning dies. Bounding the logits to
    /// `[-scale, scale]` caps how concentrated the weight vector can get
    /// (max weight ≈ `e^{2·scale} / (e^{2·scale} + m - 1)`) and keeps
    /// gradients alive.
    BoundedSoftmax {
        /// Logit bound; 3.0 allows ≈ 90 % concentration in a 43-model pool.
        scale: f64,
    },
}

impl ActionSquash {
    /// Applies the map to a raw actor output.
    pub fn forward(self, raw: &[f64]) -> Vec<f64> {
        match self {
            ActionSquash::Identity => raw.to_vec(),
            ActionSquash::Tanh => raw.iter().map(|x| x.tanh()).collect(),
            ActionSquash::Softmax => eadrl_linalg_softmax(raw),
            ActionSquash::BoundedSoftmax { scale } => {
                let z: Vec<f64> = raw.iter().map(|x| scale * x.tanh()).collect();
                eadrl_linalg_softmax(&z)
            }
        }
    }

    /// Vector-Jacobian product: given the raw actor output `raw`, the
    /// squashed output `y` and a gradient `dy` with respect to `y`, returns
    /// the gradient with respect to `raw`. This is what lets the
    /// deterministic policy gradient flow through the squash into the
    /// actor network.
    pub fn backward(self, raw: &[f64], output: &[f64], grad_output: &[f64]) -> Vec<f64> {
        match self {
            ActionSquash::Identity => grad_output.to_vec(),
            ActionSquash::Tanh => output
                .iter()
                .zip(grad_output.iter())
                .map(|(y, g)| g * (1.0 - y * y))
                .collect(),
            ActionSquash::Softmax => softmax_vjp(output, grad_output),
            ActionSquash::BoundedSoftmax { scale } => {
                let gz = softmax_vjp(output, grad_output);
                raw.iter()
                    .zip(gz.iter())
                    .map(|(x, g)| {
                        let t = x.tanh();
                        g * scale * (1.0 - t * t)
                    })
                    .collect()
            }
        }
    }
}

/// `Jᵀ g` for the softmax: `J = diag(p) - p pᵀ  =>  Jᵀ g = p ⊙ (g - p·g)`.
fn softmax_vjp(output: &[f64], grad_output: &[f64]) -> Vec<f64> {
    let dot: f64 = output
        .iter()
        .zip(grad_output.iter())
        .map(|(p, g)| p * g)
        .sum();
    output
        .iter()
        .zip(grad_output.iter())
        .map(|(p, g)| p * (g - dot))
        .collect()
}

// Local stable softmax (duplicated from eadrl-linalg to keep this crate's
// dependency list minimal — the rl crate does not otherwise need linalg).
fn eadrl_linalg_softmax(a: &[f64]) -> Vec<f64> {
    if a.is_empty() {
        return Vec::new();
    }
    let m = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return vec![1.0 / a.len() as f64; a.len()];
    }
    let exps: Vec<f64> = a.iter().map(|x| (x - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(squash: ActionSquash, raw: &[f64]) {
        let h = 1e-6;
        let y = squash.forward(raw);
        // Loss = Σ c_i y_i with arbitrary coefficients.
        let coeffs: Vec<f64> = (0..raw.len()).map(|i| 1.0 + i as f64 * 0.7).collect();
        let grad = squash.backward(raw, &y, &coeffs);
        for j in 0..raw.len() {
            let mut up = raw.to_vec();
            up[j] += h;
            let mut dn = raw.to_vec();
            dn[j] -= h;
            let lu: f64 = squash
                .forward(&up)
                .iter()
                .zip(coeffs.iter())
                .map(|(a, b)| a * b)
                .sum();
            let ld: f64 = squash
                .forward(&dn)
                .iter()
                .zip(coeffs.iter())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - grad[j]).abs() < 1e-5,
                "{squash:?} dim {j}: {numeric} vs {}",
                grad[j]
            );
        }
    }

    #[test]
    fn identity_is_transparent() {
        let raw = [1.0, -2.0];
        assert_eq!(ActionSquash::Identity.forward(&raw), raw.to_vec());
        finite_diff_check(ActionSquash::Identity, &raw);
    }

    #[test]
    fn tanh_bounds_and_gradient() {
        let raw = [0.3, -1.5, 4.0];
        let y = ActionSquash::Tanh.forward(&raw);
        assert!(y.iter().all(|v| v.abs() < 1.0));
        finite_diff_check(ActionSquash::Tanh, &raw);
    }

    #[test]
    fn softmax_is_simplex_and_gradient() {
        let raw = [0.2, -0.4, 1.1, 0.0];
        let y = ActionSquash::Softmax.forward(&raw);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&v| v > 0.0));
        finite_diff_check(ActionSquash::Softmax, &raw);
    }

    #[test]
    fn softmax_handles_extreme_inputs() {
        let y = ActionSquash::Softmax.forward(&[1e6, 0.0]);
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bounded_softmax_is_simplex_and_gradient() {
        let raw = [0.4, -0.9, 2.0, 0.1];
        let sq = ActionSquash::BoundedSoftmax { scale: 3.0 };
        let y = sq.forward(&raw);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&v| v > 0.0));
        finite_diff_check(sq, &raw);
    }

    #[test]
    fn bounded_softmax_caps_concentration() {
        // Even with an enormous logit, the max weight is bounded by the
        // tanh saturation: e^{2·scale} / (e^{2·scale} + m - 1).
        let sq = ActionSquash::BoundedSoftmax { scale: 3.0 };
        let y = sq.forward(&[1e9, 0.0, 0.0, 0.0]);
        let cap = (6.0_f64).exp() / ((6.0_f64).exp() + 3.0 * (3.0_f64).exp());
        assert!(y[0] <= cap + 1e-9, "y0 = {} cap = {cap}", y[0]);
        assert!(y[0] < 1.0 - 1e-3, "must not fully collapse");
    }
}
