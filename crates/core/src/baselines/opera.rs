//! Online expert-aggregation rules ported from the `opera` R package
//! (Gaillard & Goude): EWA, fixed share, online gradient descent and
//! ML-Poly. All use the squared loss of each expert's point forecast.

use crate::combiner::Combiner;

fn uniform(m: usize) -> Vec<f64> {
    vec![1.0 / m.max(1) as f64; m]
}

fn squared_losses(preds: &[f64], actual: f64) -> Vec<f64> {
    preds.iter().map(|p| (p - actual) * (p - actual)).collect()
}

/// **EWA** — exponentially weighted average forecaster:
/// `w_i ∝ w_i · exp(-η ℓ_i / B)`, with `B` a running estimate of the loss
/// range so the learning rate is scale-free.
#[derive(Debug, Clone)]
pub struct Ewa {
    eta: f64,
    weights: Vec<f64>,
    loss_scale: f64,
}

impl Ewa {
    /// Creates an EWA aggregator with learning rate `eta`.
    pub fn new(eta: f64) -> Self {
        Ewa {
            eta: eta.max(1e-6),
            weights: Vec::new(),
            loss_scale: 1e-12,
        }
    }

    fn step(&mut self, preds: &[f64], actual: f64) {
        let m = preds.len();
        if self.weights.len() != m {
            self.weights = uniform(m);
        }
        let losses = squared_losses(preds, actual);
        for &l in &losses {
            self.loss_scale = self.loss_scale.max(l);
        }
        let scale = self.loss_scale.max(1e-12);
        for (w, &l) in self.weights.iter_mut().zip(losses.iter()) {
            *w *= (-self.eta * l / scale).exp();
        }
        let sum: f64 = self.weights.iter().sum();
        if sum > 0.0 && sum.is_finite() {
            for w in self.weights.iter_mut() {
                *w /= sum;
            }
        } else {
            self.weights = uniform(m);
        }
    }
}

impl Combiner for Ewa {
    fn name(&self) -> &str {
        "EWA"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            self.step(p, a);
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        if self.weights.len() != m {
            self.weights = uniform(m);
        }
        self.weights.clone()
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        self.step(preds, actual);
    }
}

/// **FS** — the fixed-share forecaster (Herbster & Warmuth): an EWA update
/// followed by mixing a share `alpha` of the mass uniformly, which lets the
/// aggregator track the best expert across regime changes.
#[derive(Debug, Clone)]
pub struct FixedShare {
    ewa: Ewa,
    alpha: f64,
}

impl FixedShare {
    /// Creates a fixed-share aggregator with EWA rate `eta` and share
    /// `alpha ∈ [0, 1]`.
    pub fn new(eta: f64, alpha: f64) -> Self {
        FixedShare {
            ewa: Ewa::new(eta),
            alpha: alpha.clamp(0.0, 1.0),
        }
    }

    fn share(&mut self) {
        let m = self.ewa.weights.len();
        if m == 0 {
            return;
        }
        let u = self.alpha / m as f64;
        for w in self.ewa.weights.iter_mut() {
            *w = (1.0 - self.alpha) * *w + u;
        }
    }
}

impl Combiner for FixedShare {
    fn name(&self) -> &str {
        "FS"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            self.ewa.step(p, a);
            self.share();
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        self.ewa.weights(m)
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        self.ewa.step(preds, actual);
        self.share();
    }
}

/// **OGD** — online gradient descent on the simplex (Zinkevich): gradient
/// step on the ensemble's squared loss followed by Euclidean projection
/// back onto the simplex. Step size decays as `η / √t`, scaled by the
/// running gradient magnitude so the method is loss-scale-free.
#[derive(Debug, Clone)]
pub struct Ogd {
    eta: f64,
    weights: Vec<f64>,
    t: u64,
    grad_scale: f64,
}

impl Ogd {
    /// Creates an OGD aggregator with base step size `eta`.
    pub fn new(eta: f64) -> Self {
        Ogd {
            eta: eta.max(1e-6),
            weights: Vec::new(),
            t: 0,
            grad_scale: 1e-12,
        }
    }

    fn step(&mut self, preds: &[f64], actual: f64) {
        let m = preds.len();
        if self.weights.len() != m {
            self.weights = uniform(m);
        }
        self.t += 1;
        let forecast: f64 = self
            .weights
            .iter()
            .zip(preds.iter())
            .map(|(w, p)| w * p)
            .sum();
        let grad: Vec<f64> = preds
            .iter()
            .map(|p| 2.0 * (forecast - actual) * p)
            .collect();
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        self.grad_scale = self.grad_scale.max(gnorm);
        let step = self.eta / (self.grad_scale.max(1e-12) * (self.t as f64).sqrt());
        for (w, g) in self.weights.iter_mut().zip(grad.iter()) {
            *w -= step * g;
        }
        self.weights = project_simplex(&self.weights);
    }
}

impl Combiner for Ogd {
    fn name(&self) -> &str {
        "OGD"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            self.step(p, a);
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        if self.weights.len() != m {
            self.weights = uniform(m);
        }
        self.weights.clone()
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        self.step(preds, actual);
    }
}

/// Euclidean projection onto the probability simplex (Duchi et al. 2008).
pub fn project_simplex(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    if n == 0 {
        return Vec::new();
    }
    let mut u = v.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut css = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let candidate = (css - 1.0) / (i + 1) as f64;
        if ui - candidate > 0.0 {
            rho = i + 1;
            theta = candidate;
        }
    }
    if rho == 0 {
        // All mass projects to a single vertex-adjacent case; fall back to
        // uniform (can only happen with pathological inputs).
        return uniform(n);
    }
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

/// **MLPOL** — ML-Poly (Gaillard, Stoltz & van Erven): polynomially
/// weighted averages with one adaptive learning rate per expert. Weights
/// are proportional to `η_i · (R_i)₊`, where `R_i` is expert i's cumulative
/// regret against the aggregated forecast and `η_i = 1 / (1 + Σ r_i²)`.
#[derive(Debug, Clone, Default)]
pub struct MlPol {
    regret: Vec<f64>,
    sq_regret: Vec<f64>,
}

impl MlPol {
    /// Creates an ML-Poly aggregator.
    pub fn new() -> Self {
        MlPol::default()
    }

    fn current_weights(&self, m: usize) -> Vec<f64> {
        if self.regret.len() != m {
            return uniform(m);
        }
        let scores: Vec<f64> = self
            .regret
            .iter()
            .zip(self.sq_regret.iter())
            .map(|(&r, &s)| (1.0 / (1.0 + s)) * r.max(0.0))
            .collect();
        let sum: f64 = scores.iter().sum();
        if sum > 0.0 && sum.is_finite() {
            scores.into_iter().map(|x| x / sum).collect()
        } else {
            uniform(m)
        }
    }

    fn step(&mut self, preds: &[f64], actual: f64) {
        let m = preds.len();
        if self.regret.len() != m {
            self.regret = vec![0.0; m];
            self.sq_regret = vec![0.0; m];
        }
        let w = self.current_weights(m);
        let forecast: f64 = w.iter().zip(preds.iter()).map(|(w, p)| w * p).sum();
        let ens_loss = (forecast - actual) * (forecast - actual);
        for ((&p, regret), sq) in preds
            .iter()
            .zip(self.regret.iter_mut())
            .zip(self.sq_regret.iter_mut())
        {
            let li = (p - actual) * (p - actual);
            let r = ens_loss - li; // positive when the expert beat us
            *regret += r;
            *sq += r * r;
        }
    }
}

impl Combiner for MlPol {
    fn name(&self) -> &str {
        "MLPOL"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            self.step(p, a);
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        self.current_weights(m)
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        self.step(preds, actual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed `steps` rounds where expert 0 is perfect and expert 1 is off
    /// by 2, then return the final weights.
    fn drill(combiner: &mut dyn Combiner, steps: usize) -> Vec<f64> {
        for _ in 0..steps {
            combiner.observe(&[1.0, 3.0], 1.0);
        }
        combiner.weights(2)
    }

    #[test]
    fn ewa_converges_to_best_expert() {
        let w = drill(&mut Ewa::new(0.5), 60);
        assert!(w[0] > 0.95, "w = {w:?}");
    }

    #[test]
    fn fixed_share_keeps_minimum_mass_on_losers() {
        let mut fs = FixedShare::new(0.5, 0.1);
        let w = drill(&mut fs, 200);
        assert!(w[0] > w[1]);
        // The share guarantees every expert keeps at least α/m mass.
        assert!(w[1] >= 0.05 - 1e-9, "w = {w:?}");
    }

    #[test]
    fn fixed_share_recovers_faster_than_ewa_after_switch() {
        let mut ewa = Ewa::new(0.5);
        let mut fs = FixedShare::new(0.5, 0.1);
        for c in [&mut ewa as &mut dyn Combiner, &mut fs as &mut dyn Combiner] {
            for _ in 0..100 {
                c.observe(&[1.0, 3.0], 1.0); // expert 0 wins
            }
            for _ in 0..5 {
                c.observe(&[3.0, 1.0], 1.0); // regime flips
            }
        }
        let we = ewa.weights(2);
        let wf = fs.weights(2);
        assert!(
            wf[1] > we[1],
            "fixed share should adapt faster: FS {wf:?} vs EWA {we:?}"
        );
    }

    #[test]
    fn ogd_converges_to_best_expert() {
        let w = drill(&mut Ogd::new(1.0), 300);
        assert!(w[0] > 0.8, "w = {w:?}");
    }

    #[test]
    fn ogd_weights_stay_on_simplex() {
        let mut ogd = Ogd::new(2.0);
        for t in 0..50 {
            ogd.observe(&[t as f64, -(t as f64), 5.0], 1.0);
            let w = ogd.weights(3);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn mlpol_converges_to_best_expert() {
        let w = drill(&mut MlPol::new(), 60);
        assert!(w[0] > 0.95, "w = {w:?}");
    }

    #[test]
    fn mlpol_uniform_when_no_positive_regret() {
        let mut m = MlPol::new();
        // A single expert: the ensemble equals it, so regret stays 0.
        m.observe(&[2.0], 1.0);
        assert_eq!(m.weights(1), vec![1.0]);
        assert_eq!(MlPol::new().weights(3), vec![1.0 / 3.0; 3]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn simplex_projection_properties() {
        let p = project_simplex(&[0.5, 0.5, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Already on the simplex: unchanged.
        let q = project_simplex(&[0.2, 0.3, 0.5]);
        for (a, b) in q.iter().zip([0.2, 0.3, 0.5].iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        // Dominant coordinate wins after projection of a spiky vector.
        let r = project_simplex(&[10.0, 0.0, 0.0]);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert_eq!(project_simplex(&[]).len(), 0);
    }

    #[test]
    fn warm_up_matches_observe_sequence() {
        let preds = vec![vec![1.0, 3.0]; 30];
        let actuals = vec![1.0; 30];
        let mut a = Ewa::new(0.5);
        a.warm_up(&preds, &actuals);
        let mut b = Ewa::new(0.5);
        for (p, &y) in preds.iter().zip(actuals.iter()) {
            b.observe(p, y);
        }
        assert_eq!(a.weights(2), b.weights(2));
    }
}
