//! Row-major dense `f64` matrix.

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// The storage is a single `Vec<f64>` of length `rows * cols`; element
/// `(i, j)` lives at index `i * cols + j`.  Indexing via `m[(i, j)]` is
/// bounds-checked in debug builds only (the underlying slice indexing
/// performs the check).
///
/// ```
/// use eadrl_linalg::Matrix;
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// let v = a.matvec(&[1.0, 1.0])?;
/// assert_eq!(v, vec![3.0, 7.0]);
/// # Ok::<(), eadrl_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "from_vec: {} values cannot fill a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the rows have uneven lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    context: format!(
                        "from_rows: row {i} has {} columns, expected {cols}",
                        r.len()
                    ),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a column vector (`n x 1`) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the row-major backing storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major backing storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose as a fresh matrix.
    ///
    /// Allocates; training-loop hot paths use
    /// [`transpose_into`](Self::transpose_into) with a reused buffer
    /// instead.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        crate::kernels::transpose(self.rows, self.cols, &self.data, &mut t.data);
        t
    }

    /// Writes the transpose into `out`, reshaping it in place.
    ///
    /// `out`'s existing allocation is reused whenever its capacity
    /// suffices, so repeated calls with the same shapes are
    /// allocation-free.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize(self.cols, self.rows);
        crate::kernels::transpose(self.rows, self.cols, &self.data, &mut out.data);
    }

    /// Reshapes `self` to `rows x cols` in place, reusing the backing
    /// allocation when its capacity suffices. The contents afterwards are
    /// unspecified (whatever the producing kernel writes) — this is a
    /// buffer-management primitive for the `_into` methods, not a view
    /// operation.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// Delegates to the cache-blocked [`kernels::gemm`](crate::kernels::gemm),
    /// whose per-element accumulation order matches the classic i-k-j loop
    /// bit for bit.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Matrix-matrix product written into `out` (reshaped in place, so
    /// repeated calls with the same shapes are allocation-free).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        out.resize(self.rows, other.cols);
        crate::kernels::gemm(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        Ok(())
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Each output element is [`vector::dot`](crate::vector::dot) of a row
    /// with `v` — the shared dot kernel, so the accumulation order is the
    /// canonical ascending-index sum.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product written into `out` (resized in place).
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("matvec: {}x{} * {}", self.rows, self.cols, v.len()),
            });
        }
        out.resize(self.rows, 0.0);
        crate::kernels::matvec(self.rows, self.cols, &self.data, v, out);
        Ok(())
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    pub fn tr_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("tr_matvec: ({}x{})ᵀ * {}", self.rows, self.cols, v.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let vi = v[i];
            for (o, &a) in out.iter_mut().zip(self.row(i).iter()) {
                *o += vi * a;
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (symmetric, `cols x cols`).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                // eadrl-lint: allow(no-float-eq): sparsity fast path — skipping exact zeros is bit-identical to multiplying by them
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g.data[i * self.cols + j] += a * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g.data[i * self.cols + j] = g.data[j * self.cols + i];
            }
        }
        g
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Returns `self` scaled by `s`.
    ///
    /// Allocates; prefer [`scale_in_place`](Self::scale_in_place) (or
    /// `*= s`) when the original is no longer needed.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(s);
        out
    }

    /// Scales every entry by `s` in place, allocation-free.
    pub fn scale_in_place(&mut self, s: f64) {
        crate::vector::scale_in_place(&mut self.data, s);
    }

    /// Adds `s` to every diagonal entry in place (useful for ridge terms and
    /// GP noise jitter).
    pub fn add_diagonal(&mut self, s: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Extracts the sub-matrix of the given half-open row/column ranges.
    pub fn submatrix(
        &self,
        row_range: std::ops::Range<usize>,
        col_range: std::ops::Range<usize>,
    ) -> Matrix {
        let rows = row_range.len();
        let cols = col_range.len();
        let mut data = Vec::with_capacity(rows * cols);
        for i in row_range {
            data.extend_from_slice(&self.row(i)[col_range.clone()]);
        }
        Matrix { rows, cols, data }
    }

    fn zip_with(&self, other: &Matrix, op: &str, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "{op}: {}x{} vs {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl std::ops::MulAssign<f64> for Matrix {
    /// In-place scalar scaling: `m *= s`.
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.scale_in_place(s);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = [1.0, 0.5, -1.0];
        let got = a.matvec(&v).unwrap();
        let expect = a.matmul(&Matrix::column(&v)).unwrap();
        assert_eq!(got, expect.col(0));
    }

    #[test]
    fn tr_matvec_matches_transpose_matvec() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = [1.0, -2.0, 3.0];
        assert_eq!(a.tr_matvec(&v).unwrap(), a.transpose().matvec(&v).unwrap());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_sub_scale_diagonal() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.add(&b).unwrap(), Matrix::filled(2, 2, 5.0));
        assert_eq!(a.sub(&a).unwrap(), Matrix::zeros(2, 2));
        assert_eq!(a.scale(2.0)[(1, 1)], 8.0);
        let mut c = a.clone();
        c.add_diagonal(10.0);
        assert_eq!(c[(0, 0)], 11.0);
        assert_eq!(c[(1, 1)], 14.0);
        assert_eq!(c[(0, 1)], 2.0);
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = m(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let s = a.submatrix(1..3, 0..2);
        assert_eq!(s, m(2, 2, &[4.0, 5.0, 7.0, 8.0]));
    }

    #[test]
    fn into_variants_match_allocating_ones_and_reuse_capacity() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);

        let mut out = Matrix::zeros(2, 2);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        let ptr = out.data().as_ptr();
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(
            out.data().as_ptr(),
            ptr,
            "repeat matmul_into must not reallocate"
        );

        let mut t = Matrix::default();
        a.transpose_into(&mut t);
        assert_eq!(t, a.transpose());

        let v = [1.0, 0.5, -1.0];
        let mut mv = Vec::new();
        a.matvec_into(&v, &mut mv).unwrap();
        assert_eq!(mv, a.matvec(&v).unwrap());

        assert!(a.matmul_into(&a, &mut out).is_err());
        assert!(a.matvec_into(&[1.0], &mut mv).is_err());
    }

    #[test]
    fn scale_in_place_and_mul_assign_match_scale() {
        let a = m(2, 2, &[1.0, -2.0, 3.0, 4.0]);
        let mut b = a.clone();
        b.scale_in_place(2.5);
        assert_eq!(b, a.scale(2.5));
        let mut c = a.clone();
        c *= 2.5;
        assert_eq!(c, b);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_rows(&rows).is_err());
    }

    #[test]
    fn frobenius_and_max_abs() {
        let a = m(2, 2, &[3.0, 0.0, -4.0, 0.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
    }
}
