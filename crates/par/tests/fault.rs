//! Fault injection: a task that panics mid-batch must surface a typed
//! [`ParError`] with the originating index, leak nothing (every item
//! dropped exactly once, every worker joined), and leave the pool fully
//! usable for the next call.

use eadrl_par::{par_map_with, ParError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Drop-counter guard: each instance bumps the shared counter exactly
/// once when dropped, wherever that drop happens (worker unwind,
/// abandoned chunk, merged result).
struct Guard {
    idx: usize,
    drops: Arc<AtomicUsize>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

fn guards(n: usize, drops: &Arc<AtomicUsize>) -> Vec<Guard> {
    (0..n)
        .map(|idx| Guard {
            idx,
            drops: Arc::clone(drops),
        })
        .collect()
}

#[test]
fn mid_batch_panic_surfaces_the_originating_index_and_leaks_nothing() {
    for threads in [1, 2, 4, 8] {
        let drops = Arc::new(AtomicUsize::new(0));
        let n = 23;
        let result = par_map_with(threads, guards(n, &drops), |g| {
            assert!(g.idx != 13, "injected failure at 13");
            g.idx
        });
        match result {
            Err(ParError::Panic { index, message }) => {
                assert_eq!(index, 13, "threads={threads}");
                assert!(message.contains("injected failure at 13"), "{message}");
            }
            other => panic!("expected ParError::Panic, got {other:?} (threads={threads})"),
        }
        // Every guard was dropped exactly once: completed results,
        // the panicking item (dropped by the unwind), the abandoned
        // remainder of the failing chunk, and the other workers' items.
        // Scoped threads guarantee all workers joined before par_map
        // returned, so no drop can still be pending on a leaked thread.
        assert_eq!(
            drops.load(Ordering::SeqCst),
            n,
            "leaked items at threads={threads}"
        );
    }
}

#[test]
fn pool_stays_usable_and_deterministic_after_faults() {
    // Alternate failing and clean batches; the clean batches must be
    // bitwise identical to the serial map every time.
    let expect: Vec<usize> = (0..40).map(|i| i * 7).collect();
    for round in 0..3 {
        let failing = par_map_with(4, (0..40usize).collect(), |i| {
            assert!(i != 5, "boom");
            i
        });
        assert!(
            matches!(failing, Err(ParError::Panic { index: 5, .. })),
            "round {round}"
        );
        let clean = par_map_with(4, (0..40usize).collect(), |i| i * 7);
        assert_eq!(clean.as_deref(), Ok(expect.as_slice()), "round {round}");
    }
}

#[test]
fn multiple_panicking_items_report_the_smallest_index() {
    // Panics at 3, 9, and 17 land in different chunks at 4 threads; the
    // reported index must be 3 for every thread count (deterministic
    // error, not first-to-fail).
    for threads in [1, 2, 4, 8] {
        let err = par_map_with(threads, (0..20usize).collect(), |i| {
            assert!(!matches!(i, 3 | 9 | 17), "fail {i}");
            i
        })
        .expect_err("must fail");
        assert!(
            matches!(err, ParError::Panic { index: 3, .. }),
            "threads={threads}: {err:?}"
        );
    }
}

#[test]
fn completed_prefix_is_dropped_not_returned_on_failure() {
    // Even when most items succeed, a failed batch returns only the
    // error — and still drops every produced result.
    let drops = Arc::new(AtomicUsize::new(0));
    let result = par_map_with(2, guards(10, &drops), |g| {
        assert!(g.idx != 9, "late failure");
        Guard {
            idx: g.idx + 100,
            drops: Arc::clone(&g.drops),
        }
    });
    assert!(matches!(result, Err(ParError::Panic { index: 9, .. })));
    drop(result);
    // 10 inputs + 9 produced outputs (indices 0..9 succeeded) = 19.
    assert_eq!(drops.load(Ordering::SeqCst), 19);
}
