//! Differential proof that the batched GEMM training path never changes
//! results: the full EA-DRL training + online-forecast pipeline is run
//! with [`UpdatePath::Batched`] and [`UpdatePath::PerSample`], each at
//! `EADRL_PAR_THREADS` ∈ {1, 4}, and all four runs must be bitwise
//! identical — both the online predictions and the actor's
//! `eadrl.weights` telemetry payloads. The per-sample serial run is the
//! reference; any accumulation-order, workspace-reuse, or blocking bug
//! in the batched kernels diverges here.
//!
//! Everything lives in ONE `#[test]` because the thread count comes
//! from an environment variable: tests in one binary may run
//! concurrently, and `set_var` must not race another assertion.

use eadrl_core::{EaDrl, EaDrlConfig};
use eadrl_datasets::{generate, DatasetId};
use eadrl_models::quick_pool;
use eadrl_obs::{Level, RingSink, Value};
use eadrl_rl::UpdatePath;
use std::sync::Arc;

/// One pipeline run: EA-DRL fit + 15 online predictions, capturing the
/// prediction bits and the actor's `eadrl.weights` payload bits.
fn run_pipeline(seed: u64, path: UpdatePath) -> (Vec<u64>, Vec<Vec<u64>>) {
    let sink = Arc::new(RingSink::new(4096));
    eadrl_obs::set_sink(sink.clone());
    eadrl_obs::set_level(Some(Level::Debug));

    let series = generate(DatasetId::TaxiDemand2, 360, seed);
    let (train, test) = series.split(0.75);
    let mut config = EaDrlConfig::default();
    config.omega = 8;
    config.episodes = 6;
    config.restarts = 1;
    config.ddpg.seed = seed;
    config.ddpg.update_path = path;
    let mut model = EaDrl::new(quick_pool(5, 48, seed), config);
    model.fit(train).expect("fit");

    let mut history = train.to_vec();
    let mut pred_bits = Vec::new();
    for &actual in test.iter().take(15) {
        pred_bits.push(model.predict_next(&history).to_bits());
        history.push(actual);
    }

    let weight_bits: Vec<Vec<u64>> = sink
        .events_named("eadrl.weights")
        .iter()
        .filter_map(|e| {
            e.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("weights", Value::F64s(w)) => Some(w.iter().map(|x| x.to_bits()).collect()),
                _ => None,
            })
        })
        .collect();
    assert!(
        !weight_bits.is_empty(),
        "expected eadrl.weights events at debug level"
    );
    (pred_bits, weight_bits)
}

#[test]
fn batched_and_per_sample_pipelines_are_bitwise_identical_at_1_and_4_threads() {
    let mut runs = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var(eadrl_par::THREADS_ENV, threads);
        for path in [UpdatePath::PerSample, UpdatePath::Batched] {
            runs.push((threads, path, run_pipeline(11, path)));
        }
    }
    std::env::remove_var(eadrl_par::THREADS_ENV);

    let (_, _, (ref_preds, ref_weights)) = &runs[0];
    for (threads, path, (preds, weights)) in &runs[1..] {
        assert_eq!(
            preds, ref_preds,
            "predictions diverged from per-sample serial at {threads} threads, {path:?} path"
        );
        assert_eq!(
            weights, ref_weights,
            "eadrl.weights telemetry diverged from per-sample serial at {threads} threads, \
             {path:?} path"
        );
    }
}
