//! SE (static ensemble) and SWE (sliding-window weighted ensemble).

use crate::combiner::{inverse_error_weights, Combiner, SlidingErrorWindow};

/// **SE** — the static ensemble: plain arithmetic mean of all base models
/// (Clemen & Winkler), the classical "forecast combination" baseline.
#[derive(Debug, Clone, Default)]
pub struct StaticEnsemble;

impl StaticEnsemble {
    /// Creates the static ensemble.
    pub fn new() -> Self {
        StaticEnsemble
    }
}

impl Combiner for StaticEnsemble {
    fn name(&self) -> &str {
        "SE"
    }

    fn warm_up(&mut self, _preds: &[Vec<f64>], _actuals: &[f64]) {}

    fn weights(&mut self, m: usize) -> Vec<f64> {
        vec![1.0 / m.max(1) as f64; m]
    }

    fn observe(&mut self, _preds: &[f64], _actual: f64) {}
}

/// **SWE** — sliding-window weighted ensemble: weights proportional to the
/// inverse RMSE of each base model over the last `window` observed steps
/// (Saadallah et al., BRIGHT).
#[derive(Debug, Clone)]
pub struct SlidingWindowEnsemble {
    window: SlidingErrorWindow,
}

impl SlidingWindowEnsemble {
    /// Creates an SWE with the given sliding-window length.
    pub fn new(window: usize) -> Self {
        SlidingWindowEnsemble {
            window: SlidingErrorWindow::new(window),
        }
    }
}

impl Combiner for SlidingWindowEnsemble {
    fn name(&self) -> &str {
        "SWE"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            self.window.push(p, a);
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        match self.window.model_rmse(m) {
            Some(errors) => inverse_error_weights(&errors),
            None => vec![1.0 / m.max(1) as f64; m],
        }
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        self.window.push(preds, actual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_ensemble_is_always_uniform() {
        let mut se = StaticEnsemble::new();
        assert_eq!(se.weights(4), vec![0.25; 4]);
        se.observe(&[1.0, 100.0, -5.0, 0.0], 1.0);
        assert_eq!(se.weights(4), vec![0.25; 4]);
        assert_eq!(se.combine(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn swe_shifts_weight_to_recent_winner() {
        let mut swe = SlidingWindowEnsemble::new(5);
        // Model 0 perfect, model 1 off by 2.
        for _ in 0..5 {
            swe.observe(&[1.0, 3.0], 1.0);
        }
        let w = swe.weights(2);
        assert!(w[0] > 0.9, "w = {w:?}");
        // Regime flips: model 1 becomes perfect. After the window fills
        // with the new regime, weights must follow.
        for _ in 0..5 {
            swe.observe(&[3.0, 1.0], 1.0);
        }
        let w2 = swe.weights(2);
        assert!(w2[1] > 0.9, "w2 = {w2:?}");
    }

    #[test]
    fn swe_without_history_is_uniform() {
        let mut swe = SlidingWindowEnsemble::new(10);
        assert_eq!(swe.weights(3), vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn swe_warm_up_seeds_the_window() {
        let mut swe = SlidingWindowEnsemble::new(10);
        let preds = vec![vec![1.0, 5.0]; 4];
        let actuals = vec![1.0; 4];
        swe.warm_up(&preds, &actuals);
        let w = swe.weights(2);
        assert!(w[0] > 0.9);
    }
}
