//! Ablation study over EA-DRL's design decisions (DESIGN.md §4) and the
//! paper's future-work extensions: each variant is evaluated on eight
//! datasets against the ten baseline combiners, reporting the average
//! rank (1 = best of 11) and mean test RMSE ratio to the default EA-DRL.
//!
//! ```text
//! cargo run -p eadrl-bench --release --bin ablation_study [-- --quick]
//! ```

use eadrl_bench::{
    build_pool, fit_pool, json_output, prediction_matrix, print_json_report, Scale, OMEGA,
};
use eadrl_core::baselines::all_baselines;
use eadrl_core::experiment::sanitize_predictions;
use eadrl_core::{
    run_combiner, AdaptiveEaDrl, Combiner, EaDrlConfig, EaDrlPolicy, RefreshTrigger, RewardKind,
};
use eadrl_datasets::{generate, DatasetId};
use eadrl_eval::render_table;
use eadrl_rl::{ActionSquash, SamplingStrategy};
use eadrl_timeseries::metrics::rmse;

struct Prepared {
    name: String,
    warm_preds: Vec<Vec<f64>>,
    warm_actuals: Vec<f64>,
    online_preds: Vec<Vec<f64>>,
    online_actuals: Vec<f64>,
    baseline_rmses: Vec<f64>,
}

fn prepare(id: DatasetId, scale: Scale) -> Prepared {
    let series = generate(id, scale.series_len, scale.seed);
    let cut = (series.len() as f64 * 0.75).round() as usize;
    let (train, test) = series.values().split_at(cut);
    let fit_len = (train.len() as f64 * 0.75).round() as usize;
    let (fit_part, warm_part) = train.split_at(fit_len);
    let season = series.frequency().default_season().min(series.len() / 4);
    let pool = fit_pool(build_pool(scale, season), fit_part);
    let mut warm_preds = prediction_matrix(&pool, fit_part, warm_part);
    let mut online_preds = prediction_matrix(&pool, train, test);
    sanitize_predictions(&mut warm_preds, fit_part);
    sanitize_predictions(&mut online_preds, train);

    let baseline_rmses = all_baselines(OMEGA, scale.seed)
        .into_iter()
        .map(|mut c| {
            c.warm_up(&warm_preds, warm_part);
            let out = run_combiner(c.as_mut(), &online_preds, test);
            rmse(test, &out)
        })
        .collect();

    Prepared {
        name: series.name().to_string(),
        warm_preds,
        warm_actuals: warm_part.to_vec(),
        online_preds,
        online_actuals: test.to_vec(),
        baseline_rmses,
    }
}

fn base_config(scale: Scale) -> EaDrlConfig {
    eadrl_bench::eadrl_config(scale)
}

fn run_variant(prepared: &Prepared, combiner: &mut dyn Combiner) -> f64 {
    combiner.warm_up(&prepared.warm_preds, &prepared.warm_actuals);
    let out = run_combiner(combiner, &prepared.online_preds, &prepared.online_actuals);
    rmse(&prepared.online_actuals, &out)
}

fn main() {
    let scale = Scale::from_args();
    let datasets = [
        DatasetId::WaterConsumption,
        DatasetId::BikeRentals,
        DatasetId::RiverFlow,
        DatasetId::SolarRadiation,
        DatasetId::TaxiDemand1,
        DatasetId::Nh4Concentration,
        DatasetId::EnergyTempOut,
        DatasetId::StockCac,
    ];
    eprintln!("preparing {} datasets...", datasets.len());
    let prepared: Vec<Prepared> = datasets.iter().map(|&id| prepare(id, scale)).collect();

    type Builder = Box<dyn Fn(EaDrlConfig) -> Box<dyn Combiner>>;
    let policy = |f: fn(&mut EaDrlConfig)| -> Builder {
        Box::new(move |mut cfg: EaDrlConfig| {
            f(&mut cfg);
            Box::new(EaDrlPolicy::new(cfg))
        })
    };
    let variants: Vec<(&str, Builder)> = vec![
        ("default", policy(|_| {})),
        (
            "reward: rank (raw Eq.3)",
            policy(|c| {
                c.reward = RewardKind::Rank { normalize: false };
            }),
        ),
        (
            "reward: 1 - NRMSE",
            policy(|c| {
                c.reward = RewardKind::OneMinusNrmse;
            }),
        ),
        (
            "reward: rank + diversity",
            policy(|c| {
                c.reward = RewardKind::RankWithDiversity { lambda: 0.2 };
            }),
        ),
        (
            "sampling: uniform",
            policy(|c| {
                c.ddpg.sampling = SamplingStrategy::Uniform;
            }),
        ),
        (
            "squash: bounded softmax",
            policy(|c| {
                c.ddpg.squash = ActionSquash::BoundedSoftmax { scale: 6.0 };
            }),
        ),
        (
            "no informed init",
            policy(|c| {
                c.informed_init = false;
            }),
        ),
        ("pool pruned to 25%", policy(|_| {})), // handled below via trained-policy path
        (
            "online refresh: periodic",
            Box::new(|cfg: EaDrlConfig| {
                Box::new(AdaptiveEaDrl::new(
                    cfg,
                    RefreshTrigger::Periodic { period: 40 },
                    90,
                ))
            }),
        ),
        (
            "online refresh: drift",
            Box::new(|cfg: EaDrlConfig| {
                Box::new(AdaptiveEaDrl::new(
                    cfg,
                    RefreshTrigger::DriftDetected {
                        delta: 0.05,
                        lambda: 8.0,
                    },
                    90,
                ))
            }),
        ),
    ];

    let mut default_rmses: Vec<f64> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<eadrl_obs::json::JsonValue> = Vec::new();
    for (label, builder) in &variants {
        let mut ranks = Vec::new();
        let mut ratios = Vec::new();
        for (di, p) in prepared.iter().enumerate() {
            let e = if *label == "pool pruned to 25%" {
                // Pruning removes the worst 75 % of columns by warm-up RMSE
                // before policy learning (future-work hook).
                let m = p.warm_preds[0].len();
                let keep = (m as f64 * 0.25).ceil() as usize;
                let mut sse = vec![0.0; m];
                for (row, &a) in p.warm_preds.iter().zip(p.warm_actuals.iter()) {
                    for (s, &v) in sse.iter_mut().zip(row.iter()) {
                        let err = v - a;
                        *s += err * err;
                    }
                }
                let mut order: Vec<usize> = (0..m).collect();
                order.sort_by(|&a, &b| sse[a].partial_cmp(&sse[b]).unwrap());
                let mut selected = order[..keep].to_vec();
                selected.sort_unstable();
                let shrink = |rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
                    rows.iter()
                        .map(|r| selected.iter().map(|&i| r[i]).collect())
                        .collect()
                };
                let warm = shrink(&p.warm_preds);
                let online = shrink(&p.online_preds);
                let mut c = EaDrlPolicy::new(base_config(scale));
                c.warm_up(&warm, &p.warm_actuals);
                let out = run_combiner(&mut c, &online, &p.online_actuals);
                rmse(&p.online_actuals, &out)
            } else {
                let mut combiner = builder(base_config(scale));
                run_variant(p, combiner.as_mut())
            };
            if *label == "default" {
                default_rmses.push(e);
            }
            let rank = 1 + p.baseline_rmses.iter().filter(|&&b| b < e).count();
            ranks.push(rank as f64);
            ratios.push(e / default_rmses[di].max(1e-12));
        }
        let avg_rank = ranks.iter().sum::<f64>() / ranks.len() as f64;
        let avg_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        eprintln!("  {label:<26} rank {avg_rank:.2} ratio {avg_ratio:.3}");
        json_rows.push(eadrl_obs::json::JsonValue::Obj(vec![
            ("variant".to_string(), (*label).into()),
            ("avg_rank".to_string(), avg_rank.into()),
            ("rmse_ratio".to_string(), avg_ratio.into()),
        ]));
        rows.push(vec![
            label.to_string(),
            format!("{avg_rank:.2}"),
            format!("{avg_ratio:.3}"),
        ]);
    }

    if json_output() {
        print_json_report(
            "ablation_study",
            vec![
                (
                    "datasets".to_string(),
                    eadrl_obs::json::JsonValue::Arr(
                        prepared.iter().map(|p| p.name.as_str().into()).collect(),
                    ),
                ),
                (
                    "variants".to_string(),
                    eadrl_obs::json::JsonValue::Arr(json_rows),
                ),
            ],
        );
        return;
    }

    println!("\nAblation study - EA-DRL variants vs the 10 baseline combiners");
    println!("(avg rank of 11, lower is better; RMSE ratio vs default EA-DRL)\n");
    println!(
        "{}",
        render_table(&["Variant", "Avg rank /11", "RMSE vs default"], &rows)
    );
    println!(
        "Datasets: {}",
        prepared
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
