//! Regenerates the paper's **Q3** result (§III, "On improving the
//! convergence"): the median-split diversity sampling of Eq. 4 reaches a
//! stable reward plateau in fewer episodes than the uniform replay
//! sampling of the original DDPG, and correspondingly less wall-clock.
//!
//! ```text
//! cargo run -p eadrl-bench --release --bin convergence [-- --quick]
//! ```

use eadrl_bench::{
    build_pool, fit_pool, json_output, mean_std, prediction_matrix, print_json_report, sparkline,
    Scale, OMEGA,
};
use eadrl_core::{EnsembleEnv, RewardKind};
use eadrl_datasets::{generate, DatasetId};
use eadrl_eval::render_table;
use eadrl_rl::{ActionSquash, DdpgAgent, DdpgConfig, SamplingStrategy};
use std::time::Instant;

/// Final plateau level: mean reward over the last quarter of episodes.
fn plateau(rewards: &[f64]) -> f64 {
    let q = (rewards.len() / 4).max(1);
    let (m, _) = mean_std(&rewards[rewards.len() - q..]);
    m
}

/// Episodes until the 5-episode running mean first reaches `threshold`
/// (the episode budget when it never does). Measuring speed *to a common
/// performance level* — not stability around any plateau — is what the
/// paper's "number of required episodes for convergence" compares.
fn episodes_to_reach(rewards: &[f64], threshold: f64) -> usize {
    let window = 5usize;
    for start in 0..rewards.len().saturating_sub(window - 1) {
        let w = &rewards[start..start + window];
        let mean = w.iter().sum::<f64>() / window as f64;
        if mean >= threshold {
            return start + window;
        }
    }
    rewards.len()
}

fn run(
    preds: &[Vec<f64>],
    actuals: &[f64],
    sampling: SamplingStrategy,
    episodes: usize,
    seed: u64,
) -> (Vec<f64>, f64) {
    let mut env = EnsembleEnv::new(
        preds.to_vec(),
        actuals.to_vec(),
        OMEGA,
        RewardKind::Rank { normalize: true },
        100,
    );
    let config = DdpgConfig {
        sampling,
        hidden: vec![32, 32],
        // Bounded softmax as in the EA-DRL configuration, so cold-start
        // training actually progresses instead of saturating (see the
        // squash docs); the sampling comparison is then meaningful.
        squash: ActionSquash::BoundedSoftmax { scale: 6.0 },
        seed,
        ..Default::default()
    };
    let mut agent = DdpgAgent::new(OMEGA, preds[0].len(), config);
    let start = Instant::now();
    let stats = agent.train(&mut env, episodes);
    let secs = start.elapsed().as_secs_f64();
    (stats.iter().map(|s| s.avg_reward).collect(), secs)
}

fn main() {
    let scale = Scale::from_args();
    let episodes = (scale.episodes * 2).max(60);
    let mut rows = Vec::new();
    let mut json_rows: Vec<eadrl_obs::json::JsonValue> = Vec::new();
    let mut div_eps = Vec::new();
    let mut uni_eps = Vec::new();
    let mut div_secs = Vec::new();
    let mut uni_secs = Vec::new();

    // A few representative datasets keep the runtime reasonable while
    // still averaging over different series characters.
    let datasets = [
        DatasetId::TaxiDemand1,
        DatasetId::SolarRadiation,
        DatasetId::StockDax,
    ];
    let seeds: &[u64] = if scale.quick_pool {
        &[42]
    } else {
        &[42, 1042, 2042]
    };
    for id in datasets {
        let series = generate(id, scale.series_len, scale.seed);
        let cut = (series.len() as f64 * 0.75).round() as usize;
        let train = &series.values()[..cut];
        let fit_len = (train.len() as f64 * 0.75).round() as usize;
        let (fit_part, warm_part) = train.split_at(fit_len);
        let season = series.frequency().default_season().min(series.len() / 4);
        let pool = fit_pool(build_pool(scale, season), fit_part);
        let preds = prediction_matrix(&pool, fit_part, warm_part);

        // Average episodes-to-target over several training seeds: single
        // DDPG runs are too noisy to compare sampling strategies.
        let mut de_sum = 0.0;
        let mut ue_sum = 0.0;
        let mut dsec_sum = 0.0;
        let mut usec_sum = 0.0;
        let mut last_div = Vec::new();
        let mut last_uni = Vec::new();
        for &seed in seeds {
            let (div_curve, dsec) = run(
                &preds,
                warm_part,
                SamplingStrategy::Diversity,
                episodes,
                seed,
            );
            let (uni_curve, usec) =
                run(&preds, warm_part, SamplingStrategy::Uniform, episodes, seed);
            let target = 0.97 * plateau(&div_curve).max(plateau(&uni_curve));
            de_sum += episodes_to_reach(&div_curve, target) as f64;
            ue_sum += episodes_to_reach(&uni_curve, target) as f64;
            dsec_sum += dsec;
            usec_sum += usec;
            last_div = div_curve;
            last_uni = uni_curve;
        }
        let k = seeds.len() as f64;
        let (de, ue) = (de_sum / k, ue_sum / k);
        let (dsec, usec) = (dsec_sum / k, usec_sum / k);
        div_eps.push(de);
        uni_eps.push(ue);
        div_secs.push(dsec);
        uni_secs.push(usec);
        eprintln!("  {:<28} diversity {}", series.name(), sparkline(&last_div));
        eprintln!("  {:<28} uniform   {}", series.name(), sparkline(&last_uni));
        json_rows.push(eadrl_obs::json::JsonValue::Obj(vec![
            ("dataset".to_string(), series.name().into()),
            ("episodes_to_convergence_diversity".to_string(), de.into()),
            ("episodes_to_convergence_uniform".to_string(), ue.into()),
            ("train_seconds_diversity".to_string(), dsec.into()),
            ("train_seconds_uniform".to_string(), usec.into()),
        ]));
        rows.push(vec![
            series.name().to_string(),
            format!("{de:.1}"),
            format!("{ue:.1}"),
            format!("{dsec:.2}"),
            format!("{usec:.2}"),
        ]);
    }

    if json_output() {
        let (dm, _) = mean_std(&div_eps);
        let (um, _) = mean_std(&uni_eps);
        print_json_report(
            "convergence",
            vec![
                ("episodes".to_string(), episodes.into()),
                (
                    "datasets".to_string(),
                    eadrl_obs::json::JsonValue::Arr(json_rows),
                ),
                ("avg_episodes_diversity".to_string(), dm.into()),
                ("avg_episodes_uniform".to_string(), um.into()),
            ],
        );
        return;
    }

    println!("\nQ3 - convergence: diversity (Eq. 4) vs uniform replay sampling\n");
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "eps-to-conv (div)",
                "eps-to-conv (uni)",
                "train s (div)",
                "train s (uni)"
            ],
            &rows,
        )
    );
    let (dm, _) = mean_std(&div_eps);
    let (um, _) = mean_std(&uni_eps);
    let (ds, _) = mean_std(&div_secs);
    let (us, _) = mean_std(&uni_secs);
    println!("Average episodes to convergence: diversity {dm:.1} vs uniform {um:.1}");
    println!("Average offline training time:   diversity {ds:.2}s vs uniform {us:.2}s");
    println!(
        "Paper: diversity sampling converged in ~100 episodes vs >250 for\nuniform (offline wall-clock ~300 min vs ~735 min on their testbed)."
    );
}
