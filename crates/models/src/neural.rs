//! Neural base forecasters: MLP, LSTM, Bi-LSTM, CNN-LSTM and Conv-LSTM.
//!
//! All five families from the paper's pool are trained the same way: Adam
//! on mini-batches of embedded windows, a fixed epoch budget, seeded
//! initialization. Windows arrive already z-scored via
//! [`crate::tabular::Windowed`], so no internal scaling is needed.
//!
//! Every family trains through a batched GEMM path. The MLP assembles
//! each shuffled chunk into a row matrix and runs one
//! [`Mlp::forward_batch`]/[`Mlp::backward_batch`] per network instead of
//! one pass per sample. The recurrent families (LSTM, Bi-LSTM, CNN-LSTM,
//! Conv-LSTM) stage the chunk's windows as one `B x in_dim` matrix *per
//! timestep* and run the stacked-gate kernels over persistent workspaces
//! ([`eadrl_nn::RecurrentWorkspace`] and friends): the sequential
//! recurrence still walks timesteps one at a time, but each step is a
//! batch-wide GEMM rather than B matvec loops. Both paths are bitwise
//! identical to the per-sample loops (the kernels preserve per-element
//! accumulation order; see `crates/nn/tests/recurrent_equivalence.rs`).
//! The two-layer stacked LSTM keeps the per-sample reference fit — its
//! layer-1 hidden sequence feeds layer 2 step-by-step, and the family is
//! a paper baseline, not a pool member, so it stays on the readable path.
//!
//! `predict_next` is alloc-free in steady state for all recurrent
//! families: each regressor carries a `Scratch`-wrapped inference cache
//! (interior mutability behind a `Mutex`, keeping the model `Send + Sync`)
//! and windows are consumed as strided slices instead of `Vec<Vec<f64>>`
//! sequences.
//!
//! Faithfulness note (documented in `DESIGN.md`): Conv-LSTM is implemented
//! as an LSTM over overlapping *patches* of the window — the input-to-state
//! transition sees a local receptive field per step, which is the
//! convolutional-locality property that distinguishes Conv-LSTM from plain
//! LSTM on univariate windows. CNN-LSTM is the literal composition
//! Conv1d → LSTM → linear head with end-to-end backprop.

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_linalg::Matrix;
use eadrl_nn::{
    mse_loss_grad, Activation, Adam, BiLstm, BiLstmInferenceCache, BiRecurrentWorkspace, Conv1d,
    ConvInferenceCache, ConvWorkspace, Dense, Lstm, LstmInferenceCache, Mlp, Network, Optimizer,
    RecurrentWorkspace,
};
use eadrl_rng::DetRng;
use std::sync::{Mutex, MutexGuard, PoisonError};

const BATCH: usize = 16;

/// Per-model inference scratch behind a `Mutex`: `predict` takes `&self`
/// (the `TabularModel` contract also demands `Send + Sync`), so reusable
/// buffers need interior mutability. Predictions are sequential per model
/// in practice, so the lock is uncontended. `Clone` hands out a *fresh*
/// scratch — the caches hold no model state, only reusable buffers.
#[derive(Debug, Default)]
struct Scratch<T>(Mutex<T>);

impl<T: Default> Clone for Scratch<T> {
    fn clone(&self) -> Self {
        Scratch::default()
    }
}

impl<T> Scratch<T> {
    fn lock(&self) -> MutexGuard<'_, T> {
        // A poisoned lock only means a previous predict panicked mid-call;
        // the buffers are still structurally valid scratch space.
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn shuffled_indices(n: usize, rng: &mut DetRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Two freshly built layers trained as one parameter group, so Adam's
/// positional moment buffers line up across batches. Training on locals
/// (and storing them only after the loop) keeps the `Option` fields out
/// of the hot path entirely — no `.expect("initialized")` needed.
struct ParamGroup2<'a, A: Network, B: Network>(&'a mut A, &'a mut B);

impl<A: Network, B: Network> Network for ParamGroup2<'_, A, B> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.0.visit_params(f);
        self.1.visit_params(f);
    }
}

/// Three-layer variant of [`ParamGroup2`] (conv/LSTM/head stacks).
struct ParamGroup3<'a, A: Network, B: Network, C: Network>(&'a mut A, &'a mut B, &'a mut C);

impl<A: Network, B: Network, C: Network> Network for ParamGroup3<'_, A, B, C> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.0.visit_params(f);
        self.1.visit_params(f);
        self.2.visit_params(f);
    }
}

/// MLP regressor over windows (paper family **MLP**).
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    hidden: Vec<usize>,
    epochs: usize,
    lr: f64,
    seed: u64,
    net: Option<Mlp>,
}

impl MlpRegressor {
    /// Creates an unfitted MLP with the given hidden-layer sizes.
    pub fn new(hidden: Vec<usize>, epochs: usize, lr: f64, seed: u64) -> Self {
        MlpRegressor {
            hidden,
            epochs: epochs.max(1),
            lr,
            seed,
            net: None,
        }
    }
}

impl TabularModel for MlpRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut sizes = vec![inputs[0].len()];
        sizes.extend(&self.hidden);
        sizes.push(1);
        let mut net = Mlp::new(&mut rng, &sizes, Activation::Relu, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        // Chunk staging matrices, reused across batches so the steady
        // state allocates nothing beyond `mse_loss_grad`'s tiny per-row
        // vector.
        let mut xb = Matrix::default();
        let mut gb = Matrix::default();
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                net.zero_grad();
                let n = chunk.len();
                xb.resize(n, sizes[0]);
                for (r, &i) in chunk.iter().enumerate() {
                    xb.row_mut(r).copy_from_slice(&inputs[i]);
                }
                gb.resize(n, 1);
                {
                    let out = net.forward_batch(&xb);
                    for (r, &i) in chunk.iter().enumerate() {
                        let g = mse_loss_grad(out.row(r), &[targets[i]]);
                        gb.row_mut(r).copy_from_slice(&g);
                    }
                }
                net.backward_batch_weights_only(&gb);
                net.clip_grad_norm(5.0);
                opt.step(&mut net);
            }
        }
        self.net = Some(net);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        self.net
            .as_ref()
            .map_or(0.0, |n| n.forward_inference(input)[0])
    }
}

/// Turns a window into a sequence of 1-dimensional inputs.
fn window_to_seq(window: &[f64]) -> Vec<Vec<f64>> {
    window.iter().map(|&v| vec![v]).collect()
}

/// LSTM regressor (paper family **LSTM**): LSTM over the window as a
/// length-k sequence, linear head on the final hidden state.
#[derive(Debug, Clone)]
pub struct LstmRegressor {
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    lstm: Option<Lstm>,
    head: Option<Dense>,
    scratch: Scratch<(LstmInferenceCache, [f64; 1])>,
}

impl LstmRegressor {
    /// Creates an unfitted LSTM regressor.
    pub fn new(hidden: usize, epochs: usize, lr: f64, seed: u64) -> Self {
        LstmRegressor {
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            lstm: None,
            head: None,
            scratch: Scratch::default(),
        }
    }
}

impl TabularModel for LstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let steps = inputs[0].len();
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut lstm = Lstm::new(&mut rng, 1, self.hidden);
        let mut head = Dense::new(&mut rng, self.hidden, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        // Persistent staging: the recurrent workspace plus the head's
        // chunk matrices are reused across every batch and epoch.
        let mut ws = RecurrentWorkspace::new();
        let mut hb = Matrix::default();
        let mut gb = Matrix::default();
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup2(&mut lstm, &mut head);
                group.zero_grad();
                let n = chunk.len();
                ws.stage(n, steps, 1, self.hidden);
                for (s, &i) in chunk.iter().enumerate() {
                    debug_assert_eq!(inputs[i].len(), steps, "uniform window length");
                    for (t, v) in inputs[i].iter().enumerate() {
                        ws.set_input(s, t, std::slice::from_ref(v));
                    }
                }
                group.0.forward_batch(&mut ws);
                hb.resize(n, self.hidden);
                hb.data_mut().copy_from_slice(ws.h_last());
                gb.resize(n, 1);
                {
                    let out = group.1.forward_batch(&hb);
                    for (r, &i) in chunk.iter().enumerate() {
                        let g = mse_loss_grad(out.row(r), &[targets[i]]);
                        gb.row_mut(r).copy_from_slice(&g);
                    }
                }
                let gh = group.1.backward_batch(&gb);
                group.0.backward_batch_last(gh.data(), &mut ws, false);
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.lstm = Some(lstm);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(lstm), Some(head)) = (self.lstm.as_ref(), self.head.as_ref()) else {
            return 0.0;
        };
        let mut guard = self.scratch.lock();
        let (cache, out) = &mut *guard;
        let h = lstm.forward_inference_cached(input, 1, cache);
        head.forward_inference_into(h, out);
        out[0]
    }
}

/// Bi-LSTM regressor (paper family **Bi-LSTM**).
#[derive(Debug, Clone)]
pub struct BiLstmRegressor {
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    bilstm: Option<BiLstm>,
    head: Option<Dense>,
    scratch: Scratch<(BiLstmInferenceCache, [f64; 1])>,
}

impl BiLstmRegressor {
    /// Creates an unfitted Bi-LSTM regressor (each direction `hidden` wide).
    pub fn new(hidden: usize, epochs: usize, lr: f64, seed: u64) -> Self {
        BiLstmRegressor {
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            bilstm: None,
            head: None,
            scratch: Scratch::default(),
        }
    }
}

impl TabularModel for BiLstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let steps = inputs[0].len();
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut bilstm = BiLstm::new(&mut rng, 1, self.hidden);
        let mut head = Dense::new(&mut rng, 2 * self.hidden, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        let mut ws = BiRecurrentWorkspace::new();
        let mut hb = Matrix::default();
        let mut gb = Matrix::default();
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup2(&mut bilstm, &mut head);
                group.zero_grad();
                let n = chunk.len();
                ws.stage(n, steps, 1, self.hidden);
                for (s, &i) in chunk.iter().enumerate() {
                    debug_assert_eq!(inputs[i].len(), steps, "uniform window length");
                    for (t, v) in inputs[i].iter().enumerate() {
                        ws.set_input(s, t, std::slice::from_ref(v));
                    }
                }
                group.0.forward_batch(&mut ws);
                hb.resize(n, 2 * self.hidden);
                hb.data_mut().copy_from_slice(ws.output());
                gb.resize(n, 1);
                {
                    let out = group.1.forward_batch(&hb);
                    for (r, &i) in chunk.iter().enumerate() {
                        let g = mse_loss_grad(out.row(r), &[targets[i]]);
                        gb.row_mut(r).copy_from_slice(&g);
                    }
                }
                let gh = group.1.backward_batch(&gb);
                group.0.backward_batch_last(gh.data(), &mut ws, false);
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.bilstm = Some(bilstm);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(b), Some(head)) = (self.bilstm.as_ref(), self.head.as_ref()) else {
            return 0.0;
        };
        let mut guard = self.scratch.lock();
        let (cache, out) = &mut *guard;
        let h = b.forward_inference_cached(input, 1, cache);
        head.forward_inference_into(h, out);
        out[0]
    }
}

/// CNN-LSTM regressor (paper family **CNN-LSTM**): Conv1d features over the
/// window, LSTM over the feature sequence, linear head.
#[derive(Debug, Clone)]
pub struct CnnLstmRegressor {
    channels: usize,
    kernel: usize,
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    conv: Option<Conv1d>,
    lstm: Option<Lstm>,
    head: Option<Dense>,
    scratch: Scratch<(ConvInferenceCache, LstmInferenceCache, [f64; 1])>,
}

impl CnnLstmRegressor {
    /// Creates an unfitted CNN-LSTM.
    pub fn new(
        channels: usize,
        kernel: usize,
        hidden: usize,
        epochs: usize,
        lr: f64,
        seed: u64,
    ) -> Self {
        CnnLstmRegressor {
            channels: channels.max(1),
            kernel: kernel.max(1),
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            conv: None,
            lstm: None,
            head: None,
            scratch: Scratch::default(),
        }
    }
}

impl TabularModel for CnnLstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let window = inputs[0].len();
        if window < self.kernel {
            return Err(ModelError::Numerical {
                context: format!("window {window} shorter than conv kernel {}", self.kernel),
            });
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut conv = Conv1d::new(&mut rng, 1, self.channels, self.kernel, Activation::Relu);
        let mut lstm = Lstm::new(&mut rng, self.channels, self.hidden);
        let mut head = Dense::new(&mut rng, self.hidden, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        let t_out = window - self.kernel + 1;
        let ch = self.channels;
        let mut cws = ConvWorkspace::new();
        let mut ws = RecurrentWorkspace::new();
        let mut hb = Matrix::default();
        let mut gb = Matrix::default();
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup3(&mut conv, &mut lstm, &mut head);
                group.zero_grad();
                let n = chunk.len();
                group.0.stage_batch(&mut cws, n, window);
                for (s, &i) in chunk.iter().enumerate() {
                    debug_assert_eq!(inputs[i].len(), window, "uniform window length");
                    cws.input_mut(s).copy_from_slice(&inputs[i]);
                }
                group.0.forward_batch(&mut cws);
                ws.stage(n, t_out, ch, self.hidden);
                for s in 0..n {
                    for t in 0..t_out {
                        ws.set_input(s, t, cws.output_row(s, t));
                    }
                }
                group.1.forward_batch(&mut ws);
                hb.resize(n, self.hidden);
                hb.data_mut().copy_from_slice(ws.h_last());
                gb.resize(n, 1);
                {
                    let out = group.2.forward_batch(&hb);
                    for (r, &i) in chunk.iter().enumerate() {
                        let g = mse_loss_grad(out.row(r), &[targets[i]]);
                        gb.row_mut(r).copy_from_slice(&g);
                    }
                }
                let gh = group.2.backward_batch(&gb);
                group.1.backward_batch_last(gh.data(), &mut ws, true);
                for t in 0..t_out {
                    let gx = ws.grad_x(t);
                    for s in 0..n {
                        cws.grad_output_row_mut(s, t)
                            .copy_from_slice(&gx[s * ch..(s + 1) * ch]);
                    }
                }
                group.0.backward_batch_weights_only(&mut cws);
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.conv = Some(conv);
        self.lstm = Some(lstm);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(conv), Some(lstm), Some(head)) =
            (self.conv.as_ref(), self.lstm.as_ref(), self.head.as_ref())
        else {
            return 0.0;
        };
        let mut guard = self.scratch.lock();
        let (conv_cache, lstm_cache, out) = &mut *guard;
        let y = conv.forward_inference_cached(input, conv_cache);
        let h = lstm.forward_inference_cached(y, self.channels, lstm_cache);
        head.forward_inference_into(h, out);
        out[0]
    }
}

/// Conv-LSTM regressor (paper family **Conv-LSTM**): LSTM over overlapping
/// width-`patch` slices of the window, so every input-to-state transition
/// has a local receptive field.
#[derive(Debug, Clone)]
pub struct ConvLstmRegressor {
    patch: usize,
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    lstm: Option<Lstm>,
    head: Option<Dense>,
    scratch: Scratch<(LstmInferenceCache, [f64; 1])>,
}

impl ConvLstmRegressor {
    /// Creates an unfitted Conv-LSTM regressor.
    pub fn new(patch: usize, hidden: usize, epochs: usize, lr: f64, seed: u64) -> Self {
        ConvLstmRegressor {
            patch: patch.max(1),
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            lstm: None,
            head: None,
            scratch: Scratch::default(),
        }
    }
}

impl TabularModel for ConvLstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let window = inputs[0].len();
        let in_dim = self.patch.min(window);
        let steps = window - in_dim + 1;
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut lstm = Lstm::new(&mut rng, in_dim, self.hidden);
        let mut head = Dense::new(&mut rng, self.hidden, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        let mut ws = RecurrentWorkspace::new();
        let mut hb = Matrix::default();
        let mut gb = Matrix::default();
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup2(&mut lstm, &mut head);
                group.zero_grad();
                let n = chunk.len();
                ws.stage(n, steps, in_dim, self.hidden);
                for (s, &i) in chunk.iter().enumerate() {
                    debug_assert_eq!(inputs[i].len(), window, "uniform window length");
                    for t in 0..steps {
                        ws.set_input(s, t, &inputs[i][t..t + in_dim]);
                    }
                }
                group.0.forward_batch(&mut ws);
                hb.resize(n, self.hidden);
                hb.data_mut().copy_from_slice(ws.h_last());
                gb.resize(n, 1);
                {
                    let out = group.1.forward_batch(&hb);
                    for (r, &i) in chunk.iter().enumerate() {
                        let g = mse_loss_grad(out.row(r), &[targets[i]]);
                        gb.row_mut(r).copy_from_slice(&g);
                    }
                }
                let gh = group.1.backward_batch(&gb);
                group.0.backward_batch_last(gh.data(), &mut ws, false);
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.lstm = Some(lstm);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(lstm), Some(head)) = (self.lstm.as_ref(), self.head.as_ref()) else {
            return 0.0;
        };
        let mut guard = self.scratch.lock();
        let (cache, out) = &mut *guard;
        let h = lstm.forward_inference_cached(input, 1, cache);
        head.forward_inference_into(h, out);
        out[0]
    }
}

/// Stacked-LSTM regressor (the paper's **StLSTM** baseline): two LSTM
/// layers — the full hidden sequence of the first feeds the second — with a
/// linear head on the second layer's final hidden state. The paper frames
/// this as "an ensemble of LSTMs combined using a cascading approach".
#[derive(Debug, Clone)]
pub struct StackedLstmRegressor {
    hidden1: usize,
    hidden2: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    lstm1: Option<Lstm>,
    lstm2: Option<Lstm>,
    head: Option<Dense>,
    scratch: Scratch<(LstmInferenceCache, LstmInferenceCache, [f64; 1])>,
}

impl StackedLstmRegressor {
    /// Creates an unfitted two-layer stacked LSTM.
    pub fn new(hidden1: usize, hidden2: usize, epochs: usize, lr: f64, seed: u64) -> Self {
        StackedLstmRegressor {
            hidden1: hidden1.max(1),
            hidden2: hidden2.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            lstm1: None,
            lstm2: None,
            head: None,
            scratch: Scratch::default(),
        }
    }
}

impl TabularModel for StackedLstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut lstm1 = Lstm::new(&mut rng, 1, self.hidden1);
        let mut lstm2 = Lstm::new(&mut rng, self.hidden1, self.hidden2);
        let mut head = Dense::new(&mut rng, self.hidden2, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup3(&mut lstm1, &mut lstm2, &mut head);
                group.zero_grad();
                for &i in chunk {
                    let seq = window_to_seq(&inputs[i]);
                    let hs1 = group.0.forward_sequence_full(&seq);
                    let h2 = group.1.forward_sequence(&hs1);
                    let y = group.2.forward(&h2);
                    let g = mse_loss_grad(&y, &[targets[i]]);
                    let gh2 = group.2.backward(&g);
                    let gh1 = group.1.backward_last(&gh2);
                    group.0.backward_full(&gh1);
                }
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.lstm1 = Some(lstm1);
        self.lstm2 = Some(lstm2);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(l1), Some(l2), Some(head)) =
            (self.lstm1.as_ref(), self.lstm2.as_ref(), self.head.as_ref())
        else {
            return 0.0;
        };
        let mut guard = self.scratch.lock();
        let (c1, c2, out) = &mut *guard;
        let hs1 = l1.forward_inference_cached_full(input, 1, c1);
        let h2 = l2.forward_inference_cached(hs1, l2.in_dim(), c2);
        head.forward_inference_into(h2, out);
        out[0]
    }
}

/// An MLP forecaster over embedded windows.
pub fn mlp_forecaster(
    k: usize,
    hidden: Vec<usize>,
    epochs: usize,
    seed: u64,
) -> Windowed<MlpRegressor> {
    Windowed::new(
        format!("MLP({hidden:?})"),
        k,
        MlpRegressor::new(hidden, epochs, 0.01, seed),
    )
}

/// An LSTM forecaster over embedded windows.
pub fn lstm_forecaster(
    k: usize,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<LstmRegressor> {
    Windowed::new(
        format!("LSTM(h={hidden})"),
        k,
        LstmRegressor::new(hidden, epochs, 0.01, seed),
    )
}

/// A Bi-LSTM forecaster over embedded windows.
pub fn bilstm_forecaster(
    k: usize,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<BiLstmRegressor> {
    Windowed::new(
        format!("BiLSTM(h={hidden})"),
        k,
        BiLstmRegressor::new(hidden, epochs, 0.01, seed),
    )
}

/// A stacked-LSTM forecaster over embedded windows (paper baseline
/// **StLSTM**).
pub fn stacked_lstm_forecaster(
    k: usize,
    hidden1: usize,
    hidden2: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<StackedLstmRegressor> {
    Windowed::new(
        format!("StLSTM(h={hidden1},{hidden2})"),
        k,
        StackedLstmRegressor::new(hidden1, hidden2, epochs, 0.01, seed),
    )
}

/// A CNN-LSTM forecaster over embedded windows.
pub fn cnn_lstm_forecaster(
    k: usize,
    channels: usize,
    kernel: usize,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<CnnLstmRegressor> {
    Windowed::new(
        format!("CNN-LSTM(c={channels},k={kernel},h={hidden})"),
        k,
        CnnLstmRegressor::new(channels, kernel, hidden, epochs, 0.01, seed),
    )
}

/// A Conv-LSTM forecaster over embedded windows.
pub fn conv_lstm_forecaster(
    k: usize,
    patch: usize,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<ConvLstmRegressor> {
    Windowed::new(
        format!("Conv-LSTM(p={patch},h={hidden})"),
        k,
        ConvLstmRegressor::new(patch, hidden, epochs, 0.01, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    /// Reference construction of the Conv-LSTM patch sequence: overlapping
    /// width-`patch` slices at stride 1 (the fit loop stages the same
    /// slices directly into the recurrent workspace).
    fn window_to_patches(window: &[f64], patch: usize) -> Vec<Vec<f64>> {
        if window.len() < patch {
            return vec![window.to_vec()];
        }
        (0..=window.len() - patch)
            .map(|i| window[i..i + patch].to_vec())
            .collect()
    }

    fn sine_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 3.0 + 10.0)
            .collect()
    }

    #[test]
    fn mlp_learns_sine_continuation() {
        let s = sine_series(220);
        let mut m = mlp_forecaster(5, vec![16], 60, 1);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 220.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.0, "pred {pred} truth {truth}");
    }

    #[test]
    fn lstm_learns_sine_continuation() {
        let s = sine_series(200);
        let mut m = lstm_forecaster(5, 8, 40, 2);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.2, "pred {pred} truth {truth}");
    }

    #[test]
    fn bilstm_runs_and_is_deterministic() {
        let s = sine_series(150);
        let mut a = bilstm_forecaster(5, 6, 15, 3);
        let mut b = bilstm_forecaster(5, 6, 15, 3);
        a.fit(&s).unwrap();
        b.fit(&s).unwrap();
        assert_eq!(a.predict_next(&s), b.predict_next(&s));
        assert!(a.predict_next(&s).is_finite());
    }

    #[test]
    fn cnn_lstm_learns_sine() {
        let s = sine_series(200);
        let mut m = cnn_lstm_forecaster(5, 4, 2, 8, 40, 4);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.5, "pred {pred} truth {truth}");
    }

    #[test]
    fn conv_lstm_learns_sine() {
        let s = sine_series(200);
        let mut m = conv_lstm_forecaster(5, 3, 8, 40, 5);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.5, "pred {pred} truth {truth}");
    }

    #[test]
    fn stacked_lstm_learns_sine() {
        let s = sine_series(200);
        let mut m = stacked_lstm_forecaster(5, 8, 8, 40, 6);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.5, "pred {pred} truth {truth}");
    }

    #[test]
    fn kernel_larger_than_window_is_fit_error() {
        let s = sine_series(100);
        let mut m = Windowed::new("bad", 3, CnnLstmRegressor::new(2, 5, 4, 5, 0.01, 0));
        assert!(m.fit(&s).is_err());
    }

    #[test]
    fn patches_cover_window() {
        let p = window_to_patches(&[1.0, 2.0, 3.0, 4.0], 3);
        assert_eq!(p, vec![vec![1.0, 2.0, 3.0], vec![2.0, 3.0, 4.0]]);
        // Patch wider than window degrades to the whole window.
        let q = window_to_patches(&[1.0, 2.0], 5);
        assert_eq!(q, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn unfitted_models_predict_zero() {
        assert_eq!(
            MlpRegressor::new(vec![4], 5, 0.01, 0).predict(&[1.0; 5]),
            0.0
        );
        assert_eq!(LstmRegressor::new(4, 5, 0.01, 0).predict(&[1.0; 5]), 0.0);
        assert_eq!(BiLstmRegressor::new(4, 5, 0.01, 0).predict(&[1.0; 5]), 0.0);
        assert_eq!(
            CnnLstmRegressor::new(2, 2, 4, 5, 0.01, 0).predict(&[1.0; 5]),
            0.0
        );
        assert_eq!(
            ConvLstmRegressor::new(2, 4, 5, 0.01, 0).predict(&[1.0; 5]),
            0.0
        );
    }
}
