//! A free fn sharing the trait method's name: bare calls inside this
//! module must resolve here (same-module wins), not into the `Model`
//! implementors — one of which panics.

/// Same name as `Model::score`, but a free fn that cannot panic.
pub fn score(x: f64) -> f64 {
    x + 1.0
}

/// Calls the module-local `score`. Must stay `safe` even though
/// `Risky::score` (same name, different kind) panics.
pub fn call_free(x: f64) -> f64 {
    score(x)
}
