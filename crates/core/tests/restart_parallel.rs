//! Differential proof that the parallel restart sweep never changes the
//! trained policy: `EaDrlPolicy::warm_up` with several restarts is run at
//! `EADRL_PAR_THREADS` ∈ {1, 4} and the post-warm-up snapshot bits, the
//! online predictions, the `eadrl.weights` telemetry payloads, and the
//! per-restart `eadrl.restart` events (order included) must all be
//! bitwise identical. The serial run (1 thread) is the reference.
//!
//! The same binary then exercises the warm-start refresh path: a
//! drift-triggered `WarmStart` refresh must still recover after a regime
//! flip (the RMSE bound the cold path established) while running far
//! fewer training episodes per refresh.
//!
//! Everything lives in ONE `#[test]` because the thread count comes from
//! an environment variable: tests in one binary may run concurrently,
//! and `set_var` must not race another assertion.

use eadrl_core::{
    run_combiner, AdaptiveEaDrl, Combiner, EaDrlConfig, EaDrlPolicy, RefreshStrategy,
    RefreshTrigger,
};
use eadrl_obs::{Level, RingSink, Value};
use eadrl_timeseries::metrics::rmse;
use std::sync::Arc;

fn quick_config(restarts: usize) -> EaDrlConfig {
    let mut config = EaDrlConfig::default();
    config.omega = 6;
    config.episodes = 8;
    config.max_iter = 40;
    config.restarts = restarts;
    config
}

/// Model 0 accurate before the flip, model 1 after, model 2 never.
fn regime_stream(n: usize, flip: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let actuals: Vec<f64> = (0..n)
        .map(|t| (t as f64 / 6.0).sin() * 3.0 + 10.0)
        .collect();
    let preds = actuals
        .iter()
        .enumerate()
        .map(|(t, &a)| {
            let w = ((t * 7) % 13) as f64 / 13.0 - 0.5;
            if t < flip {
                vec![a + 0.1 * w, a + 2.5 + w, a - 7.0]
            } else {
                vec![a + 2.5 - w, a + 0.1 * w, a - 7.0]
            }
        })
        .collect();
    (preds, actuals)
}

/// One warm-up + online run at the current thread count, capturing every
/// bit the determinism contract covers.
struct RunCapture {
    snapshot_bits: (Vec<u64>, Vec<u64>),
    prediction_bits: Vec<u64>,
    weight_payload_bits: Vec<Vec<u64>>,
    restart_events: Vec<String>,
}

fn run_warm_up() -> RunCapture {
    let sink = Arc::new(RingSink::new(4096));
    eadrl_obs::set_sink(sink.clone());
    eadrl_obs::set_level(Some(Level::Debug));

    let (preds, actuals) = regime_stream(260, 500); // no flip in range
    let (wp, op) = preds.split_at(120);
    let (wa, oa) = actuals.split_at(120);

    let mut policy = EaDrlPolicy::new(quick_config(4));
    policy.warm_up(wp, wa);
    let snapshot = policy.snapshot().expect("trained policy must snapshot");
    let snapshot_bits = (
        snapshot.params.iter().map(|p| p.to_bits()).collect(),
        snapshot.window.iter().map(|w| w.to_bits()).collect(),
    );

    let out = run_combiner(&mut policy, op, oa);
    let prediction_bits = out.iter().map(|p| p.to_bits()).collect();

    let weight_payload_bits: Vec<Vec<u64>> = sink
        .events_named("eadrl.weights")
        .iter()
        .filter_map(|e| {
            e.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("weights", Value::F64s(w)) => Some(w.iter().map(|x| x.to_bits()).collect()),
                _ => None,
            })
        })
        .collect();
    assert!(
        !weight_payload_bits.is_empty(),
        "expected eadrl.weights events at debug level"
    );
    // Debug-formatting of f64 round-trips, so this captures both the
    // payload bits and the field order of every per-restart event.
    let restart_events = sink
        .events_named("eadrl.restart")
        .iter()
        .map(|e| format!("{:?}", e.fields))
        .collect();
    RunCapture {
        snapshot_bits,
        prediction_bits,
        weight_payload_bits,
        restart_events,
    }
}

#[test]
fn parallel_restarts_and_warm_start_refresh_match_serial_contract() {
    // --- Part 1: serial vs parallel restart sweep, bit for bit. ---
    let mut runs = Vec::new();
    for threads in ["1", "4"] {
        std::env::set_var(eadrl_par::THREADS_ENV, threads);
        runs.push((threads, run_warm_up()));
    }
    std::env::remove_var(eadrl_par::THREADS_ENV);

    let (_, reference) = &runs[0];
    assert_eq!(
        reference.restart_events.len(),
        4,
        "one eadrl.restart event per restart"
    );
    for (i, ev) in reference.restart_events.iter().enumerate() {
        assert!(
            ev.contains(&format!("(\"restart\", U64({i}))")),
            "restart events must flush in restart order, got {ev} at {i}"
        );
    }
    for (threads, run) in &runs[1..] {
        assert_eq!(
            run.snapshot_bits, reference.snapshot_bits,
            "policy snapshot diverged from serial at {threads} threads"
        );
        assert_eq!(
            run.prediction_bits, reference.prediction_bits,
            "predictions diverged from serial at {threads} threads"
        );
        assert_eq!(
            run.weight_payload_bits, reference.weight_payload_bits,
            "eadrl.weights telemetry diverged from serial at {threads} threads"
        );
        assert_eq!(
            run.restart_events, reference.restart_events,
            "eadrl.restart telemetry diverged from serial at {threads} threads"
        );
    }

    // --- Part 2: warm-start refresh still recovers from drift, with a
    // fraction of the training episodes per refresh. ---
    let (preds, actuals) = regime_stream(320, 200);
    let (wp, op) = preds.split_at(100);
    let (wa, oa) = actuals.split_at(100);

    let mut frozen = EaDrlPolicy::new(quick_config(1));
    frozen.warm_up(wp, wa);
    let frozen_out = run_combiner(&mut frozen, op, oa);

    let warm_episodes = 6;
    let mut adaptive = AdaptiveEaDrl::new(
        quick_config(1),
        RefreshTrigger::DriftDetected {
            delta: 0.05,
            lambda: 6.0,
        },
        60,
    )
    .with_strategy(RefreshStrategy::WarmStart {
        episodes: warm_episodes,
    });
    adaptive.warm_up(wp, wa);
    let adaptive_out = run_combiner(&mut adaptive, op, oa);

    assert!(
        adaptive.refreshes() >= 1,
        "drift never triggered a warm-start refresh"
    );
    // Each warm-start refresh trained `warm_episodes` episodes, not the
    // full offline schedule — the policy's learning curve records the
    // last refinement run.
    assert_eq!(
        adaptive.policy().learning_curve().len(),
        warm_episodes,
        "warm-start refresh must run only the configured refinement episodes"
    );
    // Post-flip segment (flip at absolute 200 = online step 100): the
    // same recovery bound the cold-strategy drift test enforces.
    let frozen_post = rmse(&oa[120..], &frozen_out[120..]);
    let adaptive_post = rmse(&oa[120..], &adaptive_out[120..]);
    assert!(
        adaptive_post < frozen_post,
        "warm-start refresh did not help after drift: adaptive {adaptive_post:.3} vs frozen {frozen_post:.3}"
    );
}
