//! The EA-DRL MDP (§II-B of the paper).

use eadrl_rl::Environment;
use eadrl_timeseries::metrics::nrmse;
use eadrl_timeseries::window::SlideWindow;

/// Normalizes a state window relative to its own mean and standard
/// deviation, so the policy sees a level- and scale-free shape.
///
/// The paper does not specify the state normalization; window-relative
/// standardization is chosen because several evaluation series (stock
/// indices, drifting demand) wander far from the training level online,
/// and a fixed global scaler would push the policy network out of its
/// training distribution exactly when adaptivity matters most.
pub fn normalize_window(window: &[f64]) -> Vec<f64> {
    if window.is_empty() {
        return Vec::new();
    }
    let mean = window.iter().sum::<f64>() / window.len() as f64;
    let var = window.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / window.len() as f64;
    let std = var.sqrt().max(1e-9);
    window.iter().map(|v| (v - mean) / std).collect()
}

/// Reward definition for the ensemble environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RewardKind {
    /// The paper's Eq. 3: `r_t = m + 1 - ρ(ensemble)`, where ρ is the
    /// ensemble's rank (1 = most accurate) among the m base models plus
    /// the ensemble itself, by absolute one-step error. With
    /// `normalize = true` the reward is divided by `m` so it lies in
    /// `(0, 1]` regardless of pool size.
    Rank {
        /// Divide by `m` (keeps critic targets O(1) for any pool size).
        normalize: bool,
    },
    /// The Figure-2a ablation: `r_t = 1 - NRMSE` of the ensemble computed
    /// with the current weights over the trailing window `X^ω`. The paper
    /// shows DDPG fails to converge with this reward because the error
    /// magnitude tracks the time-varying structure of the series.
    OneMinusNrmse,
    /// The paper's future-work extension (§III-B: "adding a
    /// diversity-related measure in the formulation of the reward"):
    /// the normalized rank reward plus `lambda` times the normalized
    /// entropy of the weight vector, rewarding combinations that keep
    /// several diverse members in play instead of collapsing onto one.
    RankWithDiversity {
        /// Weight of the entropy bonus (0 recovers the plain rank reward).
        lambda: f64,
    },
}

/// Entropy of a weight vector normalized to `[0, 1]` (1 = uniform); the
/// diversity bonus of [`RewardKind::RankWithDiversity`].
pub fn weight_entropy(weights: &[f64]) -> f64 {
    if weights.len() < 2 {
        return 0.0;
    }
    let h: f64 = weights
        .iter()
        .filter(|&&w| w > 1e-12)
        .map(|&w| -w * w.ln())
        .sum();
    h / (weights.len() as f64).ln()
}

/// The ensemble-aggregation environment.
///
/// * **State** (`ω`-dimensional): the window of the ensemble's own recent
///   outputs `{x̂_{t-ω+1}, …, x̂_t}` (z-scored for the networks). The
///   window is seeded with actual values at episode start.
/// * **Action** (`m`-dimensional): the convex weight vector applied to the
///   base models' next-step predictions (Eq. 1).
/// * **Transition**: deterministic — append the new ensemble output, drop
///   the oldest.
/// * **Reward**: [`RewardKind`].
///
/// The environment replays a fixed validation segment: `predictions[t][i]`
/// is base model `i`'s one-step forecast of `actuals[t]`. Episodes start at
/// `t = ω` and run for at most `max_steps` steps or until the segment ends.
pub struct EnsembleEnv {
    predictions: Vec<Vec<f64>>,
    actuals: Vec<f64>,
    omega: usize,
    m: usize,
    reward: RewardKind,
    max_steps: usize,
    /// Unscaled window of ensemble outputs.
    window: SlideWindow,
    cursor: usize,
    steps_in_episode: usize,
}

impl EnsembleEnv {
    /// Builds the environment over a validation segment.
    ///
    /// # Panics
    /// Panics when the segment is shorter than `ω + 2` steps, when shapes
    /// are inconsistent, or when `omega == 0`.
    pub fn new(
        predictions: Vec<Vec<f64>>,
        actuals: Vec<f64>,
        omega: usize,
        reward: RewardKind,
        max_steps: usize,
    ) -> Self {
        assert!(omega > 0, "omega must be positive");
        assert_eq!(
            predictions.len(),
            actuals.len(),
            "predictions/actuals misaligned"
        );
        assert!(
            actuals.len() > omega + 1,
            "validation segment too short: {} steps for omega {omega}",
            actuals.len()
        );
        let m = predictions.first().map_or(0, Vec::len);
        assert!(m > 0, "need at least one base model");
        assert!(
            predictions.iter().all(|p| p.len() == m),
            "ragged prediction matrix"
        );
        EnsembleEnv {
            predictions,
            actuals,
            omega,
            m,
            reward,
            max_steps: max_steps.max(1),
            window: SlideWindow::new(omega),
            cursor: 0,
            steps_in_episode: 0,
        }
    }

    /// Number of base models `m`.
    pub fn n_models(&self) -> usize {
        self.m
    }

    /// Length of the replayed validation segment.
    pub fn segment_len(&self) -> usize {
        self.actuals.len()
    }

    fn scaled_window(&self) -> Vec<f64> {
        normalize_window(&self.window)
    }

    fn rank_reward(&self, ensemble_err: f64, t: usize, normalize: bool) -> f64 {
        // ρ = 1 + number of strictly better base models; reward = m+1-ρ.
        let better = self.predictions[t]
            .iter()
            .map(|&p| (p - self.actuals[t]).abs())
            .filter(|&e| e < ensemble_err)
            .count();
        let rho = 1 + better;
        let r = (self.m + 1 - rho) as f64;
        if normalize {
            r / self.m as f64
        } else {
            r
        }
    }

    fn nrmse_reward(&self, action: &[f64], t: usize) -> f64 {
        // Ensemble computed with the *current* weights over X^ω (the
        // trailing ω steps ending at t), per the paper's Figure-2a setup.
        let start = (t + 1).saturating_sub(self.omega);
        let mut ens = Vec::with_capacity(t + 1 - start);
        for step in start..=t {
            let e: f64 = self.predictions[step]
                .iter()
                .zip(action.iter())
                .map(|(p, w)| p * w)
                .sum();
            ens.push(e);
        }
        1.0 - nrmse(&self.actuals[start..=t], &ens)
    }
}

impl Environment for EnsembleEnv {
    fn state_dim(&self) -> usize {
        self.omega
    }

    fn action_dim(&self) -> usize {
        self.m
    }

    fn reset(&mut self) -> Vec<f64> {
        // Seed the window with actual values: the "perfect ensemble" past.
        self.window.assign(&self.actuals[..self.omega]);
        self.cursor = self.omega;
        self.steps_in_episode = 0;
        self.scaled_window()
    }

    fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool) {
        debug_assert_eq!(action.len(), self.m, "action dimension");
        let t = self.cursor;
        let ensemble: f64 = self.predictions[t]
            .iter()
            .zip(action.iter())
            .map(|(p, w)| p * w)
            .sum();
        let reward = match self.reward {
            RewardKind::Rank { normalize } => {
                let err = (ensemble - self.actuals[t]).abs();
                self.rank_reward(err, t, normalize)
            }
            RewardKind::OneMinusNrmse => self.nrmse_reward(action, t),
            RewardKind::RankWithDiversity { lambda } => {
                let err = (ensemble - self.actuals[t]).abs();
                self.rank_reward(err, t, true) + lambda * weight_entropy(action)
            }
        };
        // Deterministic transition: slide the ensemble-output window.
        self.window.slide(ensemble);
        self.cursor += 1;
        self.steps_in_episode += 1;
        let done = self.cursor >= self.actuals.len() || self.steps_in_episode >= self.max_steps;
        (self.scaled_window(), reward, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two models: one perfect, one bad, over a simple ramp.
    fn fixture() -> EnsembleEnv {
        let actuals: Vec<f64> = (0..20).map(|t| t as f64).collect();
        let predictions: Vec<Vec<f64>> = (0..20).map(|t| vec![t as f64, t as f64 + 10.0]).collect();
        EnsembleEnv::new(
            predictions,
            actuals,
            4,
            RewardKind::Rank { normalize: false },
            100,
        )
    }

    #[test]
    fn dimensions_are_reported() {
        let env = fixture();
        assert_eq!(env.state_dim(), 4);
        assert_eq!(env.action_dim(), 2);
        assert_eq!(env.n_models(), 2);
        assert_eq!(env.segment_len(), 20);
    }

    #[test]
    fn reset_seeds_window_with_actuals() {
        let mut env = fixture();
        let s = env.reset();
        assert_eq!(s.len(), 4);
        // Scaled window of actuals [0,1,2,3] — strictly increasing.
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn perfect_weighting_earns_top_rank_reward() {
        let mut env = fixture();
        env.reset();
        // All weight on the perfect model: ensemble error 0, rank 1 (the
        // perfect base model is not *strictly* better), reward = m+1-1 = 2.
        let (_, r, _) = env.step(&[1.0, 0.0]);
        assert_eq!(r, 2.0);
    }

    #[test]
    fn bad_weighting_earns_bottom_rank_reward() {
        let mut env = fixture();
        env.reset();
        // All weight on the bad model: both the perfect model is strictly
        // better; the bad model itself ties. rank = 2, reward = 1.
        let (_, r, _) = env.step(&[0.0, 1.0]);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn normalized_rank_reward_is_in_unit_interval() {
        let actuals: Vec<f64> = (0..30).map(|t| t as f64).collect();
        let predictions: Vec<Vec<f64>> = (0..30)
            .map(|t| vec![t as f64, t as f64 + 1.0, t as f64 - 2.0])
            .collect();
        let mut env = EnsembleEnv::new(
            predictions,
            actuals,
            5,
            RewardKind::Rank { normalize: true },
            100,
        );
        env.reset();
        for _ in 0..10 {
            let (_, r, done) = env.step(&[0.3, 0.3, 0.4]);
            assert!(r > 0.0 && r <= 1.0, "r = {r}");
            if done {
                break;
            }
        }
    }

    #[test]
    fn transition_appends_ensemble_output() {
        let mut env = fixture();
        env.reset();
        env.step(&[0.0, 1.0]); // ensemble = actual + 10 at t = 4 → 14
                               // Unscaled window is now [1, 2, 3, 14].
        assert_eq!(env.window.as_slice(), &[1.0, 2.0, 3.0, 14.0]);
    }

    #[test]
    fn episode_ends_at_segment_end() {
        let mut env = fixture();
        env.reset();
        let mut steps = 0;
        loop {
            let (_, _, done) = env.step(&[0.5, 0.5]);
            steps += 1;
            if done {
                break;
            }
        }
        assert_eq!(steps, 16); // 20 - omega
    }

    #[test]
    fn max_steps_caps_episode() {
        let actuals: Vec<f64> = (0..50).map(|t| t as f64).collect();
        let predictions: Vec<Vec<f64>> = (0..50).map(|t| vec![t as f64]).collect();
        let mut env = EnsembleEnv::new(
            predictions,
            actuals,
            4,
            RewardKind::Rank { normalize: true },
            5,
        );
        env.reset();
        let mut steps = 0;
        loop {
            let (_, _, done) = env.step(&[1.0]);
            steps += 1;
            if done {
                break;
            }
        }
        assert_eq!(steps, 5);
    }

    #[test]
    fn nrmse_reward_prefers_good_weights() {
        let actuals: Vec<f64> = (0..20).map(|t| (t as f64 * 0.7).sin() * 5.0).collect();
        let predictions: Vec<Vec<f64>> = actuals.iter().map(|&a| vec![a, a + 8.0]).collect();
        let mut env = EnsembleEnv::new(
            predictions.clone(),
            actuals.clone(),
            4,
            RewardKind::OneMinusNrmse,
            100,
        );
        env.reset();
        let (_, r_good, _) = env.step(&[1.0, 0.0]);
        let mut env2 = EnsembleEnv::new(predictions, actuals, 4, RewardKind::OneMinusNrmse, 100);
        env2.reset();
        let (_, r_bad, _) = env2.step(&[0.0, 1.0]);
        assert!(r_good > r_bad, "good {r_good} vs bad {r_bad}");
        assert!((r_good - 1.0).abs() < 1e-9, "perfect weights → reward 1");
    }

    #[test]
    fn diversity_reward_prefers_spread_weights_at_equal_accuracy() {
        // Two identical perfect models: rank component is identical for
        // any weighting, so the entropy bonus decides.
        let actuals: Vec<f64> = (0..20).map(|t| t as f64).collect();
        let predictions: Vec<Vec<f64>> = actuals.iter().map(|&a| vec![a, a]).collect();
        let mk = || {
            let mut env = EnsembleEnv::new(
                predictions.clone(),
                actuals.clone(),
                4,
                RewardKind::RankWithDiversity { lambda: 0.5 },
                100,
            );
            env.reset();
            env
        };
        let (_, r_uniform, _) = mk().step(&[0.5, 0.5]);
        let (_, r_onehot, _) = mk().step(&[1.0, 0.0]);
        assert!(r_uniform > r_onehot, "{r_uniform} vs {r_onehot}");
        // With lambda = 0 both collapse to the plain normalized rank.
        let mut env0 = EnsembleEnv::new(
            predictions.clone(),
            actuals.clone(),
            4,
            RewardKind::RankWithDiversity { lambda: 0.0 },
            100,
        );
        env0.reset();
        let (_, r0, _) = env0.step(&[1.0, 0.0]);
        assert_eq!(r0, r_onehot);
    }

    #[test]
    fn weight_entropy_extremes() {
        assert!((weight_entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert_eq!(weight_entropy(&[1.0, 0.0]), 0.0);
        assert_eq!(weight_entropy(&[1.0]), 0.0);
        let quarter = weight_entropy(&[0.25; 4]);
        assert!((quarter - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_segment_panics() {
        let _ = EnsembleEnv::new(
            vec![vec![1.0]; 5],
            vec![1.0; 5],
            5,
            RewardKind::OneMinusNrmse,
            10,
        );
    }
}
