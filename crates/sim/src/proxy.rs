//! The fault-injecting forecaster proxy.
//!
//! [`FaultyForecaster`] wraps any [`Forecaster`] and misbehaves exactly
//! as its [`FaultKind`] dictates — panicking, emitting non-finite
//! values, wedging on a stale output, declaring budget-busting costs —
//! while delegating every clean call to the wrapped model. All fault
//! scheduling is keyed off per-proxy call counters (and, for
//! probabilistic faults, a plan-seeded [`eadrl_rng::DetRng`] substream
//! indexed by call number), so a scenario replays bit-identically at
//! any thread count.
//!
//! Injected panics carry the [`INJECTED_PANIC_PREFIX`] marker;
//! [`quiet_injected_panics`] installs a filtering panic hook (once per
//! process) that swallows exactly those payloads so chaos runs don't
//! spray expected backtraces over the test output, while every real
//! panic still reaches the previous hook.

use crate::fault::FaultKind;
use eadrl_models::{Forecaster, ModelError};
use eadrl_rng::DetRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

/// Marker prefix carried by every panic this crate injects; the quiet
/// hook filters on it and the tests assert on it.
pub const INJECTED_PANIC_PREFIX: &str = "eadrl-sim fault:";

/// Installs (once per process) a panic hook that suppresses the default
/// stderr report for panics injected by this crate and delegates every
/// other panic to the previously installed hook. Safe to call from any
/// number of tests or scenario runs.
pub fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            // The warm-refresh scenario corrupts the refresh buffer with
            // ragged rows, so the environment constructor's assert is an
            // injected-and-expected panic there too (always caught by
            // the refresh path's `catch_unwind`).
            if message.is_some_and(|m| {
                m.contains(INJECTED_PANIC_PREFIX) || m.contains("ragged prediction matrix")
            }) {
                return;
            }
            previous(info);
        }));
    });
}

fn injected_panic(context: &str, call: u64) -> ! {
    panic!("{INJECTED_PANIC_PREFIX} injected {context} (call {call})");
}

/// A pool member wrapped in a deterministic fault injector.
///
/// Reports the wrapped model's name, so drop/quarantine telemetry reads
/// exactly as it would in production.
pub struct FaultyForecaster {
    inner: Box<dyn Forecaster>,
    kind: FaultKind,
    /// Substream driving probabilistic faults; forked per call index.
    rng_base: DetRng,
    /// Prediction calls served so far.
    calls: AtomicU64,
    /// Cost inquiries served so far (budget faults key off these: the
    /// guard asks for the cost *before* predicting, and a budget-faulted
    /// call never reaches `predict_next`).
    inquiries: AtomicU64,
    /// Bits of the last clean output (stale faults replay this).
    last_good: AtomicU64,
}

impl FaultyForecaster {
    /// Wraps `inner` with the given fault, drawing probabilistic faults
    /// from `rng_base` (take it from [`crate::fault::FaultPlan::substream`]).
    pub fn new(inner: Box<dyn Forecaster>, kind: FaultKind, rng_base: DetRng) -> Self {
        FaultyForecaster {
            inner,
            kind,
            rng_base,
            calls: AtomicU64::new(0),
            inquiries: AtomicU64::new(0),
            last_good: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// Prediction calls served so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The configured fault.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }
}

impl Forecaster for FaultyForecaster {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
        if self.kind == FaultKind::FailFit {
            injected_panic("fit panic", 0);
        }
        self.inner.fit(series)
    }

    fn predict_next(&self, history: &[f64]) -> f64 {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.kind {
            FaultKind::PanicAtCall { call: k } if call == k => {
                injected_panic("predict panic", call)
            }
            FaultKind::PanicEveryNth { n } if (call + 1).is_multiple_of(n) => {
                injected_panic("periodic predict panic", call)
            }
            FaultKind::NonFiniteEveryNth { n, value } if (call + 1).is_multiple_of(n) => {
                return value.value();
            }
            FaultKind::NonFiniteBurst { from, len, value } if call >= from && call < from + len => {
                return value.value();
            }
            FaultKind::StaleFromCall { call: k } if call >= k => {
                return f64::from_bits(self.last_good.load(Ordering::Relaxed));
            }
            // Keyed by call index, not by draw order: bit-identical
            // whatever interleaving the surrounding harness uses.
            FaultKind::Flaky { p } if self.rng_base.substream(call).random_bool(p) => {
                return f64::NAN;
            }
            _ => {}
        }
        let value = self.inner.predict_next(history);
        if value.is_finite() {
            self.last_good.store(value.to_bits(), Ordering::Relaxed);
        }
        value
    }

    fn cost_hint_us(&self) -> Option<u64> {
        if let FaultKind::SlowEveryNth { n, cost_us } = self.kind {
            let inquiry = self.inquiries.fetch_add(1, Ordering::Relaxed);
            if (inquiry + 1).is_multiple_of(n) {
                return Some(cost_us);
            }
        }
        self.inner.cost_hint_us()
    }

    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(FaultyForecaster {
            inner: self.inner.box_clone(),
            kind: self.kind,
            rng_base: self.rng_base.clone(),
            calls: AtomicU64::new(self.calls.load(Ordering::Relaxed)),
            inquiries: AtomicU64::new(self.inquiries.load(Ordering::Relaxed)),
            last_good: AtomicU64::new(self.last_good.load(Ordering::Relaxed)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, NonFinite};
    use eadrl_models::Naive;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn wrap(kind: FaultKind) -> FaultyForecaster {
        let plan = FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        };
        FaultyForecaster::new(Box::new(Naive), kind, plan.substream(0))
    }

    #[test]
    fn clean_calls_delegate_to_the_inner_model() {
        let f = wrap(FaultKind::PanicAtCall { call: 99 });
        assert_eq!(f.predict_next(&[1.0, 2.0]), 2.0); // Naive = last value
        assert_eq!(f.name(), "Naive");
        assert_eq!(f.calls(), 1);
    }

    #[test]
    fn panic_fires_exactly_on_the_scheduled_call() {
        quiet_injected_panics();
        let f = wrap(FaultKind::PanicAtCall { call: 1 });
        assert_eq!(f.predict_next(&[3.0]), 3.0);
        let caught = catch_unwind(AssertUnwindSafe(|| f.predict_next(&[3.0])));
        let payload = caught.unwrap_err();
        let message = payload.downcast_ref::<String>().unwrap();
        assert!(message.starts_with(INJECTED_PANIC_PREFIX), "{message}");
        assert_eq!(f.predict_next(&[3.0]), 3.0, "panic is transient");
    }

    #[test]
    fn periodic_faults_follow_the_period() {
        let f = wrap(FaultKind::NonFiniteEveryNth {
            n: 3,
            value: NonFinite::Inf,
        });
        let outs: Vec<f64> = (0..6).map(|_| f.predict_next(&[5.0])).collect();
        assert!(outs[0].is_finite() && outs[1].is_finite());
        assert_eq!(outs[2], f64::INFINITY);
        assert!(outs[3].is_finite() && outs[4].is_finite());
        assert_eq!(outs[5], f64::INFINITY);
    }

    #[test]
    fn burst_fault_is_consecutive_then_recovers() {
        let f = wrap(FaultKind::NonFiniteBurst {
            from: 2,
            len: 3,
            value: NonFinite::Nan,
        });
        let outs: Vec<f64> = (0..7).map(|_| f.predict_next(&[5.0])).collect();
        assert!(outs[0].is_finite() && outs[1].is_finite());
        assert!(outs[2].is_nan() && outs[3].is_nan() && outs[4].is_nan());
        assert!(outs[5].is_finite() && outs[6].is_finite(), "burst ends");
    }

    #[test]
    fn stale_fault_freezes_the_last_clean_output() {
        let f = wrap(FaultKind::StaleFromCall { call: 2 });
        assert_eq!(f.predict_next(&[1.0]), 1.0);
        assert_eq!(f.predict_next(&[2.0]), 2.0);
        assert_eq!(f.predict_next(&[9.0]), 2.0, "wedged on last clean value");
        assert_eq!(f.predict_next(&[7.0]), 2.0);
    }

    #[test]
    fn slow_fault_declares_cost_on_schedule_without_touching_predictions() {
        let f = wrap(FaultKind::SlowEveryNth { n: 2, cost_us: 900 });
        assert_eq!(f.cost_hint_us(), None);
        assert_eq!(f.cost_hint_us(), Some(900));
        assert_eq!(f.cost_hint_us(), None);
        assert_eq!(f.predict_next(&[4.0]), 4.0);
    }

    #[test]
    fn flaky_fault_is_reproducible_per_call_index() {
        let a = wrap(FaultKind::Flaky { p: 0.5 });
        let b = wrap(FaultKind::Flaky { p: 0.5 });
        let outs_a: Vec<u64> = (0..32).map(|_| a.predict_next(&[1.0]).to_bits()).collect();
        let outs_b: Vec<u64> = (0..32).map(|_| b.predict_next(&[1.0]).to_bits()).collect();
        assert_eq!(outs_a, outs_b, "same plan seed, same fault schedule");
        assert!(
            outs_a.iter().any(|&bits| f64::from_bits(bits).is_nan()),
            "p=0.5 over 32 calls should fault at least once"
        );
        assert!(
            outs_a.iter().any(|&bits| f64::from_bits(bits).is_finite()),
            "p=0.5 over 32 calls should also succeed"
        );
    }

    #[test]
    fn fail_fit_panics_with_the_marker() {
        quiet_injected_panics();
        let mut f = wrap(FaultKind::FailFit);
        let caught = catch_unwind(AssertUnwindSafe(|| f.fit(&[1.0, 2.0, 3.0])));
        assert!(caught.is_err());
    }
}
