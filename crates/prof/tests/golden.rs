//! Golden-fixture attribution test: the committed trace at
//! `tests/fixtures/golden.jsonl` has hand-computed totals, self times,
//! and percentiles, and the profiler must reproduce the whole table
//! exactly. If tree semantics change, this fails loudly and the new
//! numbers must be re-derived by hand, not copied from the output.

use eadrl_prof::{SpanTree, Trace, TreeOptions, Utilization};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// (path, count, total_us, self_us, p50, p95, p99) — derived on paper:
///
/// * `eadrl.fit` total 700; children 200 (pretrain) + 300 (ddpg) +
///   120 (par.map) = 620 → self 80.
/// * `eadrl.ddpg` two calls of 150; children 60 + 20 + 40 = 120 →
///   self 180.
/// * `ddpg.targets` durations {15, 25}: nearest-rank p50 = 15
///   (rank ⌈0.5·2⌉ = 1), p95 = p99 = 25.
/// * `par.map` total 120; worker chunks 50 + 60 = 110 → self 10.
type Row = (&'static str, u64, u64, u64, u64, u64, u64);

const GOLDEN_RAW: &[Row] = &[
    ("eadrl.fit", 1, 700, 80, 700, 700, 700),
    ("eadrl.fit/eadrl.ddpg", 2, 300, 180, 150, 150, 150),
    ("eadrl.fit/eadrl.ddpg/critic.forward", 2, 60, 60, 30, 30, 30),
    ("eadrl.fit/eadrl.ddpg/ddpg.stage", 2, 20, 20, 10, 10, 10),
    ("eadrl.fit/eadrl.ddpg/ddpg.targets", 2, 40, 40, 15, 25, 25),
    ("eadrl.fit/eadrl.pretrain", 1, 200, 200, 200, 200, 200),
    ("eadrl.fit/par.map", 1, 120, 10, 120, 120, 120),
    ("eadrl.fit/par.map/par.worker", 2, 110, 110, 50, 60, 60),
];

fn table_of(tree: &SpanTree) -> Vec<(String, u64, u64, u64, u64, u64, u64)> {
    tree.nodes
        .iter()
        .map(|n| {
            (
                n.path.clone(),
                n.count,
                n.total_us,
                n.self_us,
                n.p50_us,
                n.p95_us,
                n.p99_us,
            )
        })
        .collect()
}

#[test]
fn golden_fixture_reproduces_the_hand_computed_table() {
    let trace = Trace::load(&fixture("golden.jsonl")).expect("fixture loads");
    assert!(!trace.is_truncated(), "golden fixture must be clean");
    assert_eq!(trace.events.len(), 14);

    let tree = SpanTree::build(&trace, &TreeOptions::default());
    let expected: Vec<_> = GOLDEN_RAW
        .iter()
        .map(|&(p, c, t, s, p50, p95, p99)| (p.to_string(), c, t, s, p50, p95, p99))
        .collect();
    assert_eq!(table_of(&tree), expected);
    assert!(tree.nodes.iter().all(|n| !n.open && !n.overlap));
}

#[test]
fn shape_mode_drops_only_worker_chunks() {
    let trace = Trace::load(&fixture("golden.jsonl")).expect("fixture loads");
    let shaped = SpanTree::build(&trace, &TreeOptions::shape_stable());
    // Same table minus the par.worker row, and par.map keeps all its
    // time as self time (worker busy overlaps it, it is not a child
    // contribution).
    let expected: Vec<_> = GOLDEN_RAW
        .iter()
        .filter(|row| row.0 != "eadrl.fit/par.map/par.worker")
        .map(|&(p, c, t, s, p50, p95, p99)| {
            let s = if p == "eadrl.fit/par.map" { t } else { s };
            (p.to_string(), c, t, s, p50, p95, p99)
        })
        .collect();
    assert_eq!(table_of(&shaped), expected);
}

#[test]
fn golden_fixture_worker_utilization() {
    let trace = Trace::load(&fixture("golden.jsonl")).expect("fixture loads");
    let util = Utilization::analyze(&trace);
    assert_eq!(util.workers.len(), 2);
    assert_eq!(
        (
            util.workers[0].chunks,
            util.workers[0].items,
            util.workers[0].busy_us,
            util.workers[0].queue_wait_us
        ),
        (1, 12, 50, 3)
    );
    assert_eq!(
        (
            util.workers[1].chunks,
            util.workers[1].items,
            util.workers[1].busy_us,
            util.workers[1].queue_wait_us
        ),
        (1, 11, 60, 5)
    );
    // Busy 50 vs 60, mean 55 → 60/55; items 12 vs 11, mean 11.5.
    assert!((util.imbalance_ratio() - 60.0 / 55.0).abs() < 1e-12);
    assert!((util.item_skew() - 12.0 / 11.5).abs() < 1e-12);
}
