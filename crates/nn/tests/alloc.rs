//! Counting-allocator proof of the zero-steady-state-allocation claim:
//! after warm-up, `forward_batch`/`backward_batch` must not touch the
//! heap — for the MLP matrices and for the recurrent workspaces
//! (LSTM/BiLSTM BPTT, Conv1d im2col) and strided inference caches.
//!
//! This binary holds exactly ONE test: the global allocator is
//! instrumented with a thread-local counter, and while counting is
//! per-thread (so parallel test threads cannot interfere with the
//! counter), keeping the binary single-test makes the measurement window
//! unambiguous. The recurrent sections live inside the same test for the
//! same reason.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use eadrl_linalg::Matrix;
use eadrl_nn::{
    Activation, BiLstm, BiLstmInferenceCache, BiRecurrentWorkspace, Conv1d, ConvWorkspace, Lstm,
    LstmInferenceCache, Mlp, Network, RecurrentWorkspace,
};
use eadrl_rng::DetRng;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Passes every request through to the system allocator, counting
/// allocations (not deallocations) on the current thread. `try_with`
/// guards against counting during thread teardown, when the TLS slot is
/// gone; `const`-initialized `Cell` TLS needs no allocating destructor.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

#[test]
fn batched_passes_are_allocation_free_after_warm_up() {
    let mut rng = DetRng::seed_from_u64(9);
    let mut mlp = Mlp::new(
        &mut rng,
        &[12, 32, 32, 1],
        Activation::Relu,
        Activation::Identity,
    );

    let batch = 64;
    let input = Matrix::from_rows(
        &(0..batch)
            .map(|_| (0..12).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("rectangular input");
    let gout = Matrix::from_rows(
        &(0..batch)
            .map(|_| vec![rng.random_range(-1.0..1.0)])
            .collect::<Vec<Vec<f64>>>(),
    )
    .expect("rectangular grads");

    // Warm-up: first passes size every persistent workspace.
    for _ in 0..3 {
        mlp.zero_grad();
        mlp.forward_batch(&input);
        mlp.backward_batch(&gout);
    }

    let before = allocations();
    for _ in 0..10 {
        mlp.zero_grad();
        mlp.forward_batch(&input);
        mlp.backward_batch(&gout);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state batched forward/backward must not allocate"
    );

    // ---- Recurrent workspaces: LSTM BPTT (with and without input
    // grads), BiLSTM, Conv1d im2col — restaging at the same shape must
    // reuse every buffer.
    let (b, t, in_dim, hidden) = (16, 6, 2, 8);
    let data: Vec<f64> = (0..b * t * in_dim)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let mut lstm = Lstm::new(&mut rng, in_dim, hidden);
    let mut ws = RecurrentWorkspace::new();
    let grad_h: Vec<f64> = (0..b * hidden)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let lstm_pass = |lstm: &mut Lstm, ws: &mut RecurrentWorkspace, want_x: bool| {
        ws.stage(b, t, in_dim, hidden);
        for s in 0..b {
            for step in 0..t {
                let off = (s * t + step) * in_dim;
                ws.set_input(s, step, &data[off..off + in_dim]);
            }
        }
        lstm.zero_grad();
        lstm.forward_batch(ws);
        lstm.backward_batch_last(&grad_h, ws, want_x);
    };
    for _ in 0..3 {
        lstm_pass(&mut lstm, &mut ws, false);
        lstm_pass(&mut lstm, &mut ws, true);
    }
    let before = allocations();
    for _ in 0..10 {
        lstm_pass(&mut lstm, &mut ws, false);
        lstm_pass(&mut lstm, &mut ws, true);
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state LSTM batched forward/backward must not allocate"
    );

    let mut bilstm = BiLstm::new(&mut rng, in_dim, hidden);
    let mut bws = BiRecurrentWorkspace::new();
    let grad_out: Vec<f64> = (0..b * 2 * hidden)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let bi_pass = |bilstm: &mut BiLstm, bws: &mut BiRecurrentWorkspace| {
        bws.stage(b, t, in_dim, hidden);
        for s in 0..b {
            for step in 0..t {
                let off = (s * t + step) * in_dim;
                bws.set_input(s, step, &data[off..off + in_dim]);
            }
        }
        bilstm.zero_grad();
        bilstm.forward_batch(bws);
        bilstm.backward_batch_last(&grad_out, bws, false);
    };
    for _ in 0..3 {
        bi_pass(&mut bilstm, &mut bws);
    }
    let before = allocations();
    for _ in 0..10 {
        bi_pass(&mut bilstm, &mut bws);
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state BiLSTM batched forward/backward must not allocate"
    );

    let in_len = 12;
    let mut conv = Conv1d::new(&mut rng, 1, 4, 3, Activation::Relu);
    let mut cws = ConvWorkspace::new();
    let cdata: Vec<f64> = (0..b * in_len)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let conv_pass = |conv: &mut Conv1d, cws: &mut ConvWorkspace| {
        conv.stage_batch(cws, b, in_len);
        for s in 0..b {
            cws.input_mut(s)
                .copy_from_slice(&cdata[s * in_len..(s + 1) * in_len]);
        }
        conv.zero_grad();
        conv.forward_batch(cws);
        for s in 0..b {
            for step in 0..in_len - 2 {
                for g in cws.grad_output_row_mut(s, step).iter_mut() {
                    *g = 0.5;
                }
            }
        }
        conv.backward_batch_weights_only(cws);
    };
    for _ in 0..3 {
        conv_pass(&mut conv, &mut cws);
    }
    let before = allocations();
    for _ in 0..10 {
        conv_pass(&mut conv, &mut cws);
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state Conv1d batched forward/backward must not allocate"
    );

    // ---- Strided inference caches: warm predictions are alloc-free.
    let window: Vec<f64> = (0..in_len).map(|_| rng.random_range(-1.0..1.0)).collect();
    let mut lc = LstmInferenceCache::default();
    let mut bc = BiLstmInferenceCache::default();
    let slstm = Lstm::new(&mut rng, 1, hidden);
    let sbi = BiLstm::new(&mut rng, 1, hidden);
    for _ in 0..3 {
        slstm.forward_inference_cached(&window, 1, &mut lc);
        sbi.forward_inference_cached(&window, 1, &mut bc);
    }
    let before = allocations();
    for _ in 0..10 {
        slstm.forward_inference_cached(&window, 1, &mut lc);
        sbi.forward_inference_cached(&window, 1, &mut bc);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm cached inference must not allocate"
    );
}
