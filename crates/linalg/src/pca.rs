//! Principal-component analysis on top of the Jacobi eigendecomposition.

use crate::eigen::SymmetricEigen;
use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Fitted PCA model: centering vector plus the leading principal axes.
///
/// Used by the principal-component-regression (PCR) base model in
/// `eadrl-models`, and reusable for any dimensionality reduction over
/// embedded time-series windows.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Columns are the principal axes (descending explained variance).
    components: Matrix,
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits PCA on the rows of `x`, keeping `n_components` axes.
    ///
    /// `n_components` is clamped to the number of features. Requires at
    /// least two samples.
    pub fn fit(x: &Matrix, n_components: usize) -> Result<Self> {
        let (n, d) = x.shape();
        if n < 2 {
            return Err(LinalgError::ShapeMismatch {
                context: format!("PCA needs >= 2 samples, got {n}"),
            });
        }
        let k = n_components.clamp(1, d);
        // Column means.
        let mut mean = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(x.row(i).iter()) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f64;
        }
        // Covariance matrix of centered data.
        let mut centered = x.clone();
        for i in 0..n {
            for (v, m) in centered.row_mut(i).iter_mut().zip(mean.iter()) {
                *v -= m;
            }
        }
        let mut cov = centered.gram();
        cov.scale_in_place(1.0 / (n as f64 - 1.0));
        let eig = SymmetricEigen::new(&cov)?;
        let components = eig.eigenvectors.submatrix(0..d, 0..k);
        let explained_variance = eig.eigenvalues[..k].to_vec();
        Ok(Pca {
            mean,
            components,
            explained_variance,
        })
    }

    /// Projects rows of `x` onto the principal axes.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "PCA transform: {} features vs fitted {}",
                    x.cols(),
                    self.mean.len()
                ),
            });
        }
        let mut centered = x.clone();
        for i in 0..x.rows() {
            for (v, m) in centered.row_mut(i).iter_mut().zip(self.mean.iter()) {
                *v -= m;
            }
        }
        centered.matmul(&self.components)
    }

    /// Projects a single sample.
    pub fn transform_one(&self, sample: &[f64]) -> Result<Vec<f64>> {
        if sample.len() != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "PCA transform_one: {} features vs fitted {}",
                    sample.len(),
                    self.mean.len()
                ),
            });
        }
        let centered: Vec<f64> = sample
            .iter()
            .zip(self.mean.iter())
            .map(|(v, m)| v - m)
            .collect();
        self.components.tr_matvec(&centered)
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// Variance explained by each retained component (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_axis_follows_dominant_direction() {
        // Points spread along the (1,1) diagonal with small orthogonal noise.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                let eps = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + eps, t - eps]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&x, 1).unwrap();
        let axis = pca.components.col(0);
        // Axis should be ±(1,1)/√2.
        assert!((axis[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((axis[0] - axis[1]).abs() < 0.1);
    }

    #[test]
    fn explained_variance_is_descending() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64;
                vec![3.0 * t, t * 0.5, (i % 3) as f64 * 0.1]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&x, 3).unwrap();
        let ev = pca.explained_variance();
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2]);
        assert!(ev[0] > 0.0);
    }

    #[test]
    fn transform_one_matches_batch_transform() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i) as f64 * 0.1, 1.0 / (i + 1) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&x, 2).unwrap();
        let batch = pca.transform(&x).unwrap();
        let single = pca.transform_one(x.row(7)).unwrap();
        for j in 0..2 {
            assert!((batch[(7, j)] - single[j]).abs() < 1e-10);
        }
    }

    #[test]
    fn n_components_is_clamped() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 7.0]]).unwrap();
        let pca = Pca::fit(&x, 10).unwrap();
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    fn too_few_samples_is_error() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(Pca::fit(&x, 1).is_err());
    }
}
