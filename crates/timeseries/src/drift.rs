//! Concept-drift detectors.
//!
//! The DEMSC baseline ("drift-aware combination of Top.sel and Clus") only
//! re-runs its expensive clustering/selection machinery when a drift is
//! detected in the stream of model errors. These detectors provide that
//! informed-update mechanism.

use crate::window::SlideWindow;

/// Page–Hinkley test for detecting increases in the mean of a stream.
///
/// Classic formulation: maintain the cumulative deviation of observations
/// from their running mean (minus a tolerance `delta`), and signal drift
/// when it exceeds its running minimum by more than `lambda`.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    count: usize,
    running_mean: f64,
    cumulative: f64,
    min_cumulative: f64,
}

impl PageHinkley {
    /// Creates a detector.
    ///
    /// * `delta` — magnitude tolerance (small positive; absorbs noise),
    /// * `lambda` — detection threshold (larger = fewer, later detections).
    pub fn new(delta: f64, lambda: f64) -> Self {
        PageHinkley {
            delta,
            lambda,
            count: 0,
            running_mean: 0.0,
            cumulative: 0.0,
            min_cumulative: 0.0,
        }
    }

    /// Feeds one observation; returns `true` when drift is signalled.
    /// On detection the detector resets itself.
    ///
    /// Non-finite observations are ignored without touching any state: a
    /// single NaN error sample would otherwise poison the running mean
    /// and silence the detector forever — exactly the failure mode the
    /// serving path's degradation harness injects.
    pub fn update(&mut self, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        self.count += 1;
        self.running_mean += (value - self.running_mean) / self.count as f64;
        self.cumulative += value - self.running_mean - self.delta;
        self.min_cumulative = self.min_cumulative.min(self.cumulative);
        if self.cumulative - self.min_cumulative > self.lambda {
            self.reset();
            true
        } else {
            false
        }
    }

    /// Clears all internal state.
    pub fn reset(&mut self) {
        self.count = 0;
        self.running_mean = 0.0;
        self.cumulative = 0.0;
        self.min_cumulative = 0.0;
    }

    /// Number of observations since the last reset.
    pub fn observations(&self) -> usize {
        self.count
    }
}

/// A simple adaptive-window (ADWIN-flavoured) mean-shift detector.
///
/// Keeps a bounded window of recent values; on each update it tests every
/// split of the window into "old | recent" halves and signals drift when
/// the two sub-window means differ by more than a Hoeffding-style bound.
/// On detection the older half is dropped, so the window adapts.
#[derive(Debug, Clone)]
pub struct AdaptiveWindowDetector {
    window: SlideWindow,
    confidence: f64,
}

impl AdaptiveWindowDetector {
    /// Creates a detector with window capacity `max_len` and confidence
    /// parameter `confidence` in `(0, 1)` (smaller = more sensitive bound
    /// denominator; typical value 0.002 as in ADWIN).
    pub fn new(max_len: usize, confidence: f64) -> Self {
        AdaptiveWindowDetector {
            window: SlideWindow::new(max_len.max(4)),
            confidence: confidence.clamp(1e-6, 0.999),
        }
    }

    /// Feeds one observation; returns `true` when a mean shift is detected.
    ///
    /// Non-finite observations are ignored without entering the window
    /// (same rationale as [`PageHinkley::update`]: one NaN would make
    /// every sub-window mean NaN and disable detection permanently).
    pub fn update(&mut self, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        self.window.slide(value);
        let n = self.window.len();
        if n < 8 {
            return false;
        }
        // Range of the window normalizes the Hoeffding bound.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in self.window.iter() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let range = (hi - lo).max(1e-12);
        let total: f64 = self.window.iter().sum();
        let mut left_sum = 0.0;
        for split in 4..(n - 3) {
            left_sum += self.window[split - 1];
            if split == 4 {
                // left_sum currently only holds element 3; rebuild properly.
                left_sum = self.window[..split].iter().sum();
            }
            let n0 = split as f64;
            let n1 = (n - split) as f64;
            let mean0 = left_sum / n0;
            let mean1 = (total - left_sum) / n1;
            let m = 1.0 / (1.0 / n0 + 1.0 / n1);
            let eps = range * ((1.0 / (2.0 * m)) * (4.0 * n as f64 / self.confidence).ln()).sqrt();
            if (mean0 - mean1).abs() > eps {
                // Drop the stale half and signal.
                self.window.advance(split);
                return true;
            }
        }
        false
    }

    /// Current adaptive window length.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Mean of the current window (0 when empty).
    pub fn window_mean(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_hinkley_silent_on_stationary_stream() {
        let mut ph = PageHinkley::new(0.05, 5.0);
        for i in 0..500 {
            let v = if i % 2 == 0 { 0.9 } else { 1.1 }; // mean 1, tiny wiggle
            assert!(!ph.update(v), "false positive at {i}");
        }
        assert_eq!(ph.observations(), 500);
    }

    #[test]
    fn page_hinkley_detects_mean_increase() {
        let mut ph = PageHinkley::new(0.05, 5.0);
        for _ in 0..100 {
            assert!(!ph.update(1.0));
        }
        let mut detected = false;
        for _ in 0..100 {
            if ph.update(3.0) {
                detected = true;
                break;
            }
        }
        assert!(detected, "drift not detected after mean shift");
        // Detector reset after detection.
        assert_eq!(ph.observations(), 0);
    }

    #[test]
    fn page_hinkley_reset_clears_state() {
        let mut ph = PageHinkley::new(0.0, 1.0);
        ph.update(10.0);
        ph.reset();
        assert_eq!(ph.observations(), 0);
    }

    #[test]
    fn adaptive_window_detects_level_shift() {
        let mut d = AdaptiveWindowDetector::new(200, 0.002);
        for _ in 0..100 {
            assert!(!d.update(0.0));
        }
        let mut detected = false;
        for _ in 0..100 {
            if d.update(10.0) {
                detected = true;
                break;
            }
        }
        assert!(detected);
        // After drift the stale half is dropped.
        assert!(d.window_len() < 200);
    }

    #[test]
    fn adaptive_window_silent_on_constant_stream() {
        let mut d = AdaptiveWindowDetector::new(100, 0.002);
        for i in 0..300 {
            assert!(!d.update(5.0), "false positive at {i}");
        }
        assert!((d.window_mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_observations_do_not_poison_detectors() {
        let mut ph = PageHinkley::new(0.05, 5.0);
        for _ in 0..50 {
            ph.update(1.0);
        }
        assert!(!ph.update(f64::NAN));
        assert!(!ph.update(f64::INFINITY));
        assert_eq!(ph.observations(), 50, "non-finite values must not count");
        // The detector still works after the bad samples.
        let mut detected = false;
        for _ in 0..100 {
            if ph.update(3.0) {
                detected = true;
                break;
            }
        }
        assert!(detected, "NaN input disabled Page–Hinkley");

        let mut d = AdaptiveWindowDetector::new(100, 0.002);
        for _ in 0..50 {
            d.update(0.0);
        }
        assert!(!d.update(f64::NAN));
        assert_eq!(d.window_len(), 50, "NaN must not enter the window");
        let mut detected = false;
        for _ in 0..100 {
            if d.update(10.0) {
                detected = true;
                break;
            }
        }
        assert!(detected, "NaN input disabled the adaptive window");
    }

    #[test]
    fn adaptive_window_caps_length() {
        let mut d = AdaptiveWindowDetector::new(50, 0.002);
        for i in 0..500 {
            d.update((i % 3) as f64);
        }
        assert!(d.window_len() <= 50);
    }
}
