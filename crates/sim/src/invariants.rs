//! Serving-path invariants checked over a chaos run.
//!
//! A scenario run produces a forecast stream plus the ordered telemetry
//! captured by a [`eadrl_obs::RingSink`]; [`check_run`] audits both
//! against the degradation contract:
//!
//! 1. **Finite output** — every served forecast is finite, whatever was
//!    injected upstream.
//! 2. **Valid simplex** — every `eadrl.weights` payload is a convex
//!    weight vector (entries in `[0, 1]`, summing to 1).
//! 3. **Quarantine exclusion** — in every degraded serving step, the
//!    members listed as quarantined carry exactly zero effective weight,
//!    and the effective weights either form a simplex over the
//!    survivors or are all-zero (total-outage fallback).
//! 4. **Ordered quarantine telemetry** — per member, `enter`/`exit`
//!    transitions strictly alternate starting with `enter` (an exit
//!    without a prior enter, or a double enter, means health bookkeeping
//!    desynced from the event stream).

use eadrl_obs::{Event, Value};

/// Tolerance for simplex sums (weights pass through softmax and one
/// renormalizing division; anything beyond 1e-6 is a real bug, not
/// rounding).
const SIMPLEX_TOL: f64 = 1e-6;

/// The audit result for one run.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Human-readable violations; empty means the run upheld the
    /// degradation contract.
    pub violations: Vec<String>,
    /// Telemetry events inspected.
    pub checked_events: usize,
    /// Forecast steps inspected.
    pub checked_steps: usize,
}

impl InvariantReport {
    /// True when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn field_f64s<'e>(event: &'e Event, key: &str) -> Option<&'e [f64]> {
    event
        .fields
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            (k2, Value::F64s(xs)) if k2 == key => Some(xs.as_slice()),
            _ => None,
        })
}

fn field_str<'e>(event: &'e Event, key: &str) -> Option<&'e str> {
    event
        .fields
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            (k2, Value::Str(s)) if k2 == key => Some(s.as_str()),
            _ => None,
        })
}

fn field_u64(event: &Event, key: &str) -> Option<u64> {
    event
        .fields
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            (k2, Value::U64(x)) if k2 == key => Some(*x),
            _ => None,
        })
}

fn check_simplex(weights: &[f64], what: &str, violations: &mut Vec<String>) {
    let sum: f64 = weights.iter().sum();
    if (sum - 1.0).abs() > SIMPLEX_TOL {
        violations.push(format!("{what}: weights sum to {sum}, not 1"));
    }
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || !(-SIMPLEX_TOL..=1.0 + SIMPLEX_TOL).contains(&w) {
            violations.push(format!("{what}: weight[{i}] = {w} outside [0, 1]"));
        }
    }
}

/// Audits one run. `forecasts` is the served forecast stream, `events`
/// the full ordered telemetry of the run.
pub fn check_run(forecasts: &[f64], events: &[Event]) -> InvariantReport {
    let mut report = InvariantReport {
        checked_steps: forecasts.len(),
        checked_events: events.len(),
        ..InvariantReport::default()
    };
    let violations = &mut report.violations;

    for (step, &f) in forecasts.iter().enumerate() {
        if !f.is_finite() {
            violations.push(format!("forecast[{step}] = {f} is not finite"));
        }
    }

    // Per-member quarantine state machine replayed from the event stream.
    let mut quarantined: std::collections::BTreeMap<u64, bool> = std::collections::BTreeMap::new();
    for (pos, event) in events.iter().enumerate() {
        match event.name.as_str() {
            "eadrl.weights" => {
                if let Some(w) = field_f64s(event, "weights") {
                    check_simplex(w, &format!("eadrl.weights #{pos}"), violations);
                }
            }
            "eadrl.quarantine" => {
                let index = field_u64(event, "index").unwrap_or(u64::MAX);
                let action = field_str(event, "action").unwrap_or("");
                let state = quarantined.entry(index).or_insert(false);
                match action {
                    "enter" => {
                        if *state {
                            violations.push(format!(
                                "quarantine #{pos}: double enter for member {index}"
                            ));
                        }
                        *state = true;
                    }
                    "exit" => {
                        if !*state {
                            violations.push(format!(
                                "quarantine #{pos}: exit without enter for member {index}"
                            ));
                        }
                        *state = false;
                    }
                    other => {
                        violations.push(format!("quarantine #{pos}: unknown action `{other}`"));
                    }
                }
            }
            "eadrl.degraded" => {
                // Only serving-step events carry effective weights; the
                // fit-path and refresh-path variants are counted but have
                // no simplex payload to audit.
                let Some(weights) = field_f64s(event, "weights") else {
                    continue;
                };
                let all_zero = weights.iter().all(|&w| w == 0.0);
                if !all_zero {
                    check_simplex(weights, &format!("eadrl.degraded #{pos}"), violations);
                }
                if let Some(qlist) = field_f64s(event, "quarantined") {
                    for &qi in qlist {
                        let i = qi as usize;
                        match weights.get(i) {
                            Some(&w) if w != 0.0 => violations.push(format!(
                                "eadrl.degraded #{pos}: quarantined member {i} \
                                 holds weight {w}"
                            )),
                            None => violations.push(format!(
                                "eadrl.degraded #{pos}: quarantined index {i} \
                                 outside the weight vector"
                            )),
                            _ => {}
                        }
                    }
                }
                if let Some(forecast) =
                    event
                        .fields
                        .iter()
                        .find_map(|(k, v)| match (k.as_str(), v) {
                            ("forecast", Value::F64(x)) => Some(*x),
                            _ => None,
                        })
                {
                    if !forecast.is_finite() {
                        violations.push(format!(
                            "eadrl.degraded #{pos}: served forecast {forecast} is not finite"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadrl_obs::{EventKind, Level};

    fn event(name: &str, fields: Vec<(&str, Value)>) -> Event {
        let mut e = Event::new(name, EventKind::Event, Level::Warn);
        for (k, v) in fields {
            e = e.field(k, v);
        }
        e
    }

    #[test]
    fn clean_run_passes() {
        let events = vec![event(
            "eadrl.weights",
            vec![("weights", vec![0.25, 0.75].into())],
        )];
        let report = check_run(&[1.0, 2.0], &events);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.checked_steps, 2);
    }

    #[test]
    fn non_finite_forecast_is_flagged() {
        let report = check_run(&[1.0, f64::NAN], &[]);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("forecast[1]"));
    }

    #[test]
    fn broken_simplex_is_flagged() {
        let events = vec![event(
            "eadrl.weights",
            vec![("weights", vec![0.9, 0.9].into())],
        )];
        assert!(!check_run(&[], &events).passed());
    }

    #[test]
    fn quarantined_member_with_weight_is_flagged() {
        let events = vec![event(
            "eadrl.degraded",
            vec![
                ("weights", vec![0.5, 0.5].into()),
                ("quarantined", vec![1.0].into()),
            ],
        )];
        let report = check_run(&[], &events);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("holds weight"));
    }

    #[test]
    fn quarantine_transitions_must_alternate() {
        let enter = || {
            event(
                "eadrl.quarantine",
                vec![("index", Value::U64(3)), ("action", "enter".into())],
            )
        };
        let exit = || {
            event(
                "eadrl.quarantine",
                vec![("index", Value::U64(3)), ("action", "exit".into())],
            )
        };
        assert!(check_run(&[], &[enter(), exit(), enter()]).passed());
        assert!(!check_run(&[], &[exit()]).passed(), "exit without enter");
        assert!(
            !check_run(&[], &[enter(), enter()]).passed(),
            "double enter"
        );
    }

    #[test]
    fn all_zero_degraded_weights_are_the_outage_sentinel() {
        let events = vec![event(
            "eadrl.degraded",
            vec![
                ("weights", vec![0.0, 0.0].into()),
                ("quarantined", vec![0.0, 1.0].into()),
                ("forecast", Value::F64(3.5)),
            ],
        )];
        assert!(check_run(&[], &events).passed());
    }
}
