//! Stacking (Wolpert) with a random-forest meta-learner.

use crate::combiner::Combiner;
use eadrl_models::tree::RandomForestRegressor;
use eadrl_models::TabularModel;

/// **Stacking** — learns a non-linear map from the base models' prediction
/// vector to the target, using a random forest as the meta-learner (the
/// paper's configuration). The meta-learner is fitted once on the warm-up
/// (validation) predictions and applied statically online, as in classical
/// stacked generalization.
#[derive(Debug, Clone)]
pub struct Stacking {
    n_trees: usize,
    max_depth: usize,
    seed: u64,
    forest: Option<RandomForestRegressor>,
}

impl Stacking {
    /// Creates a stacking combiner with a forest of `n_trees` trees.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        Stacking {
            n_trees: n_trees.max(1),
            max_depth: max_depth.max(1),
            seed,
            forest: None,
        }
    }

    /// True once the meta-learner has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.forest.is_some()
    }
}

impl Combiner for Stacking {
    fn name(&self) -> &str {
        "Stacking"
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        if preds.len() < 4 {
            return; // Too little meta-training data; fall back to mean.
        }
        let mut forest = RandomForestRegressor::new(self.n_trees, self.max_depth, 2, self.seed);
        if forest.fit(preds, actuals).is_ok() {
            self.forest = Some(forest);
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        // Stacking has no linear weights; report uniform for introspection.
        vec![1.0 / m.max(1) as f64; m]
    }

    fn combine(&mut self, preds: &[f64]) -> f64 {
        match &self.forest {
            Some(forest) => forest.predict(preds),
            None => preds.iter().sum::<f64>() / preds.len().max(1) as f64,
        }
    }

    fn observe(&mut self, _preds: &[f64], _actual: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_to_trust_the_reliable_model() {
        // Model 0 = truth, model 1 = pure noise-ish offset.
        let preds: Vec<Vec<f64>> = (0..80)
            .map(|t| {
                let y = (t as f64 / 7.0).sin() * 5.0;
                vec![y, y + ((t * 13) % 7) as f64 - 3.0]
            })
            .collect();
        let actuals: Vec<f64> = (0..80).map(|t| (t as f64 / 7.0).sin() * 5.0).collect();
        let mut st = Stacking::new(25, 8, 1);
        st.warm_up(&preds, &actuals);
        assert!(st.is_fitted());
        // On fresh inputs where the models disagree, output should track
        // model 0 much more closely than the mean would.
        let out = st.combine(&[2.0, 6.0]);
        assert!((out - 2.0).abs() < 1.5, "out = {out}");
    }

    #[test]
    fn without_warm_up_falls_back_to_mean() {
        let mut st = Stacking::new(10, 4, 0);
        assert!(!st.is_fitted());
        assert_eq!(st.combine(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn tiny_warm_up_is_ignored() {
        let mut st = Stacking::new(10, 4, 0);
        st.warm_up(&[vec![1.0]], &[1.0]);
        assert!(!st.is_fitted());
    }

    #[test]
    fn fit_is_seed_deterministic() {
        let preds: Vec<Vec<f64>> = (0..40)
            .map(|t| vec![t as f64, (t * t) as f64 * 0.01])
            .collect();
        let actuals: Vec<f64> = (0..40).map(|t| t as f64 + 1.0).collect();
        let mut a = Stacking::new(15, 6, 9);
        let mut b = Stacking::new(15, 6, 9);
        a.warm_up(&preds, &actuals);
        b.warm_up(&preds, &actuals);
        assert_eq!(a.combine(&[7.0, 0.5]), b.combine(&[7.0, 0.5]));
    }

    #[test]
    fn weights_are_reported_uniform() {
        let mut st = Stacking::new(10, 4, 0);
        assert_eq!(st.weights(4), vec![0.25; 4]);
    }
}
