//! Differential test for the two DDPG update paths.
//!
//! [`UpdatePath::Batched`] re-expresses the per-sample critic/actor updates
//! as one batched forward/backward per network. The repo's determinism
//! contract requires the rewrite to be *bitwise* equivalent, not just
//! numerically close: after any number of updates on identical replay
//! contents, both paths must hold identical parameters (actor, critic, and
//! both Polyak targets) and report identical [`UpdateStats`].
//!
//! The batch size is deliberately not a power of two so that the
//! `x / n as f64` mean-reduction terms cannot silently be replaced by a
//! reciprocal multiply (which rounds differently).

use eadrl_rl::{ActionSquash, DdpgAgent, DdpgConfig, SamplingStrategy, Transition, UpdatePath};
use eadrl_rng::DetRng;

const STATE_DIM: usize = 3;
const ACTION_DIM: usize = 4;

fn agent(path: UpdatePath, sampling: SamplingStrategy) -> DdpgAgent {
    DdpgAgent::new(
        STATE_DIM,
        ACTION_DIM,
        DdpgConfig {
            gamma: 0.9,
            actor_lr: 0.005,
            critic_lr: 0.01,
            tau: 0.02,
            // Non-power-of-2: 1/33 is inexact, so any reciprocal-multiply
            // shortcut in the batched path would change low-order bits.
            batch_size: 33,
            buffer_capacity: 1_000,
            sampling,
            hidden: vec![16, 8],
            squash: ActionSquash::Softmax,
            noise_sigma: 0.2,
            // Non-zero so the actor's logit-regularisation term is part of
            // the comparison.
            actor_logit_reg: 1e-3,
            seed: 11,
            update_path: path,
        },
    )
}

/// Deterministic synthetic replay contents: both agents observe the same
/// transition stream, including occasional terminal transitions so the
/// `done` branch of the Bellman target is exercised.
fn fill_buffer(agent: &mut DdpgAgent, transitions: usize) {
    let mut rng = DetRng::seed_from_u64(404);
    for i in 0..transitions {
        let state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let next_state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let mut action: Vec<f64> = (0..ACTION_DIM)
            .map(|_| rng.random_range(0.0..1.0))
            .collect();
        let sum: f64 = action.iter().sum();
        for a in action.iter_mut() {
            *a /= sum;
        }
        agent.observe(Transition {
            state,
            action,
            reward: rng.random_range(-1.0..1.0),
            next_state,
            done: i % 7 == 0,
        });
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_paths_agree(sampling: SamplingStrategy) {
    let mut batched = agent(UpdatePath::Batched, sampling);
    let mut per_sample = agent(UpdatePath::PerSample, sampling);
    fill_buffer(&mut batched, 120);
    fill_buffer(&mut per_sample, 120);

    for step in 0..8 {
        let sb = batched.update().expect("buffer is filled");
        let sp = per_sample.update().expect("buffer is filled");
        assert_eq!(
            sb.critic_loss.to_bits(),
            sp.critic_loss.to_bits(),
            "critic_loss diverged at update {step} ({sampling:?}): \
             batched {} vs per-sample {}",
            sb.critic_loss,
            sp.critic_loss,
        );
        assert_eq!(
            sb.actor_objective.to_bits(),
            sp.actor_objective.to_bits(),
            "actor_objective diverged at update {step} ({sampling:?}): \
             batched {} vs per-sample {}",
            sb.actor_objective,
            sp.actor_objective,
        );
        assert_eq!(
            bits(&batched.actor_params()),
            bits(&per_sample.actor_params()),
            "actor parameters diverged at update {step} ({sampling:?})"
        );
        assert_eq!(
            bits(&batched.critic_params()),
            bits(&per_sample.critic_params()),
            "critic parameters diverged at update {step} ({sampling:?})"
        );
        assert_eq!(
            bits(&batched.target_params()),
            bits(&per_sample.target_params()),
            "target parameters diverged at update {step} ({sampling:?})"
        );
    }

    // The updated policies act identically too.
    let probe = [0.25, -0.5, 0.75];
    assert_eq!(
        bits(&batched.act(&probe)),
        bits(&per_sample.act(&probe)),
        "greedy actions diverged ({sampling:?})"
    );
}

#[test]
fn batched_updates_match_per_sample_bitwise_uniform() {
    assert_paths_agree(SamplingStrategy::Uniform);
}

#[test]
fn batched_updates_match_per_sample_bitwise_diversity() {
    assert_paths_agree(SamplingStrategy::Diversity);
}
