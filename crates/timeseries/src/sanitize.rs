//! Input-history sanitization for the online serving path.
//!
//! Real telemetry streams contain gaps: a sensor drops out, an upstream
//! join emits NaN, a loader encodes missing values as ±Inf. A single
//! non-finite value in the history poisons every downstream dot product
//! (z-scored embeddings, AR lag vectors, the policy's state window), so
//! the serving path repairs its inputs *before* any model sees them.
//!
//! # Fill policy (documented contract)
//!
//! * A non-finite value is replaced by the **last preceding finite**
//!   value (forward fill / last-observation-carried-forward). This is
//!   the standard streaming repair: it is causal (never reads the
//!   future), idempotent, and keeps the series level through a gap
//!   burst instead of injecting artificial jumps.
//! * **Leading** non-finite values (no finite predecessor) are
//!   back-filled from the **first finite** value in the series.
//! * A series with **no finite value at all** is filled with `0.0`;
//!   callers treat the accompanying stats (`replaced == len`) as a
//!   hard degradation signal rather than a normal repair.
//!
//! The sanitizer is allocation-free on the clean path: it scans first
//! and only copies when a repair is actually needed, so fault-free
//! serving remains byte-identical to the unsanitized pipeline.

/// What a sanitization pass did — the payload of the serving layer's
/// `eadrl.sanitize` telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizeStats {
    /// Total non-finite values replaced.
    pub replaced: usize,
    /// How many of those were leading values (back-filled).
    pub leading: usize,
    /// Length of the scanned series.
    pub len: usize,
}

/// Repairs non-finite values in `series` under the module's fill policy.
///
/// Returns `None` when the series is already clean (the common case —
/// no allocation, no copy), otherwise the repaired copy plus statistics
/// describing the repair.
///
/// ```
/// use eadrl_timeseries::sanitize::sanitize_series;
///
/// assert!(sanitize_series(&[1.0, 2.0, 3.0]).is_none());
/// let (fixed, stats) = sanitize_series(&[f64::NAN, 2.0, f64::INFINITY, 4.0]).unwrap();
/// assert_eq!(fixed, vec![2.0, 2.0, 2.0, 4.0]);
/// assert_eq!(stats.replaced, 2);
/// assert_eq!(stats.leading, 1);
/// ```
pub fn sanitize_series(series: &[f64]) -> Option<(Vec<f64>, SanitizeStats)> {
    let dirty = series.iter().filter(|v| !v.is_finite()).count();
    if dirty == 0 {
        return None;
    }
    let first_finite = series.iter().copied().find(|v| v.is_finite());
    let mut out = Vec::with_capacity(series.len());
    let mut leading = 0usize;
    match first_finite {
        None => {
            // Nothing observable to carry — fill flat at zero and let the
            // caller treat `replaced == len` as a hard failure.
            out.resize(series.len(), 0.0);
            leading = series.len();
        }
        Some(seed) => {
            let mut last = seed;
            let mut seen_finite = false;
            for &v in series {
                if v.is_finite() {
                    seen_finite = true;
                    last = v;
                    out.push(v);
                } else {
                    if !seen_finite {
                        leading += 1;
                    }
                    out.push(last);
                }
            }
        }
    }
    Some((
        out,
        SanitizeStats {
            replaced: dirty,
            leading,
            len: series.len(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_series_returns_none() {
        assert!(sanitize_series(&[]).is_none());
        assert!(sanitize_series(&[1.0, -2.0, 0.0]).is_none());
    }

    #[test]
    fn forward_fill_carries_last_finite_value() {
        let (fixed, stats) =
            sanitize_series(&[1.0, f64::NAN, f64::NAN, 4.0, f64::NEG_INFINITY]).unwrap();
        assert_eq!(fixed, vec![1.0, 1.0, 1.0, 4.0, 4.0]);
        assert_eq!(
            stats,
            SanitizeStats {
                replaced: 3,
                leading: 0,
                len: 5
            }
        );
    }

    #[test]
    fn leading_gap_is_back_filled_from_first_finite() {
        let (fixed, stats) = sanitize_series(&[f64::NAN, f64::NAN, 7.0, f64::NAN]).unwrap();
        assert_eq!(fixed, vec![7.0, 7.0, 7.0, 7.0]);
        assert_eq!(stats.leading, 2);
        assert_eq!(stats.replaced, 3);
    }

    #[test]
    fn all_non_finite_fills_zero_and_reports_total_loss() {
        let (fixed, stats) = sanitize_series(&[f64::NAN, f64::INFINITY]).unwrap();
        assert_eq!(fixed, vec![0.0, 0.0]);
        assert_eq!(stats.replaced, 2);
        assert_eq!(stats.leading, 2);
        assert_eq!(stats.len, 2);
    }

    #[test]
    fn sanitization_is_idempotent() {
        let (fixed, _) = sanitize_series(&[f64::NAN, 3.0, f64::NAN]).unwrap();
        assert!(sanitize_series(&fixed).is_none());
    }
}
