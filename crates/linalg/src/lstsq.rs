//! Linear least squares and ridge regression.

use crate::decompose::{Cholesky, Qr};
use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Solves the ordinary least-squares problem `min ||X β - y||₂` via QR.
///
/// Falls back to a tiny ridge (`λ = 1e-8`) when `X` is rank deficient so
/// callers fitting collinear embeddings still get a usable solution.
pub fn lstsq(x: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            context: format!("lstsq: {} rows vs {} targets", x.rows(), y.len()),
        });
    }
    if x.rows() >= x.cols() {
        match Qr::new(x).and_then(|qr| qr.solve(y)) {
            Ok(beta) if beta.iter().all(|b| b.is_finite()) => return Ok(beta),
            _ => {}
        }
    }
    // Rank-deficient or underdetermined: regularize.
    ridge(x, y, 1e-8)
}

/// Solves the ridge-regression problem `min ||X β - y||₂² + λ ||β||₂²`
/// through the normal equations `(XᵀX + λI) β = Xᵀy` with Cholesky.
///
/// `lambda` must be non-negative; a value of zero reduces to OLS via the
/// normal equations (with a tiny jitter retry if the Gram matrix is not
/// positive definite).
pub fn ridge(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            context: format!("ridge: {} rows vs {} targets", x.rows(), y.len()),
        });
    }
    if lambda < 0.0 {
        return Err(LinalgError::ShapeMismatch {
            context: format!("ridge: negative lambda {lambda}"),
        });
    }
    let mut gram = x.gram();
    gram.add_diagonal(lambda);
    let xty = x.tr_matvec(y)?;
    match Cholesky::new(&gram) {
        Ok(ch) => ch.solve(&xty),
        Err(_) => {
            // Jitter escalation: keep multiplying the ridge until SPD.
            let mut jitter = (lambda.max(1e-10)) * 10.0;
            for _ in 0..12 {
                let mut g = x.gram();
                g.add_diagonal(jitter);
                if let Ok(ch) = Cholesky::new(&g) {
                    return ch.solve(&xty);
                }
                jitter *= 10.0;
            }
            Err(LinalgError::Singular)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstsq_recovers_exact_line() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ])
        .unwrap();
        let y = [1.0, 3.0, 5.0, 7.0]; // y = 1 + 2x
        let beta = lstsq(&x, &y).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_handles_collinear_columns() {
        // Second column duplicates the first: rank deficient.
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let y = [2.0, 4.0, 6.0];
        let beta = lstsq(&x, &y).unwrap();
        // Ridge spreads the coefficient; the fitted values must still match.
        let pred = x.matvec(&beta).unwrap();
        for (p, t) in pred.iter().zip(y.iter()) {
            assert!((p - t).abs() < 1e-3);
        }
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = [2.0, 4.0, 6.0];
        let b0 = ridge(&x, &y, 0.0).unwrap()[0];
        let b_big = ridge(&x, &y, 100.0).unwrap()[0];
        assert!((b0 - 2.0).abs() < 1e-8);
        assert!(b_big < b0);
        assert!(b_big > 0.0);
    }

    #[test]
    fn ridge_rejects_negative_lambda() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(ridge(&x, &[1.0], -1.0).is_err());
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let x = Matrix::zeros(3, 2);
        assert!(lstsq(&x, &[1.0, 2.0]).is_err());
        assert!(ridge(&x, &[1.0, 2.0], 0.1).is_err());
    }
}
