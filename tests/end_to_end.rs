//! Cross-crate integration: the full EA-DRL pipeline from synthetic data
//! through pool fitting, policy learning and online forecasting.

use eadrl::core::{EaDrl, EaDrlConfig, OnlineState};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::{quick_pool, Forecaster, Naive};
use eadrl::timeseries::metrics::rmse;

fn quick_config(episodes: usize) -> EaDrlConfig {
    let mut config = EaDrlConfig::default();
    config.omega = 8;
    config.episodes = episodes;
    config.max_iter = 60;
    config.restarts = 1;
    config
}

#[test]
fn eadrl_beats_naive_on_seasonal_demand() {
    // Hourly bike rentals: a strong daily cycle with bursty noise, where
    // a last-value forecast is clearly beatable.
    let series = generate(DatasetId::BikeRentals, 420, 11);
    let (train, test) = series.split(0.75);

    let mut model = EaDrl::new(quick_pool(5, 24, 11), quick_config(15));
    model.fit(train).unwrap();

    let mut naive = Naive;
    naive.fit(train).unwrap();

    let mut history = train.to_vec();
    let mut ea = Vec::new();
    let mut nv = Vec::new();
    for &actual in test {
        ea.push(model.predict_next(&history));
        nv.push(naive.predict_next(&history));
        history.push(actual);
    }
    let (ea_rmse, nv_rmse) = (rmse(test, &ea), rmse(test, &nv));
    assert!(
        ea_rmse < nv_rmse,
        "EA-DRL {ea_rmse:.3} should beat Naive {nv_rmse:.3} on seasonal data"
    );
}

#[test]
fn weights_remain_a_distribution_throughout_online_use() {
    let series = generate(DatasetId::BikeRentals, 380, 3);
    let (train, test) = series.split(0.75);
    let mut model = EaDrl::new(quick_pool(5, 24, 3), quick_config(10));
    model.fit(train).unwrap();

    let mut history = train.to_vec();
    for &actual in test.iter().take(40) {
        let w = model.current_weights();
        assert_eq!(w.len(), model.n_models());
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9, "sum(w) != 1");
        assert!(
            w.iter().all(|&x| (0.0..=1.0).contains(&x)),
            "w out of range"
        );
        let _ = model.predict_next(&history);
        history.push(actual);
    }
}

#[test]
fn online_state_variants_both_forecast_finitely() {
    let series = generate(DatasetId::EnergyTempOut, 380, 5);
    let (train, test) = series.split(0.75);
    for state in [OnlineState::EnsembleOutputs, OnlineState::Observed] {
        let mut config = quick_config(8);
        config.online_state = state;
        let mut model = EaDrl::new(quick_pool(5, 144, 5), config);
        model.fit(train).unwrap();
        let mut history = train.to_vec();
        for &actual in test.iter().take(30) {
            let p = model.predict_next(&history);
            assert!(p.is_finite(), "{state:?} produced non-finite forecast");
            history.push(actual);
        }
    }
}

#[test]
fn learning_curve_is_recorded_and_finite() {
    let series = generate(DatasetId::SolarRadiation, 380, 9);
    let (train, _) = series.split(0.75);
    let mut model = EaDrl::new(quick_pool(5, 24, 9), quick_config(12));
    model.fit(train).unwrap();
    let curve = model.learning_curve();
    assert_eq!(curve.len(), 12);
    assert!(curve
        .iter()
        .all(|s| s.avg_reward.is_finite() && s.steps > 0));
}

#[test]
fn recursive_forecast_is_plausible_on_smooth_series() {
    // Strongly persistent humidity channel: multi-step forecasts should
    // stay inside a generous band around the series range.
    let series = generate(DatasetId::EnergyHumidity3, 400, 13);
    let (train, test) = series.split(0.75);
    let mut model = EaDrl::new(quick_pool(5, 144, 13), quick_config(10));
    model.fit(train).unwrap();
    let forecast = model.forecast(train, 30);
    assert_eq!(forecast.len(), 30);
    let lo = series.min().unwrap();
    let hi = series.max().unwrap();
    let band = (hi - lo).max(1.0);
    assert!(
        forecast.iter().all(|&f| f > lo - band && f < hi + band),
        "multi-step forecast left the plausible band: {forecast:?}"
    );
    let _ = test;
}
