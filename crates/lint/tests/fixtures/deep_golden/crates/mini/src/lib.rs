//! Golden fixture for the deep (call-graph) analysis. Never compiled —
//! parsed only, by `tests/deep_golden.rs`. Exercises trait dispatch,
//! closures inside a `par_map`-style combinator, a free fn shadowing a
//! trait-method name, and a cross-module `use`.
//!
//! Hand-computed expectations (see the test for the exact assertions):
//!
//! * `mini::evaluate`     — panics-via `evaluate -> Risky::score -> .unwrap()`
//! * `mini::evaluate_all` — panics-via `evaluate_all -> util::helper -> util::deep -> .expect()`
//! * `mini::helper`       — panics-via `helper -> deep -> .expect()`
//! * `mini::score` (the `shadow` free fn) and `mini::call_free` — safe:
//!   the bare call in `shadow.rs` must resolve module-locally, not into
//!   the `Model` implementors.

pub mod shadow;
pub mod util;

use crate::util::helper;

/// An ensemble member.
pub trait Model {
    /// Scores one input.
    fn score(&self, x: f64) -> f64;
}

/// A member that cannot panic.
pub struct Safe;

impl Model for Safe {
    fn score(&self, x: f64) -> f64 {
        x * 2.0
    }
}

/// A member whose score unwraps.
pub struct Risky;

impl Model for Risky {
    fn score(&self, x: f64) -> f64 {
        checked(x).unwrap()
    }
}

fn checked(x: f64) -> Option<f64> {
    if x.is_finite() {
        Some(x)
    } else {
        None
    }
}

/// Trait dispatch: the conservative graph reaches every implementor,
/// so the panic inside `Risky::score` must surface here.
pub fn evaluate(m: &dyn Model, x: f64) -> f64 {
    m.score(x)
}

/// Closure inside a `par_map`-style combinator: the `helper` call in
/// the closure body is attributed to this enclosing fn.
pub fn evaluate_all(xs: &[f64]) -> Vec<f64> {
    par_map(xs, |x| helper(*x))
}

fn par_map<T, R>(items: &[T], f: impl Fn(&T) -> R) -> Vec<R> {
    items.iter().map(f).collect()
}
