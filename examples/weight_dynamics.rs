//! Weight dynamics: trace every combiner's weight vector through the
//! online phase and compare how much mass each method moves per step
//! (`weight_churn`). EA-DRL's frozen policy sits at one extreme; the
//! step-wise online aggregators at the other.
//!
//! ```text
//! cargo run --release --example weight_dynamics
//! ```

use eadrl::core::baselines::all_baselines;
use eadrl::core::experiment::sanitize_predictions;
use eadrl::core::{run_combiner_traced, weight_churn, EaDrlConfig, EaDrlPolicy};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::{quick_pool, rolling_forecast};
use eadrl::timeseries::metrics::rmse;

fn main() {
    let series = generate(DatasetId::TaxiDemand1, 480, 42);
    let (train, test) = series.split(0.75);
    let fit_len = (train.len() as f64 * 0.75).round() as usize;
    let (fit_part, warm_part) = train.split_at(fit_len);

    let mut pool = quick_pool(5, 48, 42);
    pool.retain_mut(|m| m.fit(fit_part).is_ok());
    let matrix = |history: &[f64], segment: &[f64]| -> Vec<Vec<f64>> {
        let per_model: Vec<Vec<f64>> = pool
            .iter()
            .map(|m| rolling_forecast(m.as_ref(), history, segment))
            .collect();
        (0..segment.len())
            .map(|t| per_model.iter().map(|p| p[t]).collect())
            .collect()
    };
    let mut warm = matrix(fit_part, warm_part);
    let mut online = matrix(train, test);
    sanitize_predictions(&mut warm, fit_part);
    sanitize_predictions(&mut online, train);

    let mut methods = all_baselines(10, 42);
    methods.push(Box::new(EaDrlPolicy::new(EaDrlConfig::default())));

    println!(
        "{} online steps on {:?}, pool of {}\n",
        test.len(),
        series.name(),
        pool.len()
    );
    println!(
        "{:<10} {:>8} {:>12}   dominant model weight over time",
        "method", "RMSE", "churn/step"
    );
    let mut rows = Vec::new();
    for mut method in methods {
        method.warm_up(&warm, warm_part);
        let (out, traces) = run_combiner_traced(method.as_mut(), &online, test);
        let churn = weight_churn(&traces);
        // Track the weight of whichever model dominates on average.
        let m = traces[0].len();
        let mut avg = vec![0.0; m];
        for w in &traces {
            for (a, &v) in avg.iter_mut().zip(w.iter()) {
                *a += v;
            }
        }
        let champ = avg
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let spark: String = traces
            .iter()
            .step_by(traces.len() / 30 + 1)
            .map(|w| {
                const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                BARS[((w[champ] * 7.0).round() as usize).min(7)]
            })
            .collect();
        rows.push((method.name().to_string(), rmse(test, &out), churn, spark));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, err, churn, spark) in rows {
        println!("{name:<10} {err:>8.3} {churn:>12.4}   {spark}");
    }
    println!(
        "\nchurn = mean L1 weight movement per step. 0 means a frozen\n\
         weighting (EA-DRL's deployed policy); high churn means the method\n\
         re-weights aggressively after every observation."
    );
}
