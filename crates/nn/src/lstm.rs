//! LSTM and bidirectional-LSTM sequence layers with full BPTT.
//!
//! Two training paths coexist and are bitwise-interchangeable:
//!
//! * the original per-sequence path ([`Lstm::forward_sequence`] /
//!   [`Lstm::backward_last`]), kept as the reference implementation and
//!   still used by the stacked-LSTM family, and
//! * the batched path ([`Lstm::forward_batch`] / [`Lstm::backward_batch_last`]),
//!   which stages B training windows as one `B x in_dim` matrix per
//!   timestep and runs the stacked-gate kernels from `eadrl_linalg` over a
//!   persistent [`RecurrentWorkspace`] (SoA step caches, zero steady-state
//!   allocations).
//!
//! Bitwise equivalence of the two paths rests on three invariants, proven
//! by `tests/recurrent_equivalence.rs`:
//!
//! 1. the gate pre-activations are formed as `b + (W·x + U·h)` with each
//!    GEMM element accumulated in ascending-k order from 0.0 — the exact
//!    expression tree of the per-sequence step;
//! 2. BPTT weight gradients are staged into `(B*T)`-row matrices at row
//!    `s*T + (T-1-t)` (sample-major, timestep-descending) so one
//!    `gemm_tn_acc` replays the per-sequence accumulation order
//!    contribution for contribution;
//! 3. the incoming hidden gradient is *always* added at every step (even
//!    when zero), mirroring the per-sequence `dh += grad_hs[t]`, because
//!    `x + 0.0` normalizes `-0.0` to `+0.0`.

use crate::init;
use crate::network::Network;
use eadrl_linalg::{kernels, vector};
use eadrl_rng::DetRng;

/// Per-timestep cache of everything the backward pass needs.
#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    // Not read by the backward pass (it uses `tanh_c`), but kept so the
    // serialized cache stays a complete record of the forward step.
    #[allow(dead_code)]
    c: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// Persistent SoA step caches for the batched LSTM training path.
///
/// One `B x 4H` gate buffer and `B x H` state buffers per timestep, all
/// flat and timestep-major, plus the `(B*T)`-row staging matrices the
/// BPTT weight-gradient GEMMs consume. Buffers grow on [`stage`]
/// (`Vec::resize`) and are reused across minibatches and epochs — after
/// the first chunk of an epoch loop the workspace performs zero
/// allocations.
///
/// [`stage`]: RecurrentWorkspace::stage
#[derive(Debug, Clone, Default)]
pub struct RecurrentWorkspace {
    batch: usize,
    steps: usize,
    in_dim: usize,
    hidden: usize,
    forwarded: bool,
    /// Inputs, timestep-major: `x[t][s][i]`, shape `T x B x in_dim`.
    x: Vec<f64>,
    /// Activated gates `[i|f|g|o]` per step: `T x B x 4H`.
    gates: Vec<f64>,
    /// Cell states per step: `T x B x H`.
    c: Vec<f64>,
    /// `tanh` of the cell states per step: `T x B x H`.
    tanh_c: Vec<f64>,
    /// Hidden states per step: `T x B x H`.
    h: Vec<f64>,
    /// All-zero `B x H` block standing in for `h_{-1}` / `c_{-1}`.
    zero_state: Vec<f64>,
    /// Gate pre-activation halves, `B x 4H` scratch reused per timestep.
    zw: Vec<f64>,
    zu: Vec<f64>,
    /// Upstream hidden-state gradients per step: `T x B x H`.
    grad_h: Vec<f64>,
    /// Backward scratch, `B x H` / `B x 4H`, reused per timestep.
    dh: Vec<f64>,
    dc: Vec<f64>,
    dc_prev: Vec<f64>,
    dz: Vec<f64>,
    /// Staged BPTT rows at index `s*T + (T-1-t)` (sample-major,
    /// timestep-descending — the per-sequence accumulation order).
    dz_stage: Vec<f64>,
    x_stage: Vec<f64>,
    h_stage: Vec<f64>,
    /// Input gradients, timestep-major `T x B x in_dim` (filled only when
    /// the backward pass is asked for them).
    grad_x: Vec<f64>,
}

impl RecurrentWorkspace {
    /// Creates an empty workspace; buffers are sized on [`stage`].
    ///
    /// [`stage`]: RecurrentWorkspace::stage
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for a `batch x steps` pass and clears the
    /// upstream gradients. Growth-only: re-staging with the same or
    /// smaller shape allocates nothing.
    pub fn stage(&mut self, batch: usize, steps: usize, in_dim: usize, hidden: usize) {
        self.batch = batch;
        self.steps = steps;
        self.in_dim = in_dim;
        self.hidden = hidden;
        self.forwarded = false;
        let (bh, g4) = (batch * hidden, 4 * hidden);
        self.x.resize(steps * batch * in_dim, 0.0);
        self.gates.resize(steps * batch * g4, 0.0);
        self.c.resize(steps * bh, 0.0);
        self.tanh_c.resize(steps * bh, 0.0);
        self.h.resize(steps * bh, 0.0);
        self.zero_state.resize(bh, 0.0);
        self.zero_state.fill(0.0);
        self.zw.resize(batch * g4, 0.0);
        self.zu.resize(batch * g4, 0.0);
        self.grad_h.resize(steps * bh, 0.0);
        self.grad_h.fill(0.0);
        self.dh.resize(bh, 0.0);
        self.dc.resize(bh, 0.0);
        self.dc_prev.resize(bh, 0.0);
        self.dz.resize(batch * g4, 0.0);
        self.dz_stage.resize(batch * steps * g4, 0.0);
        self.x_stage.resize(batch * steps * in_dim, 0.0);
        self.h_stage.resize(batch * steps * hidden, 0.0);
        self.grad_x.resize(steps * batch * in_dim, 0.0);
    }

    /// Copies one sample's input vector for timestep `t` into the staged
    /// `X_t` matrix.
    pub fn set_input(&mut self, s: usize, t: usize, x: &[f64]) {
        debug_assert_eq!(x.len(), self.in_dim, "RecurrentWorkspace::set_input dim");
        let base = (t * self.batch + s) * self.in_dim;
        self.x[base..base + self.in_dim].copy_from_slice(x);
    }

    /// Upstream hidden-state gradient block for timestep `t`
    /// (`B x hidden`), for callers driving [`Lstm::backward_batch_full`].
    pub fn grad_h_mut(&mut self, t: usize) -> &mut [f64] {
        let bh = self.batch * self.hidden;
        &mut self.grad_h[t * bh..(t + 1) * bh]
    }

    /// Final hidden states after [`Lstm::forward_batch`] (`B x hidden`,
    /// sample-major).
    pub fn h_last(&self) -> &[f64] {
        let bh = self.batch * self.hidden;
        &self.h[(self.steps - 1) * bh..]
    }

    /// Input-gradient block for timestep `t` (`B x in_dim`), valid after a
    /// backward pass requested input gradients.
    pub fn grad_x(&self, t: usize) -> &[f64] {
        let bi = self.batch * self.in_dim;
        &self.grad_x[t * bi..(t + 1) * bi]
    }
}

/// Reusable buffers for the alloc-free single-window inference path
/// ([`Lstm::forward_inference_cached`]); one per online model, reused
/// across `predict_next` calls.
#[derive(Debug, Clone, Default)]
pub struct LstmInferenceCache {
    z: Vec<f64>,
    h: Vec<f64>,
    c: Vec<f64>,
    /// Full hidden sequence (`T x H`), used by the `_full` variant.
    hs: Vec<f64>,
}

/// Inference buffers for [`BiLstm::forward_inference_cached`]: one
/// per-direction cache plus the reversed-input and concatenated-output
/// scratch.
#[derive(Debug, Clone, Default)]
pub struct BiLstmInferenceCache {
    fwd: LstmInferenceCache,
    bwd: LstmInferenceCache,
    rev: Vec<f64>,
    out: Vec<f64>,
}

/// A single-layer LSTM over sequences of input vectors.
///
/// Gate order in the packed weight matrices is `i, f, g, o` (input, forget,
/// candidate, output). `w` maps inputs (shape `4H x in_dim`), `u` maps the
/// previous hidden state (shape `4H x H`), `b` is the bias (`4H`; the
/// forget-gate slice is initialized to 1.0, the standard trick that keeps
/// memory open early in training).
#[derive(Debug, Clone)]
pub struct Lstm {
    in_dim: usize,
    hidden: usize,
    w: Vec<f64>,
    u: Vec<f64>,
    b: Vec<f64>,
    grad_w: Vec<f64>,
    grad_u: Vec<f64>,
    grad_b: Vec<f64>,
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights.
    pub fn new(rng: &mut DetRng, in_dim: usize, hidden: usize) -> Self {
        let w = init::xavier_uniform(rng, in_dim, hidden, 4 * hidden * in_dim);
        let u = init::xavier_uniform(rng, hidden, hidden, 4 * hidden * hidden);
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias = 1.
        for v in b.iter_mut().take(2 * hidden).skip(hidden) {
            *v = 1.0;
        }
        Lstm {
            in_dim,
            hidden,
            grad_w: vec![0.0; 4 * hidden * in_dim],
            grad_u: vec![0.0; 4 * hidden * hidden],
            grad_b: vec![0.0; 4 * hidden],
            w,
            u,
            b,
            cache: Vec::new(),
        }
    }

    /// Input dimension per timestep.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden-state size.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Runs the sequence and returns the final hidden state, caching the
    /// full unrolled pass for [`Lstm::backward_last`].
    pub fn forward_sequence(&mut self, inputs: &[Vec<f64>]) -> Vec<f64> {
        self.cache.clear();
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        for x in inputs {
            let (nh, nc, step) = self.step(x, &h, &c);
            self.cache.push(step);
            h = nh;
            c = nc;
        }
        h
    }

    /// Runs the sequence and returns *every* hidden state (training pass;
    /// caches for [`Lstm::backward_full`]). Used by stacked LSTMs, where
    /// the next layer consumes the full hidden sequence.
    pub fn forward_sequence_full(&mut self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.cache.clear();
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut out = Vec::with_capacity(inputs.len());
        for x in inputs {
            let (nh, nc, step) = self.step(x, &h, &c);
            self.cache.push(step);
            h = nh;
            c = nc;
            out.push(h.clone());
        }
        out
    }

    /// Inference-only pass returning every hidden state.
    pub fn forward_inference_full(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut out = Vec::with_capacity(inputs.len());
        for x in inputs {
            let (nh, nc, _) = self.step_no_cache(x, &h, &c);
            h = nh;
            c = nc;
            out.push(h.clone());
        }
        out
    }

    /// Inference-only pass (no caching); returns the final hidden state.
    pub fn forward_inference(&self, inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        for x in inputs {
            let (nh, nc, _) = self.step_no_cache(x, &h, &c);
            h = nh;
            c = nc;
        }
        h
    }

    fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, StepCache) {
        debug_assert_eq!(x.len(), self.in_dim, "Lstm step: input dim");
        let hsz = self.hidden;
        // z = W x + U h_prev + b, gate blocks [i | f | g | o].
        let mut z = self.b.clone();
        for (row, zv) in z.iter_mut().enumerate() {
            let wrow = &self.w[row * self.in_dim..(row + 1) * self.in_dim];
            let urow = &self.u[row * hsz..(row + 1) * hsz];
            *zv += wrow.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>()
                + urow
                    .iter()
                    .zip(h_prev.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>();
        }
        let sigmoid = |v: f64| 1.0 / (1.0 + (-v).exp());
        let i: Vec<f64> = z[..hsz].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f64> = z[hsz..2 * hsz].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f64> = z[2 * hsz..3 * hsz].iter().map(|&v| v.tanh()).collect();
        let o: Vec<f64> = z[3 * hsz..].iter().map(|&v| sigmoid(v)).collect();
        let c: Vec<f64> = (0..hsz).map(|k| f[k] * c_prev[k] + i[k] * g[k]).collect();
        let tanh_c: Vec<f64> = c.iter().map(|v| v.tanh()).collect();
        let h: Vec<f64> = (0..hsz).map(|k| o[k] * tanh_c[k]).collect();
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c: c.clone(),
            tanh_c,
        };
        (h, c, cache)
    }

    fn step_no_cache(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, ()) {
        let (h, c, _) = self.step(x, h_prev, c_prev);
        (h, c, ())
    }

    /// BPTT from a gradient on the *final* hidden state.
    ///
    /// Accumulates parameter gradients and returns the gradients with
    /// respect to each input vector (same order as the forward inputs).
    ///
    /// # Panics
    /// Panics when called before [`Lstm::forward_sequence`].
    pub fn backward_last(&mut self, grad_h_last: &[f64]) -> Vec<Vec<f64>> {
        assert!(
            !self.cache.is_empty(),
            "Lstm::backward_last called before forward_sequence"
        );
        let steps = self.cache.len();
        let mut grads = vec![vec![0.0; self.hidden]; steps];
        grads[steps - 1].copy_from_slice(grad_h_last);
        self.backward_full(&grads)
    }

    /// BPTT with a gradient on *every* hidden state (stacked-LSTM case).
    ///
    /// `grad_hs[t]` is the gradient flowing into hidden state `h_t` from
    /// above; returns gradients with respect to each input vector.
    ///
    /// # Panics
    /// Panics when called before a forward pass or with a mismatched
    /// number of step gradients.
    pub fn backward_full(&mut self, grad_hs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert!(
            !self.cache.is_empty(),
            "Lstm::backward_full called before forward_sequence"
        );
        let hsz = self.hidden;
        let steps = self.cache.len();
        assert_eq!(grad_hs.len(), steps, "one hidden gradient per step");
        let mut grad_inputs = vec![vec![0.0; self.in_dim]; steps];
        let mut dh = vec![0.0; hsz];
        let mut dc_next = vec![0.0; hsz];

        for t in (0..steps).rev() {
            for (d, g) in dh.iter_mut().zip(grad_hs[t].iter()) {
                *d += g;
            }
            // Move the cache entry out to avoid borrowing issues; restore after.
            let cache = std::mem::take(&mut self.cache[t]);
            let mut dz = vec![0.0; 4 * hsz]; // pre-activation grads [i|f|g|o]
            let mut dc_prev = vec![0.0; hsz];
            for k in 0..hsz {
                let do_k = dh[k] * cache.tanh_c[k];
                let dc =
                    dc_next[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
                let di = dc * cache.g[k];
                let df = dc * cache.c_prev[k];
                let dg = dc * cache.i[k];
                dc_prev[k] = dc * cache.f[k];
                dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                dz[hsz + k] = df * cache.f[k] * (1.0 - cache.f[k]);
                dz[2 * hsz + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
                dz[3 * hsz + k] = do_k * cache.o[k] * (1.0 - cache.o[k]);
            }
            // Parameter gradients and input/hidden gradients.
            let mut dh_prev = vec![0.0; hsz];
            for row in 0..4 * hsz {
                let d = dz[row];
                // eadrl-lint: allow(no-float-eq): subgradient sparsity skip — exact zero contributes nothing to any parameter
                if d == 0.0 {
                    continue;
                }
                self.grad_b[row] += d;
                let gw = &mut self.grad_w[row * self.in_dim..(row + 1) * self.in_dim];
                for (gwi, &xi) in gw.iter_mut().zip(cache.x.iter()) {
                    *gwi += d * xi;
                }
                let gu = &mut self.grad_u[row * hsz..(row + 1) * hsz];
                for (gui, &hi) in gu.iter_mut().zip(cache.h_prev.iter()) {
                    *gui += d * hi;
                }
                let wrow = &self.w[row * self.in_dim..(row + 1) * self.in_dim];
                for (gi, &wv) in grad_inputs[t].iter_mut().zip(wrow.iter()) {
                    *gi += d * wv;
                }
                let urow = &self.u[row * hsz..(row + 1) * hsz];
                for (ghi, &uv) in dh_prev.iter_mut().zip(urow.iter()) {
                    *ghi += d * uv;
                }
            }
            self.cache[t] = cache;
            dh = dh_prev;
            dc_next = dc_prev;
        }
        grad_inputs
    }

    /// Batched forward pass over the windows staged in `ws`: one
    /// `X_t: B x in_dim` stacked-gate GEMM per timestep instead of B
    /// matvec loops. Results (and the SoA step caches the backward pass
    /// reads) land in the workspace; bitwise-identical to running
    /// [`Lstm::forward_sequence`] per sample.
    pub fn forward_batch(&self, ws: &mut RecurrentWorkspace) {
        debug_assert_eq!(ws.in_dim, self.in_dim, "Lstm::forward_batch: input dim");
        debug_assert_eq!(ws.hidden, self.hidden, "Lstm::forward_batch: hidden dim");
        debug_assert!(ws.steps > 0, "Lstm::forward_batch: empty sequence");
        let mut span = eadrl_obs::span_at(eadrl_obs::Level::Trace, "nn.lstm.forward_batch");
        span.record("rows", ws.batch.into());
        span.record("steps", ws.steps.into());
        let (b, hsz) = (ws.batch, self.hidden);
        let (bh, g4) = (b * hsz, 4 * hsz);
        for t in 0..ws.steps {
            let xt = &ws.x[t * b * self.in_dim..(t + 1) * b * self.in_dim];
            kernels::gates_gemm(b, self.in_dim, g4, xt, &self.w, &mut ws.zw);
            let (h_done, h_rest) = ws.h.split_at_mut(t * bh);
            let h_prev: &[f64] = if t == 0 {
                &ws.zero_state
            } else {
                &h_done[(t - 1) * bh..]
            };
            kernels::gates_gemm(b, hsz, g4, h_prev, &self.u, &mut ws.zu);
            let (c_done, c_rest) = ws.c.split_at_mut(t * bh);
            let c_prev: &[f64] = if t == 0 {
                &ws.zero_state
            } else {
                &c_done[(t - 1) * bh..]
            };
            kernels::lstm_gate_apply(
                b,
                hsz,
                &self.b,
                &ws.zw,
                &ws.zu,
                c_prev,
                &mut ws.gates[t * b * g4..(t + 1) * b * g4],
                &mut c_rest[..bh],
                &mut ws.tanh_c[t * bh..(t + 1) * bh],
                &mut h_rest[..bh],
            );
        }
        ws.forwarded = true;
    }

    /// Batched BPTT from a gradient on each sample's *final* hidden state
    /// (`grad_h_last` is `B x hidden`, sample-major). Accumulates
    /// parameter gradients; when `want_input_grads` is set, per-timestep
    /// input gradients are left in the workspace ([`RecurrentWorkspace::grad_x`]).
    ///
    /// # Panics
    /// Panics when called before [`Lstm::forward_batch`].
    pub fn backward_batch_last(
        &mut self,
        grad_h_last: &[f64],
        ws: &mut RecurrentWorkspace,
        want_input_grads: bool,
    ) {
        assert!(
            ws.forwarded,
            "Lstm::backward_batch_last called before forward_batch"
        );
        debug_assert_eq!(
            grad_h_last.len(),
            ws.batch * self.hidden,
            "Lstm::backward_batch_last: grad shape"
        );
        let bh = ws.batch * self.hidden;
        ws.grad_h.fill(0.0);
        ws.grad_h[(ws.steps - 1) * bh..].copy_from_slice(grad_h_last);
        self.backward_batch_staged(ws, want_input_grads);
    }

    /// Batched BPTT with a gradient on *every* hidden state; the caller
    /// fills the per-step blocks via [`RecurrentWorkspace::grad_h_mut`]
    /// after staging.
    ///
    /// # Panics
    /// Panics when called before [`Lstm::forward_batch`].
    pub fn backward_batch_full(&mut self, ws: &mut RecurrentWorkspace, want_input_grads: bool) {
        assert!(
            ws.forwarded,
            "Lstm::backward_batch_full called before forward_batch"
        );
        self.backward_batch_staged(ws, want_input_grads);
    }

    fn backward_batch_staged(&mut self, ws: &mut RecurrentWorkspace, want_input_grads: bool) {
        let mut span = eadrl_obs::span_at(eadrl_obs::Level::Trace, "nn.lstm.backward_batch");
        span.record("rows", ws.batch.into());
        span.record("steps", ws.steps.into());
        let (b, hsz, ind) = (ws.batch, self.hidden, self.in_dim);
        let (bh, g4) = (b * hsz, 4 * hsz);
        let t_steps = ws.steps;
        ws.dh.fill(0.0);
        ws.dc.fill(0.0);
        for t in (0..t_steps).rev() {
            // Always add the upstream gradient, even when the block is all
            // zeros — the per-sequence path does, and `x + 0.0` normalizes
            // any `-0.0` in `dh` to `+0.0`.
            for (d, g) in ws.dh.iter_mut().zip(ws.grad_h[t * bh..(t + 1) * bh].iter()) {
                *d += g;
            }
            let c_prev: &[f64] = if t == 0 {
                &ws.zero_state
            } else {
                &ws.c[(t - 1) * bh..t * bh]
            };
            let h_prev: &[f64] = if t == 0 {
                &ws.zero_state
            } else {
                &ws.h[(t - 1) * bh..t * bh]
            };
            kernels::lstm_gate_grad(
                b,
                hsz,
                &ws.gates[t * b * g4..(t + 1) * b * g4],
                &ws.tanh_c[t * bh..(t + 1) * bh],
                c_prev,
                &ws.dh,
                &ws.dc,
                &mut ws.dz,
                &mut ws.dc_prev,
            );
            for s in 0..b {
                let r = s * t_steps + (t_steps - 1 - t);
                ws.dz_stage[r * g4..(r + 1) * g4].copy_from_slice(&ws.dz[s * g4..(s + 1) * g4]);
                ws.x_stage[r * ind..(r + 1) * ind]
                    .copy_from_slice(&ws.x[(t * b + s) * ind..(t * b + s + 1) * ind]);
                ws.h_stage[r * hsz..(r + 1) * hsz].copy_from_slice(&h_prev[s * hsz..(s + 1) * hsz]);
            }
            kernels::gemm(b, g4, hsz, &ws.dz, &self.u, &mut ws.dh);
            if want_input_grads {
                kernels::gemm(
                    b,
                    g4,
                    ind,
                    &ws.dz,
                    &self.w,
                    &mut ws.grad_x[t * b * ind..(t + 1) * b * ind],
                );
            }
            std::mem::swap(&mut ws.dc, &mut ws.dc_prev);
        }
        // Weight gradients in one TN GEMM each: the staged rows are
        // (sample-major, timestep-descending), replaying the per-sequence
        // accumulation order exactly. The bias column sums add skipped
        // zeros too — bit-identical, since the partial sums can never be
        // `-0.0` (chains start at `+0.0` and IEEE addition only yields
        // `-0.0` from two negative-zero operands).
        let rows = b * t_steps;
        for r in 0..rows {
            let dzr = &ws.dz_stage[r * g4..(r + 1) * g4];
            for (gb, &d) in self.grad_b.iter_mut().zip(dzr.iter()) {
                *gb += d;
            }
        }
        kernels::gemm_tn_acc(rows, g4, ind, &ws.dz_stage, &ws.x_stage, &mut self.grad_w);
        kernels::gemm_tn_acc(rows, g4, hsz, &ws.dz_stage, &ws.h_stage, &mut self.grad_u);
    }

    fn cached_steps(&self, data_len: usize, stride: usize) -> usize {
        debug_assert!(stride > 0, "Lstm inference stride must be positive");
        if data_len < self.in_dim {
            return 0;
        }
        debug_assert_eq!(
            (data_len - self.in_dim) % stride,
            0,
            "Lstm inference data length must align with the stride"
        );
        (data_len - self.in_dim) / stride + 1
    }

    fn step_cached(&self, x: &[f64], cache: &mut LstmInferenceCache) {
        let hsz = self.hidden;
        let LstmInferenceCache { z, h, c, .. } = cache;
        for (row, zv) in z.iter_mut().enumerate() {
            let wrow = &self.w[row * self.in_dim..(row + 1) * self.in_dim];
            let urow = &self.u[row * hsz..(row + 1) * hsz];
            *zv = self.b[row] + (vector::dot(wrow, x) + vector::dot(urow, h));
        }
        let sigmoid = |v: f64| 1.0 / (1.0 + (-v).exp());
        for k in 0..hsz {
            let iv = sigmoid(z[k]);
            let fv = sigmoid(z[hsz + k]);
            let gv = z[2 * hsz + k].tanh();
            let ov = sigmoid(z[3 * hsz + k]);
            let cv = fv * c[k] + iv * gv;
            c[k] = cv;
            h[k] = ov * cv.tanh();
        }
    }

    /// Alloc-free inference over a strided window view: timestep `t`
    /// reads `data[t*stride .. t*stride + in_dim]`, so a plain scalar
    /// window (`stride == in_dim == 1`), overlapping patches
    /// (`stride == 1`), and a flat time-major feature sequence
    /// (`stride == in_dim`) all avoid materializing `Vec<Vec<f64>>`
    /// inputs. Returns the final hidden state, bitwise-identical to
    /// [`Lstm::forward_inference`] on the equivalent sequence.
    pub fn forward_inference_cached<'a>(
        &self,
        data: &[f64],
        stride: usize,
        cache: &'a mut LstmInferenceCache,
    ) -> &'a [f64] {
        let steps = self.cached_steps(data.len(), stride);
        let hsz = self.hidden;
        cache.z.resize(4 * hsz, 0.0);
        cache.h.resize(hsz, 0.0);
        cache.c.resize(hsz, 0.0);
        cache.h.fill(0.0);
        cache.c.fill(0.0);
        for t in 0..steps {
            self.step_cached(&data[t * stride..t * stride + self.in_dim], cache);
        }
        &cache.h
    }

    /// Like [`Lstm::forward_inference_cached`] but returns the *full*
    /// hidden sequence as a flat `steps x hidden` slice (stacked-LSTM
    /// serving, where the next layer consumes every hidden state).
    pub fn forward_inference_cached_full<'a>(
        &self,
        data: &[f64],
        stride: usize,
        cache: &'a mut LstmInferenceCache,
    ) -> &'a [f64] {
        let steps = self.cached_steps(data.len(), stride);
        let hsz = self.hidden;
        cache.z.resize(4 * hsz, 0.0);
        cache.h.resize(hsz, 0.0);
        cache.c.resize(hsz, 0.0);
        cache.h.fill(0.0);
        cache.c.fill(0.0);
        cache.hs.resize(steps * hsz, 0.0);
        for t in 0..steps {
            self.step_cached(&data[t * stride..t * stride + self.in_dim], cache);
            cache.hs[t * hsz..(t + 1) * hsz].copy_from_slice(&cache.h);
        }
        &cache.hs[..steps * hsz]
    }
}

impl Network for Lstm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.u, &mut self.grad_u);
        f(&mut self.b, &mut self.grad_b);
    }
}

/// A bidirectional LSTM: one LSTM reads the sequence forward, another reads
/// it reversed; the output is the concatenation of both final hidden states
/// (length `2 * hidden`).
#[derive(Debug, Clone)]
pub struct BiLstm {
    forward: Lstm,
    backward: Lstm,
}

impl BiLstm {
    /// Creates a bidirectional LSTM; each direction has `hidden` units.
    pub fn new(rng: &mut DetRng, in_dim: usize, hidden: usize) -> Self {
        BiLstm {
            forward: Lstm::new(rng, in_dim, hidden),
            backward: Lstm::new(rng, in_dim, hidden),
        }
    }

    /// Output dimension (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.forward.hidden_dim()
    }

    /// Training forward pass; returns `[h_fwd ‖ h_bwd]`.
    pub fn forward_sequence(&mut self, inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut out = self.forward.forward_sequence(inputs);
        let reversed: Vec<Vec<f64>> = inputs.iter().rev().cloned().collect();
        out.extend(self.backward.forward_sequence(&reversed));
        out
    }

    /// Inference pass.
    pub fn forward_inference(&self, inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut out = self.forward.forward_inference(inputs);
        let reversed: Vec<Vec<f64>> = inputs.iter().rev().cloned().collect();
        out.extend(self.backward.forward_inference(&reversed));
        out
    }

    /// BPTT from a gradient on the concatenated output; returns per-input
    /// gradients in forward order.
    pub fn backward_last(&mut self, grad_out: &[f64]) -> Vec<Vec<f64>> {
        let h = self.forward.hidden_dim();
        debug_assert_eq!(grad_out.len(), 2 * h);
        let mut grads = self.forward.backward_last(&grad_out[..h]);
        let bwd_grads = self.backward.backward_last(&grad_out[h..]);
        // bwd_grads are in reversed-input order; fold them back.
        for (fwd_idx, g) in bwd_grads.into_iter().rev().enumerate() {
            for (a, b) in grads[fwd_idx].iter_mut().zip(g.iter()) {
                *a += b;
            }
        }
        grads
    }

    /// Batched forward pass: stages the reversed windows for the backward
    /// direction from the forward direction's inputs, runs both
    /// directions' stacked-gate passes, and concatenates the final hidden
    /// states into the workspace output (`B x 2H`, sample-major).
    /// Bitwise-identical to per-sample [`BiLstm::forward_sequence`].
    pub fn forward_batch(&self, ws: &mut BiRecurrentWorkspace) {
        let (b, t_steps, ind) = (ws.fwd.batch, ws.fwd.steps, ws.fwd.in_dim);
        let h = self.forward.hidden_dim();
        let block = b * ind;
        for t in 0..t_steps {
            ws.bwd.x[t * block..(t + 1) * block]
                .copy_from_slice(&ws.fwd.x[(t_steps - 1 - t) * block..(t_steps - t) * block]);
        }
        self.forward.forward_batch(&mut ws.fwd);
        self.backward.forward_batch(&mut ws.bwd);
        let (hf, hb) = (ws.fwd.h_last(), ws.bwd.h_last());
        for s in 0..b {
            ws.concat[s * 2 * h..s * 2 * h + h].copy_from_slice(&hf[s * h..(s + 1) * h]);
            ws.concat[s * 2 * h + h..(s + 1) * 2 * h].copy_from_slice(&hb[s * h..(s + 1) * h]);
        }
    }

    /// Batched BPTT from gradients on the concatenated outputs
    /// (`grad_out` is `B x 2H`, sample-major). Splits the per-sample
    /// halves and backpropagates each direction. Input gradients are not
    /// folded across directions — the batched training wiring uses the
    /// recurrent layer as the first layer, so callers pass
    /// `want_input_grads = false`.
    ///
    /// # Panics
    /// Panics when called before [`BiLstm::forward_batch`].
    pub fn backward_batch_last(
        &mut self,
        grad_out: &[f64],
        ws: &mut BiRecurrentWorkspace,
        want_input_grads: bool,
    ) {
        let h = self.forward.hidden_dim();
        let b = ws.fwd.batch;
        debug_assert_eq!(grad_out.len(), b * 2 * h, "BiLstm::backward_batch_last");
        for s in 0..b {
            ws.gfwd[s * h..(s + 1) * h].copy_from_slice(&grad_out[s * 2 * h..s * 2 * h + h]);
            ws.gbwd[s * h..(s + 1) * h].copy_from_slice(&grad_out[s * 2 * h + h..(s + 1) * 2 * h]);
        }
        let BiRecurrentWorkspace {
            fwd,
            bwd,
            gfwd,
            gbwd,
            ..
        } = ws;
        self.forward
            .backward_batch_last(gfwd, fwd, want_input_grads);
        self.backward
            .backward_batch_last(gbwd, bwd, want_input_grads);
    }

    /// Alloc-free single-window inference; see
    /// [`Lstm::forward_inference_cached`] for the strided-view contract.
    /// Returns `[h_fwd ‖ h_bwd]`, bitwise-identical to
    /// [`BiLstm::forward_inference`] on the equivalent sequence.
    pub fn forward_inference_cached<'a>(
        &self,
        data: &[f64],
        stride: usize,
        cache: &'a mut BiLstmInferenceCache,
    ) -> &'a [f64] {
        let h = self.forward.hidden_dim();
        let ind = self.forward.in_dim();
        let steps = self.forward.cached_steps(data.len(), stride);
        cache.rev.resize(steps * ind, 0.0);
        for t in 0..steps {
            cache.rev[t * ind..(t + 1) * ind]
                .copy_from_slice(&data[(steps - 1 - t) * stride..(steps - 1 - t) * stride + ind]);
        }
        cache.out.resize(2 * h, 0.0);
        let hf = self
            .forward
            .forward_inference_cached(data, stride, &mut cache.fwd);
        cache.out[..h].copy_from_slice(hf);
        let hb = self
            .backward
            .forward_inference_cached(&cache.rev, ind, &mut cache.bwd);
        cache.out[h..].copy_from_slice(hb);
        &cache.out
    }
}

/// Paired [`RecurrentWorkspace`]s (one per direction) plus the
/// concatenation and gradient-split scratch for the batched [`BiLstm`]
/// path. Callers stage inputs once (forward order); the reversed copies
/// are made inside [`BiLstm::forward_batch`].
#[derive(Debug, Clone, Default)]
pub struct BiRecurrentWorkspace {
    fwd: RecurrentWorkspace,
    bwd: RecurrentWorkspace,
    /// Concatenated final hidden states, `B x 2H`.
    concat: Vec<f64>,
    /// Per-direction gradient halves, `B x H` each.
    gfwd: Vec<f64>,
    gbwd: Vec<f64>,
}

impl BiRecurrentWorkspace {
    /// Creates an empty workspace; buffers are sized on [`stage`].
    ///
    /// [`stage`]: BiRecurrentWorkspace::stage
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes both directions plus the concat/split scratch.
    pub fn stage(&mut self, batch: usize, steps: usize, in_dim: usize, hidden: usize) {
        self.fwd.stage(batch, steps, in_dim, hidden);
        self.bwd.stage(batch, steps, in_dim, hidden);
        self.concat.resize(batch * 2 * hidden, 0.0);
        self.gfwd.resize(batch * hidden, 0.0);
        self.gbwd.resize(batch * hidden, 0.0);
    }

    /// Copies one sample's input vector for timestep `t` (forward order).
    pub fn set_input(&mut self, s: usize, t: usize, x: &[f64]) {
        self.fwd.set_input(s, t, x);
    }

    /// Concatenated final hidden states after [`BiLstm::forward_batch`]
    /// (`B x 2H`, sample-major).
    pub fn output(&self) -> &[f64] {
        &self.concat
    }
}

impl Network for BiLstm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.forward.visit_params(f);
        self.backward.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: &[f64]) -> Vec<Vec<f64>> {
        vals.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn forward_matches_inference() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut lstm = Lstm::new(&mut rng, 1, 4);
        let inputs = seq(&[0.1, -0.2, 0.5]);
        let a = lstm.forward_sequence(&inputs);
        let b = lstm.forward_inference(&inputs);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn output_depends_on_order() {
        let mut rng = DetRng::seed_from_u64(2);
        let lstm = Lstm::new(&mut rng, 1, 3);
        let a = lstm.forward_inference(&seq(&[1.0, 0.0, -1.0]));
        let b = lstm.forward_inference(&seq(&[-1.0, 0.0, 1.0]));
        assert_ne!(a, b, "LSTM must be order-sensitive");
    }

    #[test]
    fn bptt_gradcheck_weights() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        let inputs = vec![vec![0.3, -0.1], vec![0.7, 0.2], vec![-0.5, 0.4]];
        // Loss = sum of final hidden state.
        lstm.forward_sequence(&inputs);
        let ones = vec![1.0; 3];
        lstm.backward_last(&ones);

        let flat = lstm.flat_params();
        let mut grads = Vec::new();
        lstm.visit_params(&mut |_p, g| grads.extend_from_slice(g));
        let h = 1e-6;
        let loss = |l: &Lstm| -> f64 { l.forward_inference(&inputs).iter().sum() };
        for &idx in &[0usize, 7, 20, flat.len() - 2, flat.len() - 1] {
            let mut up = flat.clone();
            up[idx] += h;
            let mut dn = flat.clone();
            dn[idx] -= h;
            lstm.load_flat_params(&up);
            let lu = loss(&lstm);
            lstm.load_flat_params(&dn);
            let ld = loss(&lstm);
            lstm.load_flat_params(&flat);
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - grads[idx]).abs() < 1e-5,
                "param {idx}: {numeric} vs {}",
                grads[idx]
            );
        }
    }

    #[test]
    fn bptt_gradcheck_inputs() {
        let mut rng = DetRng::seed_from_u64(4);
        let mut lstm = Lstm::new(&mut rng, 1, 2);
        let inputs = seq(&[0.5, -0.3, 0.8, 0.1]);
        lstm.forward_sequence(&inputs);
        let gin = lstm.backward_last(&[1.0, 1.0]);
        let h = 1e-6;
        for t in 0..inputs.len() {
            let mut up = inputs.clone();
            up[t][0] += h;
            let mut dn = inputs.clone();
            dn[t][0] -= h;
            let lu: f64 = lstm.forward_inference(&up).iter().sum();
            let ld: f64 = lstm.forward_inference(&dn).iter().sum();
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - gin[t][0]).abs() < 1e-5,
                "input {t}: {numeric} vs {}",
                gin[t][0]
            );
        }
    }

    #[test]
    #[should_panic(expected = "before forward_sequence")]
    fn backward_before_forward_panics() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut lstm = Lstm::new(&mut rng, 1, 2);
        lstm.backward_last(&[1.0, 1.0]);
    }

    #[test]
    fn bilstm_concatenates_directions() {
        let mut rng = DetRng::seed_from_u64(6);
        let mut bi = BiLstm::new(&mut rng, 1, 3);
        let out = bi.forward_sequence(&seq(&[0.1, 0.2, 0.3]));
        assert_eq!(out.len(), 6);
        assert_eq!(bi.out_dim(), 6);
    }

    #[test]
    fn bilstm_gradcheck_inputs() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut bi = BiLstm::new(&mut rng, 1, 2);
        let inputs = seq(&[0.4, -0.6, 0.2]);
        bi.forward_sequence(&inputs);
        let gin = bi.backward_last(&[1.0; 4]);
        let h = 1e-6;
        for t in 0..inputs.len() {
            let mut up = inputs.clone();
            up[t][0] += h;
            let mut dn = inputs.clone();
            dn[t][0] -= h;
            let lu: f64 = bi.forward_inference(&up).iter().sum();
            let ld: f64 = bi.forward_inference(&dn).iter().sum();
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - gin[t][0]).abs() < 1e-5,
                "input {t}: {numeric} vs {}",
                gin[t][0]
            );
        }
    }

    #[test]
    fn full_sequence_matches_stepwise_last() {
        let mut rng = DetRng::seed_from_u64(10);
        let mut lstm = Lstm::new(&mut rng, 1, 3);
        let inputs = seq(&[0.2, -0.4, 0.9]);
        let all = lstm.forward_sequence_full(&inputs);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2], lstm.forward_inference(&inputs));
        assert_eq!(all, lstm.forward_inference_full(&inputs));
    }

    #[test]
    fn backward_full_gradcheck_inputs() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut lstm = Lstm::new(&mut rng, 1, 2);
        let inputs = seq(&[0.3, -0.5, 0.7]);
        // Loss = sum over ALL hidden states of all components.
        lstm.forward_sequence_full(&inputs);
        let grads = vec![vec![1.0; 2]; 3];
        let gin = lstm.backward_full(&grads);
        let loss = |l: &Lstm, inp: &[Vec<f64>]| -> f64 {
            l.forward_inference_full(inp)
                .iter()
                .flat_map(|h| h.iter())
                .sum()
        };
        let h = 1e-6;
        for t in 0..inputs.len() {
            let mut up = inputs.clone();
            up[t][0] += h;
            let mut dn = inputs.clone();
            dn[t][0] -= h;
            let numeric = (loss(&lstm, &up) - loss(&lstm, &dn)) / (2.0 * h);
            assert!(
                (numeric - gin[t][0]).abs() < 1e-5,
                "input {t}: {numeric} vs {}",
                gin[t][0]
            );
        }
    }

    fn windows(n: usize, t: usize, in_dim: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
        (0..n)
            .map(|s| {
                (0..t)
                    .map(|tt| {
                        (0..in_dim)
                            .map(|i| {
                                let q = (s * 31 + tt * 7 + i) as u64;
                                let v = (q.wrapping_mul(6364136223846793005).wrapping_add(seed)
                                    >> 40) as f64
                                    / 1e6
                                    - 4.0;
                                if q.is_multiple_of(5) {
                                    0.0
                                } else {
                                    v
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_batch_is_bitwise_equal_to_per_sequence() {
        let mut rng = DetRng::seed_from_u64(20);
        let mut lstm = Lstm::new(&mut rng, 2, 5);
        let wins = windows(3, 4, 2, 99);
        let mut ws = RecurrentWorkspace::new();
        ws.stage(wins.len(), 4, 2, 5);
        for (s, win) in wins.iter().enumerate() {
            for (t, x) in win.iter().enumerate() {
                ws.set_input(s, t, x);
            }
        }
        lstm.forward_batch(&mut ws);
        for (s, win) in wins.iter().enumerate() {
            let h = lstm.forward_sequence(win);
            assert_eq!(&ws.h_last()[s * 5..(s + 1) * 5], &h[..], "sample {s}");
        }
    }

    #[test]
    fn backward_batch_accumulates_same_grads_as_per_sequence_loop() {
        let mut rng = DetRng::seed_from_u64(21);
        let mut batched = Lstm::new(&mut rng, 2, 5);
        let mut reference = batched.clone();
        let wins = windows(3, 4, 2, 77);
        let grad: Vec<Vec<f64>> = (0..wins.len())
            .map(|s| {
                (0..5)
                    .map(|k| 0.1 * (s as f64 + 1.0) - 0.03 * k as f64)
                    .collect()
            })
            .collect();

        let mut ws = RecurrentWorkspace::new();
        ws.stage(wins.len(), 4, 2, 5);
        for (s, win) in wins.iter().enumerate() {
            for (t, x) in win.iter().enumerate() {
                ws.set_input(s, t, x);
            }
        }
        batched.forward_batch(&mut ws);
        let flat_grad: Vec<f64> = grad.iter().flatten().copied().collect();
        batched.backward_batch_last(&flat_grad, &mut ws, true);

        let mut ref_input_grads = Vec::new();
        for (s, win) in wins.iter().enumerate() {
            reference.forward_sequence(win);
            ref_input_grads.push(reference.backward_last(&grad[s]));
        }
        assert_eq!(batched.grad_w, reference.grad_w);
        assert_eq!(batched.grad_u, reference.grad_u);
        assert_eq!(batched.grad_b, reference.grad_b);
        for (s, gin) in ref_input_grads.iter().enumerate() {
            for (t, g) in gin.iter().enumerate() {
                assert_eq!(
                    &ws.grad_x(t)[s * 2..(s + 1) * 2],
                    &g[..],
                    "sample {s} step {t}"
                );
            }
        }
    }

    #[test]
    fn cached_inference_is_bitwise_equal_to_vec_path() {
        let mut rng = DetRng::seed_from_u64(22);
        let lstm = Lstm::new(&mut rng, 1, 4);
        let data = [0.3, -0.7, 0.0, 0.9, 0.2];
        let inputs = seq(&data);
        let mut cache = LstmInferenceCache::default();
        let h = lstm.forward_inference_cached(&data, 1, &mut cache);
        assert_eq!(h, &lstm.forward_inference(&inputs)[..]);
        let hs = lstm.forward_inference_cached_full(&data, 1, &mut cache);
        let expect: Vec<f64> = lstm
            .forward_inference_full(&inputs)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(hs, &expect[..]);
    }

    #[test]
    fn cached_inference_strided_patches_match_vec_path() {
        let mut rng = DetRng::seed_from_u64(23);
        let lstm = Lstm::new(&mut rng, 3, 4);
        let data = [0.3, -0.7, 0.0, 0.9, 0.2, -0.4, 0.6];
        // stride 1 with in_dim 3 ⇒ overlapping patches (Conv-LSTM view).
        let inputs: Vec<Vec<f64>> = (0..5).map(|t| data[t..t + 3].to_vec()).collect();
        let mut cache = LstmInferenceCache::default();
        let h = lstm.forward_inference_cached(&data, 1, &mut cache);
        assert_eq!(h, &lstm.forward_inference(&inputs)[..]);
    }

    #[test]
    fn bilstm_batched_matches_per_sequence_bitwise() {
        let mut rng = DetRng::seed_from_u64(24);
        let mut batched = BiLstm::new(&mut rng, 1, 3);
        let mut reference = batched.clone();
        let wins = windows(4, 5, 1, 55);
        let mut ws = BiRecurrentWorkspace::new();
        ws.stage(wins.len(), 5, 1, 3);
        for (s, win) in wins.iter().enumerate() {
            for (t, x) in win.iter().enumerate() {
                ws.set_input(s, t, x);
            }
        }
        batched.forward_batch(&mut ws);
        let grad: Vec<f64> = (0..wins.len() * 6).map(|i| 0.01 * i as f64 - 0.1).collect();
        batched.backward_batch_last(&grad, &mut ws, false);

        for (s, win) in wins.iter().enumerate() {
            let out = reference.forward_sequence(win);
            assert_eq!(&ws.output()[s * 6..(s + 1) * 6], &out[..], "sample {s}");
            reference.backward_last(&grad[s * 6..(s + 1) * 6]);
        }
        let flat = |n: &mut dyn Network| {
            let mut g = Vec::new();
            n.visit_params(&mut |_p, gr| g.extend_from_slice(gr));
            g
        };
        assert_eq!(flat(&mut batched), flat(&mut reference));

        let mut cache = BiLstmInferenceCache::default();
        let data: Vec<f64> = wins[1].iter().map(|x| x[0]).collect();
        let h = batched.forward_inference_cached(&data, 1, &mut cache);
        assert_eq!(h, &batched.forward_inference(&wins[1])[..]);
    }

    #[test]
    #[should_panic(expected = "before forward_batch")]
    fn backward_batch_before_forward_panics() {
        let mut rng = DetRng::seed_from_u64(25);
        let mut lstm = Lstm::new(&mut rng, 1, 2);
        let mut ws = RecurrentWorkspace::new();
        ws.stage(1, 3, 1, 2);
        lstm.backward_batch_last(&[0.5, 0.5], &mut ws, false);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = DetRng::seed_from_u64(8);
        let lstm = Lstm::new(&mut rng, 1, 4);
        assert!(lstm.b[4..8].iter().all(|&v| v == 1.0));
        assert!(lstm.b[..4].iter().all(|&v| v == 0.0));
    }
}
