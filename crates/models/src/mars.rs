//! Multivariate adaptive regression splines (simplified forward pass).

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_linalg::{ridge, Matrix};

/// A hinge basis function `max(0, ±(x_j - t))`.
#[derive(Debug, Clone, Copy)]
struct Hinge {
    feature: usize,
    knot: f64,
    /// `+1` for `max(0, x - t)`, `-1` for `max(0, t - x)`.
    sign: f64,
}

impl Hinge {
    fn eval(&self, x: &[f64]) -> f64 {
        (self.sign * (x[self.feature] - self.knot)).max(0.0)
    }
}

/// Forward-stagewise MARS: greedily adds reflected hinge pairs that most
/// reduce residual SSE, then refits all coefficients jointly by ridge
/// least squares. (The backward pruning pass of full MARS is omitted; the
/// ridge refit plays the same overfitting-control role at this scale.)
#[derive(Debug, Clone)]
pub struct MarsRegressor {
    max_terms: usize,
    knots_per_feature: usize,
    basis: Vec<Hinge>,
    /// `[intercept, coef per basis]`.
    coef: Vec<f64>,
}

impl MarsRegressor {
    /// Creates an unfitted MARS model adding at most `max_terms` hinge
    /// functions.
    pub fn new(max_terms: usize) -> Self {
        MarsRegressor {
            max_terms: max_terms.max(2),
            knots_per_feature: 7,
            basis: Vec::new(),
            coef: Vec::new(),
        }
    }

    /// Number of selected hinge functions.
    pub fn n_terms(&self) -> usize {
        self.basis.len()
    }

    fn design(&self, inputs: &[Vec<f64>]) -> Result<Matrix, ModelError> {
        let rows: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| {
                let mut r = Vec::with_capacity(self.basis.len() + 1);
                r.push(1.0);
                r.extend(self.basis.iter().map(|h| h.eval(x)));
                r
            })
            .collect();
        Matrix::from_rows(&rows).map_err(|e| ModelError::Numerical {
            context: format!("MARS design matrix: {e}"),
        })
    }
}

impl TabularModel for MarsRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.len() < 4 || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 4,
                got: inputs.len(),
            });
        }
        let dim = inputs[0].len();
        self.basis.clear();

        // Candidate knots: per-feature quantiles of the training inputs.
        let mut candidates: Vec<Hinge> = Vec::new();
        for feature in 0..dim {
            let mut vals: Vec<f64> = inputs.iter().map(|x| x[feature]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            for q in 1..=self.knots_per_feature {
                let idx = q * (vals.len() - 1) / (self.knots_per_feature + 1);
                let knot = vals[idx];
                candidates.push(Hinge {
                    feature,
                    knot,
                    sign: 1.0,
                });
                candidates.push(Hinge {
                    feature,
                    knot,
                    sign: -1.0,
                });
            }
        }

        // Greedy forward selection on residual SSE.
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut residuals: Vec<f64> = targets.iter().map(|t| t - mean).collect();
        while self.basis.len() < self.max_terms {
            let mut best: Option<(usize, f64, f64)> = None; // (cand idx, beta, sse)
            for (ci, h) in candidates.iter().enumerate() {
                // Univariate LS fit of residual on this hinge.
                let mut num = 0.0;
                let mut den = 0.0;
                for (x, &r) in inputs.iter().zip(residuals.iter()) {
                    let v = h.eval(x);
                    num += v * r;
                    den += v * v;
                }
                if den < 1e-12 {
                    continue;
                }
                let beta = num / den;
                let sse: f64 = inputs
                    .iter()
                    .zip(residuals.iter())
                    .map(|(x, &r)| {
                        let e = r - beta * h.eval(x);
                        e * e
                    })
                    .sum();
                if best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((ci, beta, sse));
                }
            }
            let current_sse: f64 = residuals.iter().map(|r| r * r).sum();
            match best {
                Some((ci, beta, sse)) if sse < current_sse * (1.0 - 1e-6) => {
                    let h = candidates[ci];
                    for (x, r) in inputs.iter().zip(residuals.iter_mut()) {
                        *r -= beta * h.eval(x);
                    }
                    self.basis.push(h);
                }
                _ => break,
            }
        }

        // Joint ridge refit of all coefficients.
        let x = self.design(inputs)?;
        self.coef = ridge(&x, targets, 1e-6).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        if self.coef.is_empty() {
            return 0.0;
        }
        self.coef[0]
            + self
                .basis
                .iter()
                .zip(self.coef[1..].iter())
                .map(|(h, c)| c * h.eval(input))
                .sum::<f64>()
    }
}

/// A MARS forecaster over embedded windows (paper family **MARS**).
pub fn mars(k: usize, max_terms: usize) -> Windowed<MarsRegressor> {
    Windowed::new(
        format!("MARS(t={max_terms})"),
        k,
        MarsRegressor::new(max_terms),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    #[test]
    fn fits_piecewise_linear_function() {
        // y = max(0, x - 0.5): literally one hinge.
        let inputs: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 40.0 - 1.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| (x[0] - 0.5).max(0.0)).collect();
        let mut m = MarsRegressor::new(6);
        m.fit(&inputs, &targets).unwrap();
        for (x, t) in inputs.iter().zip(targets.iter()).step_by(13) {
            assert!(
                (m.predict(x) - t).abs() < 0.06,
                "at {x:?}: {}",
                m.predict(x)
            );
        }
    }

    #[test]
    fn term_budget_is_respected() {
        let inputs: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i as f64 / 10.0).sin(), (i as f64 / 7.0).cos()])
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|x| x[0] * x[1]).collect();
        let mut m = MarsRegressor::new(4);
        m.fit(&inputs, &targets).unwrap();
        assert!(m.n_terms() <= 4);
    }

    #[test]
    fn constant_targets_stop_early() {
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let targets = vec![2.0; 30];
        let mut m = MarsRegressor::new(10);
        m.fit(&inputs, &targets).unwrap();
        assert_eq!(m.n_terms(), 0);
        assert!((m.predict(&[100.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mars_forecaster_on_seasonal_series() {
        let series: Vec<f64> = (0..200)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin() * 4.0 + 30.0)
            .collect();
        let mut m = mars(5, 12);
        m.fit(&series).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 16.0).sin() * 4.0 + 30.0;
        assert!((m.predict_next(&series) - truth).abs() < 1.5);
    }

    #[test]
    fn too_few_samples_is_error() {
        let mut m = MarsRegressor::new(3);
        assert!(m.fit(&[vec![1.0]], &[1.0]).is_err());
    }
}
