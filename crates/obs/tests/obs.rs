//! Integration tests for the telemetry crate: histogram quantile
//! accuracy on known distributions, metric thread-safety under
//! contention, and JSONL round-trips.

use eadrl_obs::{Event, EventKind, Histogram, Level, Registry, Value};
use std::sync::Arc;
use std::thread;

fn rel_err(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs() / truth.abs().max(1e-12)
}

#[test]
fn histogram_quantiles_uniform_distribution() {
    // 10_000 evenly spaced samples in (0, 1]: the q-quantile is ~q.
    let h = Histogram::new();
    for i in 1..=10_000 {
        h.record(i as f64 / 10_000.0);
    }
    assert_eq!(h.count(), 10_000);
    for (q, truth) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
        let est = h.quantile(q);
        assert!(
            rel_err(est, truth) < 0.05,
            "p{} estimate {est} too far from {truth}",
            (q * 100.0) as u32
        );
    }
    assert!(rel_err(h.mean(), 0.50005) < 1e-9);
    assert_eq!(h.min(), 1.0 / 10_000.0);
    assert_eq!(h.max(), 1.0);
}

#[test]
fn histogram_quantiles_wide_dynamic_range() {
    // Powers of two across 40 octaves — one sample per bucket region.
    let h = Histogram::new();
    for e in -20..=20 {
        h.record((e as f64).exp2());
    }
    let p50 = h.quantile(0.5);
    assert!(
        rel_err(p50, 1.0) < 0.05,
        "median of 2^-20..2^20 is 2^0, got {p50}"
    );
    let p0 = h.quantile(0.0);
    assert!(p0 >= h.min() * 0.95);
    let p100 = h.quantile(1.0);
    assert!(rel_err(p100, (20f64).exp2()) < 0.05);
}

#[test]
fn histogram_heavy_tail_p99() {
    // 99% small latencies around 100us, 1% slow outliers around 50_000us.
    let h = Histogram::new();
    for i in 0..9_900 {
        h.record(90.0 + (i % 21) as f64); // 90..110
    }
    for _ in 0..100 {
        h.record(50_000.0);
    }
    let p50 = h.quantile(0.5);
    assert!((80.0..130.0).contains(&p50), "p50 {p50} outside the body");
    let p99 = h.quantile(0.995);
    assert!(p99 > 10_000.0, "p99.5 {p99} must surface the outlier tail");
}

#[test]
fn metrics_are_thread_safe_under_contention() {
    let registry = Arc::new(Registry::new());
    const THREADS: usize = 8;
    const ITERS: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let counter = registry.counter("contended.counter");
                let gauge = registry.gauge("contended.gauge");
                let hist = registry.histogram("contended.hist");
                for i in 0..ITERS {
                    counter.inc();
                    gauge.set(t as f64);
                    hist.record((i % 100) as f64 + 1.0);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(
        registry.counter("contended.counter").get(),
        THREADS as u64 * ITERS
    );
    let gauge = registry.gauge("contended.gauge").get();
    assert!((0.0..THREADS as f64).contains(&gauge));
    let hist = registry.histogram("contended.hist");
    assert_eq!(hist.count(), THREADS as u64 * ITERS);
    assert_eq!(hist.min(), 1.0);
    assert_eq!(hist.max(), 100.0);
    // Sum is exact: each thread contributes sum(1..=100) * 100 per 10k iters.
    let expected: f64 = (THREADS as u64 * ITERS / 100) as f64 * (1..=100).sum::<u64>() as f64;
    assert!((hist.sum() - expected).abs() < 1e-6 * expected);
}

#[test]
fn jsonl_round_trip_preserves_events() {
    let events = vec![
        Event::new("ddpg.episode", EventKind::Event, Level::Info)
            .field("total_reward", -3.25)
            .field("steps", 40u64)
            .field("empty", false),
        Event::new("eadrl.fit/ddpg.episode", EventKind::Span, Level::Debug)
            .field("duration_us", 1234u64),
        Event::new("eadrl.weights", EventKind::Event, Level::Debug)
            .field("weights", vec![0.25, 0.5, 0.25])
            .field("entropy", 1.0397207708399179)
            .field("combiner", "ea-drl"),
        Event::new("edge.cases", EventKind::Metric, Level::Warn)
            .field("nan", f64::NAN)
            .field("quote", "a \"quoted\" value\nwith newline")
            .field("neg", -17i64),
    ];
    for original in events {
        let line = original.to_json_line();
        let parsed = Event::from_json_line(&line)
            .unwrap_or_else(|e| panic!("round-trip failed for {line}: {e}"));
        // NaN serializes as null and comes back as a string-less mismatch;
        // handle the edge-case event separately below.
        if original.name == "edge.cases" {
            assert_eq!(parsed.name, original.name);
            assert_eq!(parsed.get("neg"), Some(&Value::F64(-17.0)));
            assert_eq!(
                parsed.get("quote"),
                Some(&Value::Str("a \"quoted\" value\nwith newline".to_string()))
            );
        } else {
            assert!(
                original.semantically_eq(&parsed),
                "round-trip mismatch:\n  orig: {original:?}\n  back: {parsed:?}"
            );
        }
    }
}

#[test]
fn jsonl_lines_are_single_lines() {
    let e = Event::new("multi", EventKind::Event, Level::Info).field("s", "line1\nline2");
    let line = e.to_json_line();
    assert!(!line.contains('\n'), "newlines must be escaped: {line}");
}
