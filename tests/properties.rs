//! Property-based tests over cross-crate invariants.

use eadrl::core::baselines::{
    Clus, Demsc, Ewa, FixedShare, MlPol, Ogd, SlidingWindowEnsemble, StaticEnsemble, TopSel,
};
use eadrl::core::env::normalize_window;
use eadrl::core::experiment::sanitize_predictions;
use eadrl::core::Combiner;
use eadrl::linalg::vector::{normalize_simplex, softmax};
use eadrl::rl::ActionSquash;
use eadrl::timeseries::metrics::{mae, rmse};
use eadrl::timeseries::transform::{difference, undifference, Scaler, ZScoreScaler};
use eadrl_ptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_linear_combiner_emits_simplex_weights(
        stream in prop::collection::vec(
            (finite_vec(3..4), -100.0f64..100.0), 1..40),
    ) {
        let combiners: Vec<Box<dyn Combiner>> = vec![
            Box::new(StaticEnsemble::new()),
            Box::new(SlidingWindowEnsemble::new(5)),
            Box::new(Ewa::new(0.5)),
            Box::new(FixedShare::new(0.5, 0.05)),
            Box::new(Ogd::new(0.5)),
            Box::new(MlPol::new()),
            Box::new(TopSel::new(5, 0.5)),
            Box::new(Clus::new(5, 2, 0)),
            Box::new(Demsc::new(5, 0.5, 2, 0)),
        ];
        for mut c in combiners {
            for (preds, actual) in &stream {
                c.observe(preds, *actual);
                let w = c.weights(3);
                prop_assert_eq!(w.len(), 3);
                let sum: f64 = w.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6,
                    "{}: weights sum to {sum}", c.name());
                prop_assert!(w.iter().all(|&x| x >= -1e-9),
                    "{}: negative weight", c.name());
            }
        }
    }

    #[test]
    fn squash_outputs_are_valid_simplex_points(
        raw in finite_vec(1..20),
        scale in 0.5f64..10.0,
    ) {
        for squash in [ActionSquash::Softmax, ActionSquash::BoundedSoftmax { scale }] {
            let y = squash.forward(&raw);
            prop_assert_eq!(y.len(), raw.len());
            prop_assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn normalize_window_is_shift_and_scale_invariant(
        window in prop::collection::vec(-1e3f64..1e3, 2..20),
        shift in -1e3f64..1e3,
        scale in 0.1f64..100.0,
    ) {
        let base = normalize_window(&window);
        let transformed: Vec<f64> = window.iter().map(|v| v * scale + shift).collect();
        let normed = normalize_window(&transformed);
        for (a, b) in base.iter().zip(normed.iter()) {
            // Invariance only holds when the window is not (near-)constant.
            let spread = window.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - window.iter().cloned().fold(f64::INFINITY, f64::min);
            if spread > 1e-6 {
                prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn sanitize_predictions_bounds_everything(
        mut preds in prop::collection::vec(finite_vec(1..6), 1..20),
        reference in prop::collection::vec(-1e3f64..1e3, 2..50),
    ) {
        // Make rows rectangular.
        let m = preds.iter().map(Vec::len).min().unwrap_or(1);
        for row in preds.iter_mut() {
            row.truncate(m);
        }
        sanitize_predictions(&mut preds, &reference);
        let lo = reference.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = reference.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = (hi - lo).max(1e-9);
        for row in &preds {
            for &v in row {
                prop_assert!(v.is_finite());
                prop_assert!(v >= lo - 3.0 * range - 1e-9);
                prop_assert!(v <= hi + 3.0 * range + 1e-9);
            }
        }
    }

    #[test]
    fn zscore_scaler_roundtrips(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let scaler = ZScoreScaler::fit(&values);
        for &v in &values {
            let back = scaler.inverse(scaler.transform(v));
            prop_assert!((back - v).abs() < 1e-6 * v.abs().max(1.0));
        }
    }

    #[test]
    fn difference_roundtrips(
        values in prop::collection::vec(-1e4f64..1e4, 3..60),
        d in 1usize..3,
    ) {
        prop_assume!(values.len() > d);
        let diffed = difference(&values, d);
        let rebuilt = undifference(&values[..d], &diffed, d);
        prop_assert_eq!(rebuilt.len(), values.len() - d);
        for (a, b) in rebuilt.iter().zip(values[d..].iter()) {
            prop_assert!((a - b).abs() < 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn rmse_dominates_mae(
        pairs in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 1..60),
    ) {
        let (actual, predicted): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let r = rmse(&actual, &predicted);
        let m = mae(&actual, &predicted);
        // Jensen: RMSE >= MAE always.
        prop_assert!(r >= m - 1e-9, "rmse {r} < mae {m}");
    }

    #[test]
    fn softmax_and_simplex_normalization_agree_on_extremes(
        mut values in prop::collection::vec(0.0f64..1e6, 1..30),
    ) {
        let sm = softmax(&values);
        prop_assert!((sm.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        normalize_simplex(&mut values);
        prop_assert!((values.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
