//! Multi-horizon analysis of Algorithm 1: how fast does the recursive
//! `N_f`-step forecast (predictions fed back as inputs) degrade with the
//! horizon, for EA-DRL and for the uniform static ensemble?
//!
//! Not a table in the paper — Algorithm 1 is its multi-step procedure but
//! the evaluation is one-step — so this bin characterizes the behaviour
//! the paper's deployment story implies.
//!
//! ```text
//! cargo run -p eadrl-bench --release --bin horizons [-- --quick]
//! ```

use eadrl_bench::{build_pool, eadrl_config, Scale};
use eadrl_core::experiment::multi_horizon_rmse;
use eadrl_core::EaDrl;
use eadrl_datasets::{generate, DatasetId};
use eadrl_eval::render_table;

fn main() {
    let scale = Scale::from_args();
    let horizons = [1usize, 2, 4, 8, 16];
    let datasets = [
        DatasetId::BikeRentals,
        DatasetId::TaxiDemand1,
        DatasetId::EnergyTempOut,
        DatasetId::StockCac,
    ];

    let mut rows = Vec::new();
    for id in datasets {
        let series = generate(id, scale.series_len, scale.seed);
        let cut = (series.len() as f64 * 0.75).round() as usize;
        let (train, test) = series.values().split_at(cut);
        let season = series.frequency().default_season().min(series.len() / 4);

        let mut model = EaDrl::new(build_pool(scale, season), eadrl_config(scale));
        if model.fit(train).is_err() {
            continue;
        }
        let max_h = *horizons.last().expect("non-empty");
        let per_h = multi_horizon_rmse(&mut model, train, test, max_h, 4);
        let mut cells = vec![series.name().to_string()];
        for &h in &horizons {
            cells.push(format!("{:.3}", per_h[h - 1]));
        }
        // Degradation factor h=16 vs h=1.
        cells.push(format!("{:.2}x", per_h[max_h - 1] / per_h[0].max(1e-12)));
        eprintln!("  {:<28} done", series.name());
        rows.push(cells);
    }

    println!("\nMulti-horizon RMSE of EA-DRL's recursive forecast (Algorithm 1)\n");
    println!(
        "{}",
        render_table(
            &["Dataset", "h=1", "h=2", "h=4", "h=8", "h=16", "h16/h1"],
            &rows
        )
    );
    println!(
        "Recursive forecasting feeds its own predictions back into the base\n\
         models and the policy's state window, so errors compound; seasonal\n\
         series degrade gently, random walks roughly with sqrt(h)."
    );
}
