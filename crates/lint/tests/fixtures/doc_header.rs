//! Fixture: doc-header. Linted twice — with the pretend path
//! `crates/linalg/src/fixture.rs` (tags fire) and with
//! `crates/models/src/fixture.rs` (out of scope: zero findings).

/// Documented function: no finding.
pub fn documented() {}

pub fn undocumented() {} //~ doc-header

/// Documented struct behind an attribute stack: no finding.
#[derive(Debug, Clone)]
pub struct DocumentedStruct;

#[derive(Debug)]
pub struct UndocumentedStruct; //~ doc-header

pub(crate) fn internal_api_is_exempt() {}

fn private_is_exempt() {}

pub mod nested {
    pub fn undocumented_in_module() {} //~ doc-header
}

// eadrl-lint: allow(doc-header): fixture shows doc-header suppression
pub struct SuppressedStruct;

#[cfg(test)]
mod tests {
    pub fn undocumented_in_test_code() {}
}
