//! Event sinks: where emitted events go.

use crate::event::Event;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Consumes telemetry events. Implementations must be cheap enough to sit
/// on hot paths behind the level check.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards everything — the default sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn emit(&self, _event: &Event) {}
}

/// Bounded in-memory sink for tests: keeps the most recent `capacity`
/// events.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// Creates a ring sink holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring sink capacity must be positive");
        RingSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// A copy of the stored events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Stored events whose name (or any span path segment) equals `name`.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.name_matches(name))
            .cloned()
            .collect()
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().unwrap().is_empty()
    }

    /// Drops all stored events.
    pub fn clear(&self) {
        self.buf.lock().unwrap().clear();
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &Event) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Streams events as JSON lines to a writer (a file or stderr).
/// Line-buffered: each event is flushed at its newline, so a trace is
/// readable even after a crash.
pub struct JsonlSink {
    out: Mutex<LineWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// A sink writing to the given writer.
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(LineWriter::new(writer)),
        }
    }

    /// A sink appending to (and first truncating) `path`.
    pub fn file(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink::new(Box::new(File::create(path)?)))
    }

    /// A sink writing to standard error.
    pub fn stderr() -> JsonlSink {
        JsonlSink::new(Box::new(io::stderr()))
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json_line();
        let mut out = self.out.lock().unwrap();
        // A failing sink must never take the computation down with it.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Level};

    fn ev(name: &str) -> Event {
        Event::new(name, EventKind::Event, Level::Info)
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let sink = RingSink::new(2);
        sink.emit(&ev("a"));
        sink.emit(&ev("b"));
        sink.emit(&ev("c"));
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(sink.len(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_sink_filters_by_name() {
        let sink = RingSink::new(8);
        sink.emit(&ev("x"));
        sink.emit(&ev("parent/x"));
        sink.emit(&ev("y"));
        assert_eq!(sink.events_named("x").len(), 2);
        assert_eq!(sink.events_named("y").len(), 1);
        assert_eq!(sink.events_named("z").len(), 0);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(SharedWriter(shared.clone())));
        sink.emit(&ev("one").field("k", 1.5));
        sink.emit(&ev("two"));
        sink.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(Event::from_json_line(line).is_ok(), "bad line: {line}");
        }
    }
}
