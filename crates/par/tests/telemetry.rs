//! The worker-telemetry contract: events emitted inside `par_map` tasks
//! come out of the sink in input-index order at every thread count,
//! worker spans nest under the caller's span path, and every worker
//! event carries its `thread = 1 + worker index` attribution.
//!
//! Everything lives in ONE `#[test]` because the global sink and level
//! are process-wide state.

use eadrl_obs::{Event, EventKind, Level, RingSink, Value};
use eadrl_par::par_map_indexed_with;
use std::sync::Arc;

fn u64_field(event: &Event, key: &str) -> Option<u64> {
    match event.get(key) {
        Some(Value::U64(v)) => Some(*v),
        Some(Value::F64(v)) => Some(*v as u64),
        _ => None,
    }
}

/// One traced run: N items, each emitting a debug event carrying its
/// input index. Returns the captured events.
fn traced_run(threads: usize, n: usize) -> Vec<Event> {
    let sink = Arc::new(RingSink::new(4096));
    eadrl_obs::set_sink(sink.clone());
    eadrl_obs::set_level(Some(Level::Debug));
    {
        let _root = eadrl_obs::span("eadrl.fit");
        let out = par_map_indexed_with(threads, (0..n as u64).collect(), |i, x| {
            // eadrl-lint: allow(obs-event-schema): synthetic test-only event name, never emitted by the library
            eadrl_obs::event("par.test.item", Level::Debug, &[("index", i.into())]);
            x * 2
        })
        .expect("no panics");
        assert_eq!(out, (0..n as u64).map(|x| x * 2).collect::<Vec<_>>());
    }
    eadrl_obs::set_level(None);
    eadrl_obs::set_sink(Arc::new(eadrl_obs::NoopSink));
    assert_eq!(sink.dropped(), 0, "trace must not truncate");
    sink.events()
}

#[test]
fn worker_events_are_ordered_nested_and_attributed() {
    const N: usize = 23;
    for threads in [1, 2, 4, 8] {
        let events = traced_run(threads, N);

        // Item events arrive in input-index order: worker buffers are
        // flushed by worker index and chunks are contiguous ascending.
        let indices: Vec<u64> = events
            .iter()
            .filter(|e| e.name_matches("par.test.item"))
            .map(|e| u64_field(e, "index").expect("index field"))
            .collect();
        assert_eq!(
            indices,
            (0..N as u64).collect::<Vec<_>>(),
            "threads={threads}: item events out of input order"
        );

        // Item events nest under the inherited caller path, identically
        // at every thread count.
        for e in events.iter().filter(|e| e.name_matches("par.test.item")) {
            assert_eq!(
                e.name, "par.test.item",
                "threads={threads}: point events keep their own name"
            );
        }

        // Worker spans nest under eadrl.fit/par.map — not orphaned roots.
        let worker_spans: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.name_matches("par.worker"))
            .collect();
        let expected_workers = threads.min(N);
        assert_eq!(
            worker_spans.len(),
            expected_workers,
            "threads={threads}: one worker span per chunk"
        );
        let mut seen_items = 0u64;
        for span in &worker_spans {
            assert_eq!(
                span.name, "eadrl.fit/par.map/par.worker",
                "threads={threads}: worker span must inherit the caller path"
            );
            let w = u64_field(span, "worker").expect("worker field");
            assert_eq!(
                span.thread,
                w + 1,
                "threads={threads}: thread attribution is 1 + worker index"
            );
            seen_items += u64_field(span, "items").expect("items field");
        }
        assert_eq!(
            seen_items, N as u64,
            "threads={threads}: chunks cover all items"
        );

        // The par.map span closes after the flush, on the main thread.
        let map_span = events
            .iter()
            .find(|e| e.kind == EventKind::Span && e.name == "eadrl.fit/par.map")
            .expect("par.map span present");
        assert_eq!(map_span.thread, 0);
        assert_eq!(u64_field(map_span, "items"), Some(N as u64));
        assert_eq!(
            u64_field(map_span, "workers"),
            Some(expected_workers as u64)
        );
    }

    // Same thread count, two runs: identical event-name sequence
    // (timestamps aside, the trace is deterministic).
    let names = |events: &[Event]| -> Vec<(String, u64)> {
        events.iter().map(|e| (e.name.clone(), e.thread)).collect()
    };
    assert_eq!(names(&traced_run(4, N)), names(&traced_run(4, N)));

    // Across thread counts, the only shape difference is the number of
    // par.worker chunks: with those collapsed, the traces agree.
    let collapse = |events: &[Event]| -> Vec<String> {
        events
            .iter()
            .filter(|e| !e.name_matches("par.worker"))
            .map(|e| e.name.clone())
            .collect()
    };
    assert_eq!(collapse(&traced_run(1, N)), collapse(&traced_run(4, N)));
}
