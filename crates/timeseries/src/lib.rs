//! Time-series substrate for the EA-DRL reproduction.
//!
//! Provides the containers and primitives every other crate builds on:
//!
//! * [`TimeSeries`] — a named univariate series with a sampling frequency,
//! * [`embedding`] — time-delay embedding (the paper embeds every series
//!   with dimension k = 5 before feeding regression-style base models),
//! * [`metrics`] — RMSE / NRMSE / MAE / MAPE / sMAPE / R²,
//! * [`transform`] — z-score and min-max scalers, differencing,
//! * [`stats`] — autocorrelation, partial autocorrelation, rolling moments,
//! * [`drift`] — Page–Hinkley and adaptive-window drift detectors (used by
//!   the DEMSC baseline's informed update mechanism),
//! * [`sanitize`] — non-finite/gap repair for serving-path input
//!   histories (forward-fill policy, documented in the module),
//! * [`window`] — fixed-capacity sliding windows (`SlideWindow`,
//!   `StepRing`) backing every serving-loop ring buffer with amortized
//!   O(1), allocation-free slides.

pub mod decompose;
pub mod drift;
pub mod embedding;
pub mod io;
pub mod metrics;
pub mod sanitize;
pub mod series;
pub mod stats;
pub mod transform;
pub mod window;

pub use decompose::{decompose_additive, Decomposition};
pub use drift::{AdaptiveWindowDetector, PageHinkley};
pub use embedding::{embed, sliding_windows, Embedded};
pub use io::{read_csv_column, read_csv_file, write_csv, IoError};
pub use metrics::{mae, mape, mse, nrmse, r2, rmse, smape};
pub use sanitize::{sanitize_series, SanitizeStats};
pub use series::{Frequency, TimeSeries};
pub use transform::{difference, undifference, MinMaxScaler, Scaler, ZScoreScaler};
pub use window::{SlideWindow, StepRing};
