//! Element-wise activation functions.

/// An element-wise activation, applied after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// `f(x) = max(0, x)`.
    Relu,
    /// `f(x) = tanh(x)`.
    Tanh,
    /// `f(x) = 1 / (1 + e^{-x})`.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`.
    ///
    /// Every activation here admits this form, which lets layers cache only
    /// their outputs.
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }

    /// Applies to a whole slice in place.
    pub fn apply_in_place(self, xs: &mut [f64]) {
        for x in xs.iter_mut() {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(100.0) <= 1.0);
        assert!(s.apply(-100.0) >= 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            for &x in &[-1.5, -0.2, 0.0, 0.7, 2.0] {
                let y = act.apply(x);
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
        // ReLU away from the kink.
        for &x in &[-1.0, 1.0] {
            let y = Activation::Relu.apply(x);
            let numeric =
                (Activation::Relu.apply(x + h) - Activation::Relu.apply(x - h)) / (2.0 * h);
            assert!((numeric - Activation::Relu.derivative_from_output(y)).abs() < 1e-5);
        }
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let mut v = [-1.0, 0.0, 2.0];
        Activation::Relu.apply_in_place(&mut v);
        assert_eq!(v, [0.0, 0.0, 2.0]);
    }
}
