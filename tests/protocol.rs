//! Integration of the evaluation protocol with the statistics harness:
//! run a miniature Table II and feed the results through the Bayesian
//! tests and rank machinery.

use eadrl::core::baselines::{MlPol, SlidingWindowEnsemble, StaticEnsemble};
use eadrl::core::{Combiner, EaDrlConfig, EaDrlPolicy, EvaluationProtocol};
use eadrl::datasets::{generate, DatasetId};
use eadrl::eval::{average_ranks, bayes_sign_test, correlated_t_test, pairwise_table};
use eadrl::models::{quick_pool, Naive};

fn mini_eval(id: DatasetId, seed: u64) -> eadrl::core::DatasetEvaluation {
    let series = generate(id, 340, seed);
    let mut config = EaDrlConfig::default();
    config.omega = 8;
    config.episodes = 10;
    config.restarts = 1;
    let combiners: Vec<Box<dyn Combiner>> = vec![
        Box::new(StaticEnsemble::new()),
        Box::new(SlidingWindowEnsemble::new(8)),
        Box::new(MlPol::new()),
        Box::new(EaDrlPolicy::new(config)),
    ];
    EvaluationProtocol::default().evaluate(
        series.name(),
        series.values(),
        quick_pool(5, 24, seed),
        vec![("Naive".into(), Box::new(Naive))],
        combiners,
    )
}

#[test]
fn mini_table2_pipeline_produces_consistent_statistics() {
    let ids = [
        DatasetId::WaterConsumption,
        DatasetId::BikeRentals,
        DatasetId::TaxiDemand1,
    ];
    let evals: Vec<_> = ids.iter().map(|&id| mini_eval(id, 7)).collect();

    // Every method present everywhere, with aligned prediction lengths.
    let names: Vec<String> = evals[0].results.iter().map(|r| r.name.clone()).collect();
    assert_eq!(names.len(), 5);
    for e in &evals {
        for n in &names {
            let r = e.result(n).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(r.predictions.len(), e.test_actuals.len());
        }
    }

    // Rank machinery: ranks per dataset must sum to m(m+1)/2.
    let scores: Vec<Vec<f64>> = evals
        .iter()
        .map(|e| names.iter().map(|n| e.result(n).unwrap().rmse).collect())
        .collect();
    let summary = average_ranks(&names, &scores);
    let total_mean: f64 = summary.iter().map(|s| s.mean).sum();
    let expect = (names.len() * (names.len() + 1)) as f64 / 2.0;
    assert!((total_mean - expect).abs() < 1e-9);

    // Pairwise table vs EA-DRL: wins + losses + draws == number of datasets.
    let actuals: Vec<Vec<f64>> = evals.iter().map(|e| e.test_actuals.clone()).collect();
    let reference: Vec<Vec<f64>> = evals
        .iter()
        .map(|e| e.result("EA-DRL").unwrap().predictions.clone())
        .collect();
    let baselines: Vec<(String, Vec<Vec<f64>>)> = names
        .iter()
        .filter(|n| n.as_str() != "EA-DRL")
        .map(|n| {
            (
                n.clone(),
                evals
                    .iter()
                    .map(|e| e.result(n).unwrap().predictions.clone())
                    .collect(),
            )
        })
        .collect();
    let rows = pairwise_table(&actuals, &reference, &baselines, 0.01, 0.95);
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert_eq!(row.wins + row.losses + row.draws, evals.len());
        assert!(row.significant_wins <= row.wins);
        assert!(row.significant_losses <= row.losses);
    }
}

#[test]
fn bayesian_tests_agree_on_a_dominated_method() {
    // EA-DRL predictions vs a deliberately awful "method" (constant 0):
    // both tests must call it for EA-DRL decisively.
    let eval = mini_eval(DatasetId::SolarRadiation, 21);
    let ea = &eval.result("EA-DRL").unwrap().predictions;
    let y = &eval.test_actuals;
    let diffs: Vec<f64> = (0..y.len())
        .map(|t| {
            let bad = 0.0 - y[t];
            let good = ea[t] - y[t];
            bad * bad - good * good
        })
        .collect();
    let t = correlated_t_test(&diffs, 0.01, 0.0);
    assert!(t.p_right > 0.95, "t-test not decisive: {t:?}");

    let per_dataset_diffs = vec![diffs.iter().sum::<f64>() / diffs.len() as f64; 10];
    let s = bayes_sign_test(&per_dataset_diffs, 0.0, 3000, 5);
    assert!(s.p_right > 0.95, "sign test not decisive: {s:?}");
}

#[test]
fn timings_are_recorded_per_method() {
    let eval = mini_eval(DatasetId::CloudCover, 3);
    for r in &eval.results {
        assert!(r.online_seconds >= 0.0);
        assert!(r.warmup_seconds >= 0.0);
    }
    // EA-DRL's warm-up (policy training) must dominate the others'.
    let ea = eval.result("EA-DRL").unwrap().warmup_seconds;
    let se = eval.result("SE").unwrap().warmup_seconds;
    assert!(ea > se, "EA-DRL warm-up {ea} should exceed SE's {se}");
}
