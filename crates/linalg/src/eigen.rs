//! Cyclic-Jacobi eigendecomposition of real symmetric matrices.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by descending eigenvalue, which is the order PCA
/// and PCR want.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as columns, in the same order as `eigenvalues`.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the decomposition with the cyclic Jacobi method.
    ///
    /// `a` must be square; only symmetry up to round-off is assumed (the
    /// routine symmetrizes internally). Convergence is declared when the
    /// off-diagonal Frobenius norm falls below `1e-12 * ||A||_F`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "eigen requires square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        if n == 0 {
            return Ok(SymmetricEigen {
                eigenvalues: Vec::new(),
                eigenvectors: Matrix::zeros(0, 0),
            });
        }
        // Symmetrize to guard against tiny asymmetries from accumulation order.
        let mut m = a.clone();
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                m[(i, j)] = avg;
                m[(j, i)] = avg;
            }
        }
        let mut v = Matrix::identity(n);
        let scale = m.frobenius_norm().max(1e-300);
        let tol = 1e-12 * scale;
        const MAX_SWEEPS: usize = 100;
        for sweep in 0..MAX_SWEEPS {
            let off = off_diag_norm(&m);
            if off <= tol {
                return Ok(Self::sorted(m, v));
            }
            let _ = sweep;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Classic Jacobi rotation angle.
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Rotate rows/columns p and q of M.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate rotations into V.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        if off_diag_norm(&m) <= tol * 1e3 {
            // Close enough in practice; accept.
            return Ok(Self::sorted(m, v));
        }
        Err(LinalgError::NoConvergence {
            iterations: MAX_SWEEPS,
        })
    }

    fn sorted(m: Matrix, v: Matrix) -> Self {
        let n = m.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&a, &b| {
            diag[b]
                .partial_cmp(&diag[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for row in 0..n {
                eigenvectors[(row, new_col)] = v[(row, old_col)];
            }
        }
        SymmetricEigen {
            eigenvalues,
            eigenvectors,
        }
    }
}

fn off_diag_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += m[(i, j)] * m[(i, j)];
            }
        }
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-10);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-10);
        // Eigenvector of λ=3 is (1,1)/√2 up to sign.
        let v0 = e.eigenvectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 0.2, 0.1, 0.5, 0.2, 2.0, 0.3, 0.0, 0.1, 0.3, 1.0,
            ],
        )
        .unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        // V Vᵀ = I
        let vvt = e.eigenvectors.matmul(&e.eigenvectors.transpose()).unwrap();
        assert!(vvt.sub(&Matrix::identity(4)).unwrap().max_abs() < 1e-9);
        // V diag(λ) Vᵀ = A
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = e.eigenvalues[i];
        }
        let rec = e
            .eigenvectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 4.0, 0.5, 1.0, 0.5, 3.0]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        let trace = 5.0 + 4.0 + 3.0;
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_ok() {
        let e = SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
    }
}
