//! Experience replay with uniform and diversity (median-split) sampling.

use eadrl_rng::DetRng;

/// One stored transition `(s, a, r, s', done)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State the action was taken in.
    pub state: Vec<f64>,
    /// The executed action.
    pub action: Vec<f64>,
    /// Immediate reward.
    pub reward: f64,
    /// Resulting state.
    pub next_state: Vec<f64>,
    /// Whether the episode terminated at `next_state`.
    pub done: bool,
}

/// How mini-batches are drawn from the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Uniform random sampling — the original DDPG of Lillicrap et al.
    Uniform,
    /// The paper's diversity sampling (Eq. 4): half of the batch from
    /// transitions with reward ≥ median, half from below-median ones, so
    /// the critic and actor always see both good and bad actions.
    Diversity,
}

/// Fixed-capacity ring-buffer of transitions.
///
/// ```
/// use eadrl_rl::{ReplayBuffer, SamplingStrategy, Transition};
/// use eadrl_rng::DetRng;
///
/// let mut buffer = ReplayBuffer::new(100);
/// for reward in [0.1, 0.9, 0.5] {
///     buffer.push(Transition {
///         state: vec![0.0], action: vec![1.0],
///         reward, next_state: vec![0.0], done: false,
///     });
/// }
/// let mut rng = DetRng::seed_from_u64(0);
/// let batch = buffer.sample(2, SamplingStrategy::Diversity, &mut rng);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    storage: Vec<Transition>,
    next_slot: usize,
    /// Cached reward median; `None` marks it stale. Every `push`
    /// invalidates it, every diversity `sample` refreshes it at most
    /// once — so an update step that samples without pushing in between
    /// pays for one sort, not one per call.
    median_cache: Option<f64>,
    /// Reusable scratch for the median sort (cleared, capacity kept).
    sort_scratch: Vec<f64>,
    /// Reusable index pools for the median split (cleared, capacity kept).
    high: Vec<usize>,
    low: Vec<usize>,
}

impl ReplayBuffer {
    /// Creates an empty buffer holding at most `capacity` transitions
    /// (`N_max` in the paper).
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            capacity,
            storage: Vec::with_capacity(capacity.min(4096)),
            next_slot: 0,
            median_cache: None,
            sort_scratch: Vec::new(),
            high: Vec::new(),
            low: Vec::new(),
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stores a transition, overwriting the oldest once at capacity.
    pub fn push(&mut self, t: Transition) {
        self.median_cache = None;
        if self.storage.len() < self.capacity {
            self.storage.push(t);
        } else {
            self.storage[self.next_slot] = t;
            self.next_slot = (self.next_slot + 1) % self.capacity;
        }
    }

    /// Draws `n` transitions (with replacement) using `strategy`.
    ///
    /// Takes `&mut self` so diversity sampling can use (and refresh) the
    /// cached reward median instead of sorting the buffer on every call.
    /// The minibatches are bitwise-identical to the uncached
    /// implementation: the cached median is produced by the exact same
    /// sort-and-pick as [`Self::reward_median`], and the RNG draw
    /// sequence is unchanged.
    ///
    /// Diversity sampling degrades gracefully: when every reward equals the
    /// median (e.g. constant rewards) one of the halves would be empty, and
    /// the call falls back to uniform sampling for the missing half.
    pub fn sample(
        &mut self,
        n: usize,
        strategy: SamplingStrategy,
        rng: &mut DetRng,
    ) -> Vec<&Transition> {
        if self.storage.is_empty() || n == 0 {
            return Vec::new();
        }
        match strategy {
            SamplingStrategy::Uniform => (0..n)
                .map(|_| &self.storage[rng.random_range(0..self.storage.len())])
                .collect(),
            SamplingStrategy::Diversity => {
                let median = self.median_cached();
                self.high.clear();
                self.low.clear();
                for i in 0..self.storage.len() {
                    if self.storage[i].reward >= median {
                        self.high.push(i);
                    } else {
                        self.low.push(i);
                    }
                }
                let mut out = Vec::with_capacity(n);
                let half = n / 2;
                for (pool, count) in [(&self.high, half), (&self.low, n - half)] {
                    for _ in 0..count {
                        let idx = if pool.is_empty() {
                            rng.random_range(0..self.storage.len())
                        } else {
                            pool[rng.random_range(0..pool.len())]
                        };
                        out.push(&self.storage[idx]);
                    }
                }
                out
            }
        }
    }

    /// Cached reward median: recomputed (into reusable scratch) only when
    /// a `push` since the last call invalidated it.
    fn median_cached(&mut self) -> f64 {
        if let Some(m) = self.median_cache {
            return m;
        }
        self.sort_scratch.clear();
        self.sort_scratch
            .extend(self.storage.iter().map(|t| t.reward));
        let m = median_of_unsorted(&mut self.sort_scratch);
        self.median_cache = Some(m);
        m
    }

    /// Fraction of stored transitions whose reward is at or above the
    /// reward median (`NaN` when empty) — the occupancy of the "good"
    /// half that diversity sampling draws from. Near 1.0 it signals a
    /// degenerate reward landscape where the median split collapses.
    pub fn above_median_fraction(&self) -> f64 {
        if self.storage.is_empty() {
            return f64::NAN;
        }
        let median = self.reward_median();
        let above = self.storage.iter().filter(|t| t.reward >= median).count();
        above as f64 / self.storage.len() as f64
    }

    /// Median of the stored rewards (`NaN` when empty).
    ///
    /// Always recomputes (it takes `&self`); the training loop goes
    /// through the cached variant inside [`Self::sample`] instead.
    pub fn reward_median(&self) -> f64 {
        let mut rewards: Vec<f64> = self.storage.iter().map(|t| t.reward).collect();
        median_of_unsorted(&mut rewards)
    }
}

/// Sorts `rewards` in place and returns the median (`NaN` when empty).
/// Single definition shared by the cached and uncached paths so they are
/// bitwise-identical by construction.
fn median_of_unsorted(rewards: &mut [f64]) -> f64 {
    if rewards.is_empty() {
        return f64::NAN;
    }
    rewards.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = rewards.len();
    if n % 2 == 1 {
        rewards[n / 2]
    } else {
        0.5 * (rewards[n / 2 - 1] + rewards[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(reward: f64) -> Transition {
        Transition {
            state: vec![0.0],
            action: vec![0.0],
            reward,
            next_state: vec![0.0],
            done: false,
        }
    }

    #[test]
    fn ring_overwrite_keeps_capacity() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f64));
        }
        assert_eq!(buf.len(), 3);
        // Oldest (0, 1) overwritten by 3 and 4.
        let rewards: Vec<f64> = buf.storage.iter().map(|x| x.reward).collect();
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
    }

    #[test]
    fn uniform_sampling_covers_buffer() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.push(t(i as f64));
        }
        let mut rng = DetRng::seed_from_u64(0);
        let batch = buf.sample(200, SamplingStrategy::Uniform, &mut rng);
        assert_eq!(batch.len(), 200);
        let distinct: std::collections::BTreeSet<i64> =
            batch.iter().map(|x| x.reward as i64).collect();
        assert!(distinct.len() >= 8, "uniform sample too concentrated");
    }

    #[test]
    fn diversity_sampling_balances_median_halves() {
        let mut buf = ReplayBuffer::new(100);
        // 90 bad transitions, 10 good ones.
        for _ in 0..90 {
            buf.push(t(0.0));
        }
        for _ in 0..10 {
            buf.push(t(10.0));
        }
        let mut rng = DetRng::seed_from_u64(1);
        let batch = buf.sample(100, SamplingStrategy::Diversity, &mut rng);
        let high = batch.iter().filter(|x| x.reward >= 5.0).count();
        // Exactly half the batch must come from the >= median pool.
        // Median of (90 zeros, 10 tens) = 0, so "high" pool = everything;
        // the balancing shows up through the below-median half being empty
        // and falling back. Instead check a clean split:
        let _ = high;
        let mut buf2 = ReplayBuffer::new(100);
        for i in 0..50 {
            buf2.push(t(i as f64)); // rewards 0..49, median 24.5
        }
        let batch2 = buf2.sample(100, SamplingStrategy::Diversity, &mut rng);
        let high2 = batch2.iter().filter(|x| x.reward >= 24.5).count();
        assert_eq!(high2, 50, "diversity batch must be half high, half low");
    }

    #[test]
    fn diversity_sampling_handles_constant_rewards() {
        let mut buf = ReplayBuffer::new(10);
        for _ in 0..10 {
            buf.push(t(1.0));
        }
        let mut rng = DetRng::seed_from_u64(2);
        let batch = buf.sample(8, SamplingStrategy::Diversity, &mut rng);
        assert_eq!(batch.len(), 8);
    }

    #[test]
    fn empty_buffer_samples_nothing() {
        let mut buf = ReplayBuffer::new(5);
        let mut rng = DetRng::seed_from_u64(3);
        assert!(buf
            .sample(4, SamplingStrategy::Uniform, &mut rng)
            .is_empty());
        assert!(buf.reward_median().is_nan());
    }

    #[test]
    fn diversity_sample_rewards_are_pinned() {
        // Regression pin for the cached-median refactor: the exact draw
        // sequence of a seeded diversity sample must never change, or
        // every committed training baseline shifts.
        let mut buf = ReplayBuffer::new(16);
        for i in 0..10 {
            buf.push(t(i as f64)); // rewards 0..9, median 4.5
        }
        let mut rng = DetRng::seed_from_u64(42);
        let drawn: Vec<f64> = buf
            .sample(6, SamplingStrategy::Diversity, &mut rng)
            .iter()
            .map(|x| x.reward)
            .collect();
        // First half from the >= 4.5 pool, second half from below it.
        assert!(drawn[..3].iter().all(|&r| r >= 4.5));
        assert!(drawn[3..].iter().all(|&r| r < 4.5));
        assert_eq!(drawn, vec![6.0, 8.0, 9.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn cached_median_matches_recompute_under_interleaved_push_sample() {
        // Interleave pushes (which invalidate the cache) with samples
        // (which refresh it) and check the cached value and the drawn
        // minibatches stay bitwise-identical to a never-cached reference.
        let mut cached = ReplayBuffer::new(8);
        let mut reference = ReplayBuffer::new(8);
        let mut rng_c = DetRng::seed_from_u64(7);
        let mut rng_r = DetRng::seed_from_u64(7);
        for step in 0..30 {
            let r = ((step * 37) % 11) as f64 - 5.0;
            cached.push(t(r));
            reference.push(t(r));
            if step % 3 == 0 {
                continue; // some pushes without a sample in between
            }
            // Sample twice per step: the second call hits the warm cache.
            for _ in 0..2 {
                let a: Vec<f64> = cached
                    .sample(4, SamplingStrategy::Diversity, &mut rng_c)
                    .iter()
                    .map(|x| x.reward)
                    .collect();
                // The reference recomputes from scratch every time: it is
                // never sampled directly, so its own cache stays invalid
                // (push clears it) and every clone starts cold.
                let b: Vec<f64> = reference
                    .clone()
                    .sample(4, SamplingStrategy::Diversity, &mut rng_r)
                    .iter()
                    .map(|x| x.reward)
                    .collect();
                assert_eq!(a, b, "cached vs recomputed diverged at step {step}");
            }
            assert_eq!(cached.median_cached(), cached.reward_median());
        }
    }

    #[test]
    fn median_odd_and_even() {
        let mut buf = ReplayBuffer::new(10);
        buf.push(t(1.0));
        buf.push(t(3.0));
        buf.push(t(2.0));
        assert_eq!(buf.reward_median(), 2.0);
        buf.push(t(4.0));
        assert_eq!(buf.reward_median(), 2.5);
    }

    #[test]
    fn above_median_fraction_tracks_split() {
        let mut buf = ReplayBuffer::new(10);
        assert!(buf.above_median_fraction().is_nan());
        for i in 0..4 {
            buf.push(t(i as f64)); // rewards 0,1,2,3 — median 1.5
        }
        assert_eq!(buf.above_median_fraction(), 0.5);
        for _ in 0..4 {
            buf.push(t(3.0)); // now most mass sits at the top
        }
        assert!(buf.above_median_fraction() >= 0.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }
}
