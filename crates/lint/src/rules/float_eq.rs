//! `no-float-eq`: exact float comparison must be an explicit, annotated
//! decision.
//!
//! Subgradient branches (`d == 0.0` at a hinge) and zero-pivot guards
//! are legitimate *exact* comparisons — but they must be visibly
//! deliberate, because an accidental `==` on computed floats silently
//! varies with rounding and can flip rank rewards between runs. The rule
//! flags `==`/`!=` when either operand is a float literal or a binding
//! this file declares as `f64`/`f32` (annotation or float-literal
//! initializer); intentional sites carry
//! `// eadrl-lint: allow(no-float-eq): <why exact equality is correct>`.

use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, LintContext, Rule, RESULT_CRATES};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// See module docs.
pub struct NoFloatEq;

impl Rule for NoFloatEq {
    fn name(&self) -> &'static str {
        "no-float-eq"
    }

    fn description(&self) -> &'static str {
        "forbid ==/!= where either side is a float literal or a known-float binding"
    }

    fn check(&self, file: &SourceFile, _ctx: &LintContext, out: &mut Vec<Finding>) {
        if !file.in_any(RESULT_CRATES) {
            return;
        }
        let toks = &file.tokens;
        let floats = known_float_bindings(file);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Op || (t.text != "==" && t.text != "!=") {
                continue;
            }
            if file.in_test_code(t.line) {
                continue;
            }
            let lhs = toks.get(i.wrapping_sub(1));
            // Unary minus on the right (`== -1.0`) sits between the
            // operator and the literal.
            let mut r = i + 1;
            if matches!(toks.get(r), Some(n) if n.kind == TokenKind::Punct && n.text == "-") {
                r += 1;
            }
            let rhs = toks.get(r);
            // An ident the comparison reads *through* (`y.len()`, `y[i]`)
            // is not the binding itself — `y: &[f64]` compared via
            // `y.len()` is a usize comparison.
            let rhs_projected =
                matches!(toks.get(r + 1), Some(n) if n.text == "." || n.text == "[");
            let is_float_operand = |tok: Option<&Token>, projected: bool| -> bool {
                match tok {
                    Some(tok) => match tok.kind {
                        TokenKind::Float => true,
                        TokenKind::Ident => !projected && floats.contains(tok.text.as_str()),
                        _ => false,
                    },
                    None => false,
                }
            };
            if is_float_operand(lhs, false) || is_float_operand(rhs, rhs_projected) {
                out.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "exact float comparison `{}` — use a tolerance, total_cmp, or annotate the deliberate exact test",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Bindings this file declares as floats: `name: f64`/`f32` anywhere
/// (covers `let` annotations, fn params, struct fields) plus
/// `let [mut] name = <float literal>…;`. A per-file flat namespace is the
/// right cost/benefit for a lint: false negatives on cross-file types
/// are acceptable, false positives are rare. Test code is excluded from
/// harvesting — a `let y = [1.0, …]` fixture in `#[cfg(test)]` must not
/// taint the library's `y: &[f64]` parameter.
fn known_float_bindings(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut floats = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if file.in_test_code(t.line) {
            continue;
        }
        // `name : f64`
        if t.kind == TokenKind::Ident
            && matches!(toks.get(i + 1), Some(c) if c.kind == TokenKind::Punct && c.text == ":")
            && matches!(
                toks.get(i + 2),
                Some(ty) if ty.kind == TokenKind::Ident && (ty.text == "f64" || ty.text == "f32")
            )
        {
            floats.insert(t.text.clone());
        }
        // `let [mut] name = … <float literal> … ;` (scan to the statement
        // end; a float literal anywhere in the initializer taints the
        // binding — conservative in the useful direction).
        if t.kind == TokenKind::Ident && t.text == "let" {
            let mut j = i + 1;
            if matches!(toks.get(j), Some(m) if m.kind == TokenKind::Ident && m.text == "mut") {
                j += 1;
            }
            let Some(name) = toks.get(j) else { continue };
            if name.kind != TokenKind::Ident {
                continue;
            }
            if !matches!(toks.get(j + 1), Some(eq) if eq.kind == TokenKind::Punct && eq.text == "=")
            {
                continue;
            }
            let mut k = j + 2;
            let mut depth = 0i32;
            while let Some(tok) = toks.get(k) {
                match (tok.kind, tok.text.as_str()) {
                    (TokenKind::Punct, "(" | "[" | "{") => depth += 1,
                    (TokenKind::Punct, ")" | "]" | "}") => depth -= 1,
                    (TokenKind::Punct, ";") if depth <= 0 => break,
                    (TokenKind::Float, _) => {
                        floats.insert(name.text.clone());
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
    floats
}
