//! Loss functions.

/// Mean squared error `mean((y - t)²)`.
///
/// # Panics
/// Debug-panics on length mismatch; returns 0 for empty inputs.
pub fn mse_loss(output: &[f64], target: &[f64]) -> f64 {
    debug_assert_eq!(output.len(), target.len(), "mse_loss: length mismatch");
    if output.is_empty() {
        return 0.0;
    }
    output
        .iter()
        .zip(target.iter())
        .map(|(y, t)| (y - t) * (y - t))
        .sum::<f64>()
        / output.len() as f64
}

/// Gradient of [`mse_loss`] with respect to `output`: `2 (y - t) / n`.
pub fn mse_loss_grad(output: &[f64], target: &[f64]) -> Vec<f64> {
    debug_assert_eq!(output.len(), target.len(), "mse_loss_grad: length mismatch");
    let n = output.len().max(1) as f64;
    output
        .iter()
        .zip(target.iter())
        .map(|(y, t)| 2.0 * (y - t) / n)
        .collect()
}

/// Huber loss with threshold `delta` (quadratic near zero, linear in the
/// tails); more robust to outlier targets than MSE.
pub fn huber_loss(output: &[f64], target: &[f64], delta: f64) -> f64 {
    debug_assert_eq!(output.len(), target.len(), "huber_loss: length mismatch");
    if output.is_empty() {
        return 0.0;
    }
    output
        .iter()
        .zip(target.iter())
        .map(|(y, t)| {
            let e = (y - t).abs();
            if e <= delta {
                0.5 * e * e
            } else {
                delta * (e - 0.5 * delta)
            }
        })
        .sum::<f64>()
        / output.len() as f64
}

/// Gradient of [`huber_loss`] with respect to `output`.
pub fn huber_loss_grad(output: &[f64], target: &[f64], delta: f64) -> Vec<f64> {
    debug_assert_eq!(output.len(), target.len());
    let n = output.len().max(1) as f64;
    output
        .iter()
        .zip(target.iter())
        .map(|(y, t)| {
            let e = y - t;
            if e.abs() <= delta {
                e / n
            } else {
                delta * e.signum() / n
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        assert!((mse_loss(&[1.0, 3.0], &[0.0, 1.0]) - 2.5).abs() < 1e-12);
        assert_eq!(mse_loss(&[], &[]), 0.0);
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let y = [0.5, -1.2, 3.0];
        let t = [0.0, 0.0, 2.0];
        let g = mse_loss_grad(&y, &t);
        let h = 1e-6;
        for i in 0..3 {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let numeric = (mse_loss(&yp, &t) - mse_loss(&ym, &t)) / (2.0 * h);
            assert!((numeric - g[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn huber_is_quadratic_then_linear() {
        // e = 0.5 <= delta=1: 0.5*0.25 = 0.125
        assert!((huber_loss(&[0.5], &[0.0], 1.0) - 0.125).abs() < 1e-12);
        // e = 3 > 1: 1*(3-0.5) = 2.5
        assert!((huber_loss(&[3.0], &[0.0], 1.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn huber_grad_matches_finite_difference() {
        let y = [0.3, -2.5];
        let t = [0.0, 0.0];
        let g = huber_loss_grad(&y, &t, 1.0);
        let h = 1e-6;
        for i in 0..2 {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let numeric = (huber_loss(&yp, &t, 1.0) - huber_loss(&ym, &t, 1.0)) / (2.0 * h);
            assert!((numeric - g[i]).abs() < 1e-6, "i = {i}");
        }
    }
}
