//! The episodic-environment interface.

/// A Markov decision process with continuous states and actions.
///
/// The EA-DRL environment (`eadrl-core`) implements this: states are
/// windows of ensemble outputs, actions are ensemble weight vectors, and
/// the transition is deterministic (§II-B of the paper).
pub trait Environment {
    /// Dimensionality of state vectors.
    fn state_dim(&self) -> usize;

    /// Dimensionality of action vectors.
    fn action_dim(&self) -> usize;

    /// Starts a new episode and returns the initial state.
    fn reset(&mut self) -> Vec<f64>;

    /// Executes `action`; returns `(next_state, reward, done)`.
    fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool);
}

#[cfg(test)]
pub(crate) mod test_envs {
    use super::Environment;

    /// A 1-D "move toward the target" environment used across the crate's
    /// tests: state is the current position, the action nudges it, and the
    /// reward is the negative squared distance to a fixed target.
    pub struct PointMass {
        pub position: f64,
        pub target: f64,
        pub steps: usize,
        pub max_steps: usize,
    }

    impl PointMass {
        pub fn new(target: f64, max_steps: usize) -> Self {
            PointMass {
                position: 0.0,
                target,
                steps: 0,
                max_steps,
            }
        }
    }

    impl Environment for PointMass {
        fn state_dim(&self) -> usize {
            1
        }

        fn action_dim(&self) -> usize {
            1
        }

        fn reset(&mut self) -> Vec<f64> {
            self.position = 0.0;
            self.steps = 0;
            vec![self.position]
        }

        fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool) {
            self.position += action[0].clamp(-1.0, 1.0) * 0.2;
            self.steps += 1;
            let dist = self.position - self.target;
            let reward = -dist * dist;
            (vec![self.position], reward, self.steps >= self.max_steps)
        }
    }

    #[test]
    fn point_mass_rewards_proximity() {
        let mut env = PointMass::new(1.0, 10);
        let s0 = env.reset();
        assert_eq!(s0, vec![0.0]);
        let (_, r_toward, _) = env.step(&[1.0]);
        env.reset();
        let (_, r_away, _) = env.step(&[-1.0]);
        assert!(r_toward > r_away);
    }

    #[test]
    fn point_mass_terminates() {
        let mut env = PointMass::new(1.0, 3);
        env.reset();
        assert!(!env.step(&[0.0]).2);
        assert!(!env.step(&[0.0]).2);
        assert!(env.step(&[0.0]).2);
    }
}
