//! Drift-detector contract tests: the detectors gate DEMSC's expensive
//! re-clustering and the online-refresh trigger, so both their silence
//! (no false alarms on stationary streams) and their latency (bounded
//! reaction to a step change) are load-bearing. Detection is pure
//! sequential arithmetic, so the firing step must also be independent
//! of the `EADRL_PAR_THREADS` setting — pinned here because the online
//! serving loop that hosts the detectors does run the pool in parallel.

use eadrl_rng::DetRng;
use eadrl_timeseries::drift::{AdaptiveWindowDetector, PageHinkley};

/// A seeded stationary stream: uniform noise in `[center - amp, center + amp)`.
fn stationary(n: usize, center: f64, amp: f64, seed: u64) -> Vec<f64> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n)
        .map(|_| center + rng.random_range(-amp..amp))
        .collect()
}

/// Stationary noise around `1.0` that steps to `3.0` at `flip`.
fn step_change(n: usize, flip: usize, seed: u64) -> Vec<f64> {
    let mut stream = stationary(n, 1.0, 0.1, seed);
    for v in stream.iter_mut().skip(flip) {
        *v += 2.0;
    }
    stream
}

#[test]
fn no_false_firing_over_10k_stationary_points() {
    let stream = stationary(10_000, 1.0, 0.1, 42);
    let mut ph = PageHinkley::new(0.05, 5.0);
    let mut aw = AdaptiveWindowDetector::new(200, 0.002);
    for (i, &v) in stream.iter().enumerate() {
        assert!(!ph.update(v), "Page-Hinkley false alarm at point {i}");
        assert!(!aw.update(v), "adaptive window false alarm at point {i}");
    }
    assert_eq!(ph.observations(), 10_000);
}

#[test]
fn step_change_is_detected_within_a_latency_bound() {
    let flip = 500;
    let stream = step_change(700, flip, 7);

    let mut ph = PageHinkley::new(0.05, 5.0);
    let ph_fired = stream.iter().position(|&v| ph.update(v));
    let ph_at = ph_fired.expect("Page-Hinkley must catch a 2-sigma-e-scale step");
    assert!(
        ph_at >= flip,
        "fired at {ph_at}, before the change at {flip}"
    );
    assert!(
        ph_at < flip + 50,
        "Page-Hinkley took {} points to react",
        ph_at - flip
    );

    let mut aw = AdaptiveWindowDetector::new(200, 0.002);
    let aw_fired = stream.iter().position(|&v| aw.update(v));
    let aw_at = aw_fired.expect("adaptive window must catch the step");
    assert!(
        aw_at >= flip,
        "fired at {aw_at}, before the change at {flip}"
    );
    assert!(
        aw_at < flip + 100,
        "adaptive window took {} points to react",
        aw_at - flip
    );
}

#[test]
fn detectors_rearm_after_firing() {
    // Two regime changes; a detector that fails to reset after the first
    // either never fires again or carries poisoned state into regime 2.
    let mut stream = step_change(700, 500, 11);
    stream.extend(stationary(200, 3.0, 0.1, 12));
    stream.extend(stationary(200, 6.0, 0.1, 13));

    let mut ph = PageHinkley::new(0.05, 5.0);
    let mut fires = Vec::new();
    for (i, &v) in stream.iter().enumerate() {
        if ph.update(v) {
            fires.push(i);
            // Detection resets the detector's state completely.
            assert_eq!(ph.observations(), 0, "no reset after firing at {i}");
        }
    }
    assert!(
        fires.iter().any(|&i| i >= 500 && i < 700),
        "first shift missed: {fires:?}"
    );
    assert!(
        fires.iter().any(|&i| i >= 900),
        "detector did not re-arm for the second shift: {fires:?}"
    );

    let mut aw = AdaptiveWindowDetector::new(200, 0.002);
    let mut aw_fires = Vec::new();
    for (i, &v) in stream.iter().enumerate() {
        if aw.update(v) {
            aw_fires.push(i);
        }
    }
    assert!(
        aw_fires.iter().any(|&i| i >= 500 && i < 700),
        "window detector missed the first shift: {aw_fires:?}"
    );
    assert!(
        aw_fires.iter().any(|&i| i >= 900),
        "window detector did not adapt past the first shift: {aw_fires:?}"
    );
}

#[test]
fn firing_steps_are_identical_across_thread_counts() {
    let fire_steps = |threads: &str| -> (Vec<usize>, Vec<usize>) {
        std::env::set_var(eadrl_par::THREADS_ENV, threads);
        let stream = step_change(700, 500, 21);
        let mut ph = PageHinkley::new(0.05, 5.0);
        let mut aw = AdaptiveWindowDetector::new(200, 0.002);
        let mut ph_fires = Vec::new();
        let mut aw_fires = Vec::new();
        for (i, &v) in stream.iter().enumerate() {
            if ph.update(v) {
                ph_fires.push(i);
            }
            if aw.update(v) {
                aw_fires.push(i);
            }
        }
        (ph_fires, aw_fires)
    };

    let serial = fire_steps("1");
    let parallel = fire_steps("4");
    std::env::remove_var(eadrl_par::THREADS_ENV);
    assert!(!serial.0.is_empty() && !serial.1.is_empty());
    assert_eq!(
        serial, parallel,
        "drift firing steps must not depend on the worker count"
    );
}
