//! Lock-free metrics primitives and the process-wide registry.
//!
//! All primitives are safe to hammer from many threads: counters and
//! gauges are single atomics, histograms are arrays of atomic buckets
//! (log-spaced, ~2.2 % relative resolution) so recording never takes a
//! lock.

use crate::event::{Event, EventKind, Level};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Histogram layout: `SUB` log-spaced buckets per power of two, covering
/// `2^-OCTAVE_MIN .. 2^OCTAVE_MAX`. 16 sub-buckets per octave bound the
/// relative quantile error by `2^(1/32) - 1 ≈ 2.2 %`.
const SUB: usize = 16;
const OCTAVES_BELOW: i32 = 40; // down to ~9e-13
const OCTAVES_ABOVE: i32 = 40; // up to ~1e12
const BUCKETS: usize = ((OCTAVES_BELOW + OCTAVES_ABOVE) as usize) * SUB;

/// A streaming histogram over positive magnitudes with approximate
/// quantiles. Values `<= 0` (and non-finite values) are tallied in a
/// side count and surface as the recorded minimum in quantile queries —
/// losses, durations, norms and entropies are all non-negative, so the
/// side count stays a corner case.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    nonpos: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            nonpos: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

fn bucket_index(v: f64) -> usize {
    let idx = ((v.log2() + OCTAVES_BELOW as f64) * SUB as f64).floor();
    idx.clamp(0.0, (BUCKETS - 1) as f64) as usize
}

fn bucket_value(idx: usize) -> f64 {
    // Geometric midpoint of the bucket.
    ((idx as f64 + 0.5) / SUB as f64 - OCTAVES_BELOW as f64).exp2()
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() || v <= 0.0 {
            self.nonpos.fetch_add(1, Ordering::Relaxed);
            if v.is_finite() {
                self.update_extremes(v);
                self.add_to_sum(v);
            }
            return;
        }
        self.update_extremes(v);
        self.add_to_sum(v);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn add_to_sum(&self, v: f64) {
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    fn update_extremes(&self, v: f64) {
        let mut cur = self.min_bits.load(Ordering::Relaxed);
        while v < f64::from_bits(cur) {
            match self.min_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of the finite recorded observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of the finite recorded observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            f64::NAN
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest finite observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            f64::NAN
        }
    }

    /// Largest finite observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_finite() {
            v
        } else {
            f64::NAN
        }
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`), `NaN` when empty.
    /// Relative error is bounded by the bucket resolution (~2.2 %).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * (total - 1) as f64).round() as u64;
        let mut seen = self.nonpos.load(Ordering::Relaxed);
        if target < seen {
            // The non-positive side count sits below every bucket.
            let lo = self.min();
            return if lo.is_finite() { lo.min(0.0) } else { 0.0 };
        }
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if target < seen {
                // Clamp the bucket midpoint to the observed extremes so
                // tail quantiles never exceed the recorded range.
                return bucket_value(idx).clamp(self.min().min(self.max()), self.max());
            }
        }
        self.max()
    }

    /// A consistent summary of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Mean of finite observations.
    pub mean: f64,
    /// Smallest finite observation.
    pub min: f64,
    /// Largest finite observation.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Handles are `Arc`s: look them up once
/// and cache them on hot paths.
#[derive(Default)]
pub struct Registry {
    map: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    // eadrl-lint: allow(panic-reachable): kind-mismatch registration is a programmer error, documented under # Panics
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.map.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// The gauge registered under `name`, created on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    // eadrl-lint: allow(panic-reachable): kind-mismatch registration is a programmer error, documented under # Panics
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.map.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    // eadrl-lint: allow(panic-reachable): kind-mismatch registration is a programmer error, documented under # Panics
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.map.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// One [`EventKind::Metric`] event per registered metric, in name
    /// order — the exportable state of the registry.
    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    pub fn snapshot_events(&self) -> Vec<Event> {
        let map = self.map.lock().unwrap();
        map.iter()
            .map(|(name, metric)| {
                let e = Event::new(name.clone(), EventKind::Metric, Level::Info);
                match metric {
                    Metric::Counter(c) => e.field("type", "counter").field("value", c.get()),
                    Metric::Gauge(g) => e.field("type", "gauge").field("value", g.get()),
                    Metric::Histogram(h) => {
                        let s = h.snapshot();
                        e.field("type", "histogram")
                            .field("count", s.count)
                            .field("sum", s.sum)
                            .field("mean", s.mean)
                            .field("min", s.min)
                            .field("max", s.max)
                            .field("p50", s.p50)
                            .field("p90", s.p90)
                            .field("p99", s.p99)
                    }
                }
            })
            .collect()
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global_registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn histogram_summary_statistics_are_exact() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 10.0).abs() < 1e-12);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn histogram_quantiles_bound_relative_error() {
        let h = Histogram::new();
        // 10_000 evenly spaced values in (0, 1].
        let n = 10_000;
        for i in 1..=n {
            h.record(i as f64 / n as f64);
        }
        for (q, truth) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let est = h.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.03, "q{q}: estimate {est} vs {truth} (rel {rel})");
        }
    }

    #[test]
    fn histogram_handles_wide_dynamic_range() {
        let h = Histogram::new();
        for exp in -20..=20 {
            h.record((exp as f64).exp2());
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 1.0).abs() / 1.0 < 0.05, "p50 {p50}");
        assert!(h.quantile(1.0) <= h.max());
        assert!(h.quantile(0.0) >= h.min() * 0.95);
    }

    #[test]
    fn histogram_tolerates_nonpositive_and_nonfinite() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(2.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 2.0);
        assert!(h.quantile(0.0) <= 0.0);
        assert!(h.quantile(1.0) <= 2.0);
    }

    #[test]
    fn empty_histogram_is_nan() {
        let h = Histogram::new();
        assert!(h.quantile(0.5).is_nan());
        assert!(h.mean().is_nan());
        assert!(h.min().is_nan());
    }

    #[test]
    fn registry_reuses_handles_and_snapshots() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").inc();
        r.gauge("b").set(1.5);
        r.histogram("c").record(3.0);
        assert_eq!(r.counter("a").get(), 3);
        let events = r.snapshot_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].kind, EventKind::Metric);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
