//! Benchmarks for the batched GEMM training path: the cache-blocked
//! linalg kernels, the batched dense forward, and the minibatch-as-matrix
//! DDPG update against its per-sample predecessor.
//!
//! Flags (combinable):
//! - `--quick`   shrink the measurement budget for CI smoke runs;
//! - `--json`    print a machine-readable `kernels_bench` report on stdout;
//! - `--out <p>` also write that JSON document to the file `<p>`;
//! - `--check`   exit non-zero if the batched DDPG update is slower than
//!   the per-sample path at any batch size ≥ 32 (the perf regression gate
//!   wired into CI).
//!
//! The DDPG benchmarks fill the replay buffer with synthetic transitions
//! rather than a fitted forecaster pool: the update cost depends only on
//! the state/action dimensions, batch size, and network shape, and this
//! keeps `--quick` runs in seconds. Each DDPG sample times
//! [`UPDATES_PER_RUN`] consecutive updates from a freshly seeded agent
//! (reported per update): the paths are bitwise-identical, so both
//! traverse the same weight trajectory and see the same activation
//! sparsity, making the comparison controlled and every sample
//! deterministic.

use eadrl_bench::harness::{Harness, Summary};
use eadrl_bench::{json_output, print_json_report};
use eadrl_linalg::{kernels, Matrix};
use eadrl_nn::{Activation, Dense, Mlp, Network};
use eadrl_obs::json::JsonValue;
use eadrl_rl::{ActionSquash, DdpgAgent, DdpgConfig, SamplingStrategy, Transition, UpdatePath};
use eadrl_rng::DetRng;
use std::hint::black_box;

/// Pipeline-representative dimensions: ω = 10 recent ensemble outputs as
/// the state, a 10-model pool's weights as the action, and the default
/// 32×32 hidden stack.
const STATE_DIM: usize = 10;
const ACTION_DIM: usize = 10;

/// Consecutive updates timed per DDPG benchmark sample (from a fresh
/// seeded agent, so every sample does the identical deterministic work).
const UPDATES_PER_RUN: usize = 100;

fn random_matrix(rng: &mut DetRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();
    Matrix::from_rows(&data).expect("rectangular rows")
}

/// The unblocked reference GEMM the blocked kernel is measured against
/// (same i-k-j order, no tiling, fresh accumulation).
fn naive_gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    c.fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            let brow = &b[kk * n..(kk + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

fn bench_gemm(c: &mut Harness) {
    let mut rng = DetRng::seed_from_u64(7);
    let (m, k, n) = (64, 96, 64);
    let a = random_matrix(&mut rng, m, k);
    let b = random_matrix(&mut rng, k, n);
    let mut out = vec![0.0; m * n];
    let mut group = c.benchmark_group("gemm_64x96x64");
    group.bench_function("naive_ikj", |b_| {
        b_.iter(|| {
            naive_gemm(m, k, n, a.data(), b.data(), &mut out);
            black_box(out[0])
        })
    });
    group.bench_function("blocked", |b_| {
        b_.iter(|| {
            kernels::gemm(m, k, n, a.data(), b.data(), &mut out);
            black_box(out[0])
        })
    });
    group.finish();
}

fn bench_dense_forward(c: &mut Harness) -> Vec<(String, Summary)> {
    let mut rng = DetRng::seed_from_u64(11);
    let batch = 64;
    let rows: Vec<Vec<f64>> = (0..batch)
        .map(|_| (0..32).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();
    let input = Matrix::from_rows(&rows).expect("rectangular rows");
    let mut per = Dense::new(&mut rng, 32, 32, Activation::Relu);
    let mut bat = per.clone();
    let mut group = c.benchmark_group("dense_forward_32x32_batch64");
    group.bench_function("per_sample_x64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in &rows {
                acc += per.forward(row)[0];
            }
            black_box(acc)
        })
    });
    group.bench_function("forward_batch", |b| {
        b.iter(|| {
            let out = bat.forward_batch(&input);
            black_box(out.row(0)[0])
        })
    });
    group.finish()
}

fn bench_mlp_train_step(c: &mut Harness) {
    let mut rng = DetRng::seed_from_u64(13);
    let batch = 64;
    let rows: Vec<Vec<f64>> = (0..batch)
        .map(|_| (0..12).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();
    let grads: Vec<Vec<f64>> = (0..batch)
        .map(|_| vec![rng.random_range(-1.0..1.0)])
        .collect();
    let input = Matrix::from_rows(&rows).expect("rectangular rows");
    let gout = Matrix::from_rows(&grads).expect("rectangular rows");
    let mut per = Mlp::new(
        &mut rng,
        &[12, 32, 32, 1],
        Activation::Relu,
        Activation::Identity,
    );
    let mut bat = per.clone();
    let mut group = c.benchmark_group("mlp_fwd_bwd_12_32_32_1_batch64");
    group.bench_function("per_sample_x64", |b| {
        b.iter(|| {
            per.zero_grad();
            for (x, g) in rows.iter().zip(grads.iter()) {
                per.forward(x);
                per.backward(g);
            }
            black_box(per.grad_norm())
        })
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            bat.zero_grad();
            bat.forward_batch(&input);
            bat.backward_batch(&gout);
            black_box(bat.grad_norm())
        })
    });
    group.finish();
}

fn agent_with(path: UpdatePath, batch_size: usize) -> DdpgAgent {
    let mut agent = DdpgAgent::new(
        STATE_DIM,
        ACTION_DIM,
        DdpgConfig {
            sampling: SamplingStrategy::Uniform,
            batch_size,
            hidden: vec![32, 32],
            squash: ActionSquash::BoundedSoftmax { scale: 6.0 },
            seed: 42,
            update_path: path,
            ..Default::default()
        },
    );
    // 256 synthetic transitions: enough for any benched batch size.
    let mut rng = DetRng::seed_from_u64(99);
    for i in 0..256 {
        let state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let next_state: Vec<f64> = (0..STATE_DIM)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let mut action: Vec<f64> = (0..ACTION_DIM)
            .map(|_| rng.random_range(0.0..1.0))
            .collect();
        let sum: f64 = action.iter().sum();
        for a in action.iter_mut() {
            *a /= sum;
        }
        agent.observe(Transition {
            state,
            action,
            reward: rng.random_range(-1.0..1.0),
            next_state,
            done: i % 9 == 0,
        });
    }
    agent
}

/// One `ddpg_update_batchN` group per batch size; returns
/// `(batch_size, per_sample_summary, batched_summary)` rows for the
/// report and the `--check` gate.
fn bench_ddpg_update(c: &mut Harness, batch_sizes: &[usize]) -> Vec<(usize, Summary, Summary)> {
    let mut results = Vec::new();
    for &batch_size in batch_sizes {
        let mut group = c.benchmark_group(format!("ddpg_update_batch{batch_size}"));
        for (label, path) in [
            ("per_sample", UpdatePath::PerSample),
            ("batched", UpdatePath::Batched),
        ] {
            group.bench_function(label, |b| {
                // Each sample times UPDATES_PER_RUN consecutive updates
                // from a freshly seeded agent. Because the two update
                // paths are bitwise-identical, both traverse exactly the
                // same weight trajectory and therefore see exactly the
                // same activation sparsity — a controlled comparison. A
                // free-running agent would drift to a path-dependent
                // weight state mid-measurement and confound the ratio.
                b.iter_batched(
                    || agent_with(path, batch_size),
                    |mut agent| {
                        for _ in 0..UPDATES_PER_RUN {
                            agent.update();
                        }
                        black_box(agent.updates())
                    },
                );
            });
        }
        let summaries = group.finish();
        let get = |id: &str| -> Summary {
            summaries
                .iter()
                .find(|(name, _)| name == id)
                .map(|(_, s)| *s)
                .unwrap_or(Summary {
                    median_ns: f64::NAN,
                    mean_ns: f64::NAN,
                    min_ns: f64::NAN,
                })
        };
        results.push((batch_size, get("per_sample"), get("batched")));
    }
    results
}

/// `--out <path>` value, when present. Relative paths are resolved
/// against the workspace root (cargo runs bench binaries with the
/// package directory as cwd, which is rarely where the artifact should
/// land).
fn out_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let raw = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))?;
    let path = std::path::PathBuf::from(raw);
    if path.is_absolute() {
        return Some(path);
    }
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Some(std::path::Path::new(&dir).join("../..").join(path)),
        Err(_) => Some(path),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");

    let mut h = if quick {
        Harness::default()
            .measurement_time(std::time::Duration::from_millis(300))
            .warm_up_time(std::time::Duration::from_millis(100))
            .sample_size(10)
    } else {
        Harness::default()
            .measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
            .sample_size(20)
    };

    bench_gemm(&mut h);
    let dense = bench_dense_forward(&mut h);
    bench_mlp_train_step(&mut h);
    let ddpg = bench_ddpg_update(&mut h, &[32, 64]);

    let dense_get = |id: &str| -> f64 {
        dense
            .iter()
            .find(|(name, _)| name == id)
            .map_or(f64::NAN, |(_, s)| s.median_ns)
    };
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("state_dim".to_string(), STATE_DIM.into()),
        ("action_dim".to_string(), ACTION_DIM.into()),
        (
            "dense_per_sample_x64_median_ns".to_string(),
            dense_get("per_sample_x64").into(),
        ),
        (
            "dense_forward_batch_median_ns".to_string(),
            dense_get("forward_batch").into(),
        ),
    ];
    let mut gate_failures = Vec::new();
    for (batch_size, per, bat) in &ddpg {
        let speedup = per.median_ns / bat.median_ns;
        // Each sample timed UPDATES_PER_RUN updates; report per-update.
        fields.push((
            format!("ddpg_update_batch{batch_size}_per_sample_median_ns"),
            (per.median_ns / UPDATES_PER_RUN as f64).into(),
        ));
        fields.push((
            format!("ddpg_update_batch{batch_size}_batched_median_ns"),
            (bat.median_ns / UPDATES_PER_RUN as f64).into(),
        ));
        fields.push((
            format!("ddpg_update_batch{batch_size}_speedup_batched"),
            speedup.into(),
        ));
        if *batch_size >= 32 && !(speedup >= 1.0) {
            gate_failures.push((*batch_size, speedup));
        }
    }

    let doc = {
        let mut obj: Vec<(String, JsonValue)> =
            vec![("report".to_string(), "kernels_bench".into())];
        obj.extend(fields.iter().cloned());
        JsonValue::Obj(obj).to_json()
    };
    if let Some(path) = out_path() {
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if json_output() {
        print_json_report("kernels_bench", fields);
    }

    if check {
        if gate_failures.is_empty() {
            eprintln!(
                "check passed: batched DDPG update at least matches per-sample at batch >= 32"
            );
        } else {
            for (batch_size, speedup) in &gate_failures {
                eprintln!(
                    "check FAILED: batched DDPG update slower than per-sample at batch {batch_size} \
                     (speedup {speedup:.3}x)"
                );
            }
            std::process::exit(1);
        }
    }
}
