//! The [`Forecaster`] trait shared by every base model.

/// Errors produced while fitting a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The training series is too short for the model's configuration.
    SeriesTooShort {
        /// Observations required.
        needed: usize,
        /// Observations provided.
        got: usize,
    },
    /// An internal numerical routine failed (singular system, no
    /// convergence, …).
    Numerical {
        /// Human-readable context.
        context: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::SeriesTooShort { needed, got } => {
                write!(f, "series too short: need {needed} observations, got {got}")
            }
            ModelError::Numerical { context } => write!(f, "numerical failure: {context}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Errors surfaced by the checked prediction path
/// ([`Forecaster::try_predict_next`]).
///
/// `predict_next` itself is infallible by contract — implementations fall
/// back rather than fail — but a *misbehaving* member (numerical blow-up,
/// contract violation, injected fault) can still emit a non-finite value
/// or overrun the serving deadline. The checked path classifies those so
/// the serving guard (`eadrl-core`'s `PoolGuard`) can mask the member
/// instead of letting one bad output poison the ensemble dot product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictError {
    /// The model returned NaN or ±Inf; `bits` preserves the exact payload
    /// for diagnostics (NaN payloads are otherwise lost in formatting).
    NonFinite {
        /// Raw IEEE-754 bits of the offending output.
        bits: u64,
    },
    /// The model's declared per-call cost exceeds the serving budget.
    ///
    /// Enforcement is deterministic by design: the cost comes from
    /// [`Forecaster::cost_hint_us`], never from a wall clock — clock
    /// reads on the forecast path would break the repo's bitwise
    /// reproducibility contract (see the `determinism` lint). Real
    /// latency overruns are caught offline by the `eadrl-prof` trace
    /// gate; this variant lets budget policy be tested and enforced
    /// deterministically.
    BudgetExceeded {
        /// Declared per-call cost in microseconds.
        cost_us: u64,
        /// The serving budget it exceeded.
        budget_us: u64,
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NonFinite { bits } => {
                write!(f, "non-finite forecast: {}", f64::from_bits(*bits))
            }
            PredictError::BudgetExceeded { cost_us, budget_us } => {
                write!(f, "per-call cost {cost_us}µs exceeds budget {budget_us}µs")
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// A one-step-ahead univariate forecaster.
///
/// The contract mirrors how the paper uses base models:
///
/// 1. [`Forecaster::fit`] trains on the (75 %) training prefix once,
///    offline;
/// 2. [`Forecaster::predict_next`] is called repeatedly online with the
///    history observed so far (training values plus any test values already
///    revealed) and returns the forecast for the next step.
///
/// `predict_next` must never panic on short histories — implementations
/// fall back to the last observed value (or the training mean) when they
/// cannot produce a proper forecast, because a pool member that panics
/// would take the whole ensemble down.
///
/// `Send + Sync` because the pool's hot paths (fitting, the rolling
/// prediction matrix) fan out across `eadrl-par` workers: fitting moves
/// each boxed member into a worker, prediction shares `&dyn Forecaster`
/// across threads. `predict_next(&self)` therefore must not use interior
/// mutability — a fitted model is immutable while predicting.
pub trait Forecaster: Send + Sync {
    /// Human-readable unique name, e.g. `"ARIMA(2,1,1)"`.
    fn name(&self) -> &str;

    /// Fits the model on a training series (oldest first).
    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError>;

    /// Predicts the value following `history` (oldest first). `history`
    /// always contains at least one value.
    fn predict_next(&self, history: &[f64]) -> f64;

    /// Checked prediction: like [`Forecaster::predict_next`] but classifies
    /// a non-finite output as [`PredictError::NonFinite`] instead of
    /// returning it. The serving guard calls this (under `catch_unwind`)
    /// so one misbehaving pool member degrades gracefully instead of
    /// poisoning the ensemble. The default implementation is correct for
    /// every well-behaved model; override only to surface richer errors.
    fn try_predict_next(&self, history: &[f64]) -> Result<f64, PredictError> {
        let value = self.predict_next(history);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(PredictError::NonFinite {
                bits: value.to_bits(),
            })
        }
    }

    /// Declared worst-case per-call cost in microseconds, if the model
    /// knows one. `None` (the default) opts out of deterministic
    /// latency-budget enforcement — the guard never clocks calls (that
    /// would break bitwise reproducibility); it only compares this
    /// self-declared figure against the configured budget.
    fn cost_hint_us(&self) -> Option<u64> {
        None
    }

    /// Clones the fitted model into a box (object-safe clone).
    fn box_clone(&self) -> Box<dyn Forecaster>;
}

impl Clone for Box<dyn Forecaster> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Fallback forecast used by implementations on degenerate input: the last
/// observed value, or 0.0 for an empty history.
pub fn fallback_forecast(history: &[f64]) -> f64 {
    history.last().copied().unwrap_or(0.0)
}

/// Rolling one-step-ahead forecasts of a fitted model over `test`, given
/// the preceding `train` history. Returns one forecast per test value; the
/// true value is revealed to the model after each prediction (the paper's
/// online evaluation protocol for base models).
pub fn rolling_forecast(model: &dyn Forecaster, train: &[f64], test: &[f64]) -> Vec<f64> {
    // Size the history for the whole walk up front: revealing one
    // actual per step must not re-grow (and re-copy) the buffer.
    let mut history = Vec::with_capacity(train.len() + test.len());
    history.extend_from_slice(train);
    let mut out = Vec::with_capacity(test.len());
    for &actual in test {
        out.push(model.predict_next(&history));
        history.push(actual);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal forecaster for trait-level tests: predicts the mean of the
    /// training series.
    #[derive(Debug, Clone)]
    struct MeanModel {
        mean: f64,
    }

    impl Forecaster for MeanModel {
        fn name(&self) -> &str {
            "Mean"
        }

        fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
            if series.is_empty() {
                return Err(ModelError::SeriesTooShort { needed: 1, got: 0 });
            }
            self.mean = series.iter().sum::<f64>() / series.len() as f64;
            Ok(())
        }

        fn predict_next(&self, _history: &[f64]) -> f64 {
            self.mean
        }

        fn box_clone(&self) -> Box<dyn Forecaster> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut m = MeanModel { mean: 0.0 };
        m.fit(&[1.0, 2.0, 3.0]).unwrap();
        let boxed: Box<dyn Forecaster> = Box::new(m);
        let cloned = boxed.clone();
        assert_eq!(cloned.predict_next(&[9.0]), 2.0);
        assert_eq!(cloned.name(), "Mean");
    }

    #[test]
    fn rolling_forecast_reveals_truth_stepwise() {
        let mut m = MeanModel { mean: 0.0 };
        m.fit(&[4.0, 4.0]).unwrap();
        let preds = rolling_forecast(&m, &[4.0, 4.0], &[1.0, 2.0, 3.0]);
        assert_eq!(preds, vec![4.0, 4.0, 4.0]);
        assert_eq!(preds.len(), 3);
    }

    #[test]
    fn fallback_is_last_value() {
        assert_eq!(fallback_forecast(&[1.0, 7.0]), 7.0);
        assert_eq!(fallback_forecast(&[]), 0.0);
    }

    #[test]
    fn fit_error_on_empty_series() {
        let mut m = MeanModel { mean: 0.0 };
        assert!(matches!(
            m.fit(&[]),
            Err(ModelError::SeriesTooShort { needed: 1, got: 0 })
        ));
    }

    #[test]
    fn try_predict_next_passes_finite_values_through() {
        let mut m = MeanModel { mean: 0.0 };
        m.fit(&[1.0, 3.0]).unwrap();
        assert_eq!(m.try_predict_next(&[5.0]), Ok(2.0));
    }

    #[test]
    fn try_predict_next_classifies_non_finite_output() {
        struct NanModel;
        impl Forecaster for NanModel {
            fn name(&self) -> &str {
                "NaN"
            }
            fn fit(&mut self, _s: &[f64]) -> Result<(), ModelError> {
                Ok(())
            }
            fn predict_next(&self, _h: &[f64]) -> f64 {
                f64::NAN
            }
            fn box_clone(&self) -> Box<dyn Forecaster> {
                Box::new(NanModel)
            }
        }
        match NanModel.try_predict_next(&[1.0]) {
            Err(PredictError::NonFinite { bits }) => {
                assert!(f64::from_bits(bits).is_nan());
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert_eq!(NanModel.cost_hint_us(), None);
    }

    #[test]
    fn predict_error_display_is_informative() {
        let e = PredictError::NonFinite {
            bits: f64::INFINITY.to_bits(),
        };
        assert!(e.to_string().contains("inf"));
        let e2 = PredictError::BudgetExceeded {
            cost_us: 900,
            budget_us: 250,
        };
        assert!(e2.to_string().contains("900"));
        assert!(e2.to_string().contains("250"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ModelError::SeriesTooShort { needed: 10, got: 3 };
        assert!(e.to_string().contains("10"));
        let e2 = ModelError::Numerical {
            context: "singular gram".into(),
        };
        assert!(e2.to_string().contains("singular gram"));
    }
}
