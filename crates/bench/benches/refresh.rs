//! Benchmarks for the online-refresh and serving hot paths: the parallel
//! restart sweep inside `EaDrlPolicy::warm_up`, cold vs warm-start
//! `AdaptiveEaDrl` refresh latency, and the ring-buffered sliding windows
//! against the `Vec::remove(0)` shifts they replaced.
//!
//! Flags (combinable):
//! - `--quick`   shrink the measurement budget for CI smoke runs;
//! - `--json`    print a machine-readable `refresh_bench` report on stdout;
//! - `--out <p>` also write that JSON document to the file `<p>`;
//! - `--check`   exit non-zero if a warm-start refresh is slower than a
//!   cold refresh, or a ring-buffer slide is slower than the shifted-Vec
//!   equivalent (the perf regression gates wired into CI).
//!
//! The restart-scaling group reports warm-up latency at
//! `EADRL_PAR_THREADS` ∈ {1, 2, 4} and is *not* gated: on a single-core
//! runner all thread counts collapse onto one worker and the honest
//! number is ~1.0x (see `EXPERIMENTS.md` for the multi-core protocol).

use eadrl_bench::harness::{Harness, Summary};
use eadrl_bench::{json_output, print_json_report};
use eadrl_core::{
    AdaptiveEaDrl, Combiner, EaDrlConfig, EaDrlPolicy, RefreshStrategy, RefreshTrigger,
};
use eadrl_obs::json::JsonValue;
use eadrl_timeseries::window::{SlideWindow, StepRing};
use std::hint::black_box;

/// Warm-up stream length (validation steps feeding `warm_up`).
const WARM_STEPS: usize = 120;
/// Online steps used to saturate the refresh buffer.
const ONLINE_STEPS: usize = 80;
/// Pool width of the synthetic prediction matrix.
const MODELS: usize = 5;
/// Refinement episodes of the warm-start strategy under test.
const WARM_EPISODES: usize = 2;

fn bench_config() -> EaDrlConfig {
    let mut config = EaDrlConfig::default();
    config.omega = 6;
    config.episodes = 8;
    config.max_iter = 40;
    config.restarts = 2;
    config
}

/// Deterministic synthetic stream: `MODELS` forecasters of staggered
/// quality around a seasonal level (same family as the core tests).
fn stream(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let actuals: Vec<f64> = (0..n)
        .map(|t| (t as f64 / 6.0).sin() * 3.0 + 10.0)
        .collect();
    let preds = actuals
        .iter()
        .enumerate()
        .map(|(t, &a)| {
            let w = ((t * 7) % 13) as f64 / 13.0 - 0.5;
            (0..MODELS)
                .map(|i| a + 0.1 * (i as f64 + 1.0) * w + 0.4 * i as f64)
                .collect()
        })
        .collect();
    (preds, actuals)
}

/// Offline warm-up latency at several `EADRL_PAR_THREADS` settings, with
/// `restarts = 4` so the sweep has work to fan out.
fn bench_restart_scaling(c: &mut Harness) -> Vec<(usize, Summary)> {
    let (preds, actuals) = stream(WARM_STEPS);
    let mut config = bench_config();
    config.restarts = 4;
    let mut group = c.benchmark_group("warm_up_restarts4");
    for threads in [1usize, 2, 4] {
        std::env::set_var(eadrl_par::THREADS_ENV, threads.to_string());
        group.bench_function(format!("threads{threads}"), |b| {
            b.iter_batched(
                || EaDrlPolicy::new(config.clone()),
                |mut policy| {
                    policy.warm_up(&preds, &actuals);
                    black_box(policy.is_trained())
                },
            );
        });
    }
    std::env::remove_var(eadrl_par::THREADS_ENV);
    let summaries = group.finish();
    [1usize, 2, 4]
        .iter()
        .map(|&t| {
            let s = summaries
                .iter()
                .find(|(name, _)| name == &format!("threads{t}"))
                .map(|(_, s)| *s)
                .unwrap_or(Summary {
                    median_ns: f64::NAN,
                    mean_ns: f64::NAN,
                    min_ns: f64::NAN,
                });
            (t, s)
        })
        .collect()
}

/// An adaptive combiner with a trained policy and a saturated refresh
/// buffer — the state a triggered refresh sees in serving.
fn primed_adaptive(strategy: RefreshStrategy) -> AdaptiveEaDrl {
    let (preds, actuals) = stream(WARM_STEPS + ONLINE_STEPS);
    let (wp, op) = preds.split_at(WARM_STEPS);
    let (wa, oa) = actuals.split_at(WARM_STEPS);
    let mut adaptive = AdaptiveEaDrl::new(bench_config(), RefreshTrigger::Never, ONLINE_STEPS)
        .with_strategy(strategy);
    adaptive.warm_up(wp, wa);
    for (p, &a) in op.iter().zip(oa.iter()) {
        adaptive.observe(p, a);
    }
    adaptive
}

/// Cold vs warm-start refresh latency on the same buffer. Each sample
/// times one `refresh_now` (retrain + deploy) on a persistent combiner —
/// exactly the pause a serving loop takes when a trigger fires.
fn bench_refresh_latency(c: &mut Harness) -> Vec<(String, Summary)> {
    let mut group = c.benchmark_group("refresh_latency");
    let mut cold = primed_adaptive(RefreshStrategy::Cold);
    group.bench_function("cold", |b| {
        b.iter(|| {
            cold.refresh_now();
            black_box(cold.refreshes())
        });
    });
    let mut warm = primed_adaptive(RefreshStrategy::WarmStart {
        episodes: WARM_EPISODES,
    });
    group.bench_function("warm_start", |b| {
        b.iter(|| {
            warm.refresh_now();
            black_box(warm.refreshes())
        });
    });
    group.finish()
}

/// Ring-buffered sliding windows against the shifted-Vec equivalents
/// they replaced, at serving-representative and stress window sizes.
fn bench_window_slide(c: &mut Harness, window: usize, steps: usize) -> Vec<(String, Summary)> {
    let mut group = c.benchmark_group(format!("window_slide_w{window}"));
    group.bench_function("vec_shift", |b| {
        let mut buf: Vec<f64> = (0..window).map(|i| i as f64).collect();
        b.iter(|| {
            for i in 0..steps {
                buf.push(i as f64);
                if buf.len() > window {
                    buf.remove(0);
                }
            }
            black_box(buf[0])
        });
    });
    group.bench_function("ring", |b| {
        let mut ring = SlideWindow::new(window);
        ring.assign(&(0..window).map(|i| i as f64).collect::<Vec<f64>>());
        b.iter(|| {
            for i in 0..steps {
                ring.slide(i as f64);
            }
            black_box(ring[0])
        });
    });
    group.finish()
}

/// `(preds, actual)` history recording: the old `to_vec` + shift against
/// `StepRing::record`'s slot reuse.
fn bench_history_record(c: &mut Harness, window: usize, steps: usize) -> Vec<(String, Summary)> {
    let preds: Vec<f64> = (0..MODELS).map(|i| i as f64).collect();
    let mut group = c.benchmark_group(format!("history_record_w{window}"));
    group.bench_function("vec_shift", |b| {
        let mut buf: Vec<(Vec<f64>, f64)> = Vec::new();
        b.iter(|| {
            for i in 0..steps {
                buf.push((preds.to_vec(), i as f64));
                if buf.len() > window {
                    buf.remove(0);
                }
            }
            black_box(buf.len())
        });
    });
    group.bench_function("ring", |b| {
        let mut ring = StepRing::new(window);
        b.iter(|| {
            for i in 0..steps {
                ring.record(&preds, i as f64);
            }
            black_box(ring.len())
        });
    });
    group.finish()
}

/// `--out <path>` value, when present. Relative paths are resolved
/// against the workspace root (cargo runs bench binaries with the
/// package directory as cwd, which is rarely where the artifact should
/// land).
fn out_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let raw = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))?;
    let path = std::path::PathBuf::from(raw);
    if path.is_absolute() {
        return Some(path);
    }
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Some(std::path::Path::new(&dir).join("../..").join(path)),
        Err(_) => Some(path),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");

    let mut h = if quick {
        Harness::default()
            .measurement_time(std::time::Duration::from_millis(300))
            .warm_up_time(std::time::Duration::from_millis(100))
            .sample_size(10)
    } else {
        Harness::default()
            .measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
            .sample_size(20)
    };

    let scaling = bench_restart_scaling(&mut h);
    let refresh = bench_refresh_latency(&mut h);
    let slide_small = bench_window_slide(&mut h, 16, 512);
    let slide_large = bench_window_slide(&mut h, 256, 512);
    let record = bench_history_record(&mut h, 256, 512);

    let pick = |rows: &[(String, Summary)], id: &str| -> f64 {
        rows.iter()
            .find(|(name, _)| name == id)
            .map_or(f64::NAN, |(_, s)| s.median_ns)
    };

    let mut fields: Vec<(String, JsonValue)> = vec![
        ("warm_steps".to_string(), WARM_STEPS.into()),
        ("online_steps".to_string(), ONLINE_STEPS.into()),
        ("models".to_string(), MODELS.into()),
        ("warm_episodes".to_string(), WARM_EPISODES.into()),
        (
            "cores".to_string(),
            std::thread::available_parallelism()
                .map_or(0, |n| n.get())
                .into(),
        ),
    ];
    let serial = scaling
        .iter()
        .find(|(t, _)| *t == 1)
        .map_or(f64::NAN, |(_, s)| s.median_ns);
    for (threads, s) in &scaling {
        fields.push((
            format!("warm_up_restarts4_threads{threads}_median_ns"),
            s.median_ns.into(),
        ));
        fields.push((
            format!("warm_up_restarts4_threads{threads}_speedup"),
            (serial / s.median_ns).into(),
        ));
    }
    let mut gate_failures: Vec<String> = Vec::new();

    let cold = pick(&refresh, "cold");
    let warm = pick(&refresh, "warm_start");
    let refresh_speedup = cold / warm;
    fields.push(("refresh_cold_median_ns".to_string(), cold.into()));
    fields.push(("refresh_warm_start_median_ns".to_string(), warm.into()));
    fields.push((
        "refresh_speedup_warm_start".to_string(),
        refresh_speedup.into(),
    ));
    // NaN (e.g. a zero-time fluke) must also trip the gate, hence the
    // negated comparison rather than `speedup < 1.0`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(refresh_speedup >= 1.0) {
        gate_failures.push(format!(
            "warm-start refresh slower than cold (speedup {refresh_speedup:.3}x)"
        ));
    }

    for (label, rows) in [
        ("window_slide_w16", &slide_small),
        ("window_slide_w256", &slide_large),
        ("history_record_w256", &record),
    ] {
        let shift = pick(rows, "vec_shift");
        let ring = pick(rows, "ring");
        let speedup = shift / ring;
        fields.push((format!("{label}_vec_shift_median_ns"), shift.into()));
        fields.push((format!("{label}_ring_median_ns"), ring.into()));
        fields.push((format!("{label}_speedup_ring"), speedup.into()));
        // The 16-wide window is reported but not gated: at serving-size
        // windows both paths are tens of nanoseconds and the comparison
        // is noise-bound. The 256-wide groups are where `remove(0)`'s
        // O(n) shift must lose to the ring.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if label != "window_slide_w16" && !(speedup >= 1.0) {
            gate_failures.push(format!(
                "{label}: ring slower than shift (speedup {speedup:.3}x)"
            ));
        }
    }

    let doc = {
        let mut obj: Vec<(String, JsonValue)> =
            vec![("report".to_string(), "refresh_bench".into())];
        obj.extend(fields.iter().cloned());
        JsonValue::Obj(obj).to_json()
    };
    if let Some(path) = out_path() {
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if json_output() {
        print_json_report("refresh_bench", fields);
    }

    if check {
        if gate_failures.is_empty() {
            eprintln!(
                "check passed: warm-start refresh at most cold latency; rings at least match shifts"
            );
        } else {
            for failure in &gate_failures {
                eprintln!("check FAILED: {failure}");
            }
            std::process::exit(1);
        }
    }
}
