//! Parallel pool operations: base-model fitting and the rolling
//! pool-prediction matrix, routed through `eadrl-par`.
//!
//! Both operations are embarrassingly parallel across pool members and
//! deterministic per member (every base model is seeded by its own
//! configuration, never by a generator shared across members), so the
//! index-merged [`eadrl_par::par_map`] makes the parallel output
//! bitwise identical to the serial one at every `EADRL_PAR_THREADS`
//! setting — `crates/core/tests/par_determinism.rs` is the differential
//! proof.

use eadrl_models::{rolling_forecast, Forecaster};
use eadrl_obs::Level;

/// Fits every pool member on `fit_part` in parallel, preserving pool
/// order. Returns the fitted members plus the names of the members the
/// series could not support (also in pool order). A member whose `fit`
/// panics is treated as unfittable rather than taking down the sweep.
pub fn fit_pool(
    pool: Vec<Box<dyn Forecaster>>,
    fit_part: &[f64],
) -> (Vec<Box<dyn Forecaster>>, Vec<String>) {
    let fitted = eadrl_par::par_map(pool, |mut model| {
        let outcome = model.fit(fit_part);
        (model, outcome)
    });
    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    match fitted {
        Ok(results) => {
            for (model, outcome) in results {
                match outcome {
                    Ok(()) => kept.push(model),
                    Err(_) => dropped.push(model.name().to_string()),
                }
            }
        }
        Err(err) => {
            // A panicking `fit` violates the Forecaster contract; keep
            // the sweep alive by reporting the whole batch as dropped.
            eadrl_obs::warn(
                "par.panic",
                &[("context", format!("{err}").as_str().into())],
            );
            dropped.push(format!("pool batch lost: {err}"));
        }
    }
    (kept, dropped)
}

/// Rolling one-step prediction matrix `preds[t][i]` of a fitted pool
/// over `segment`, with the preceding history given by `train` — model
/// `i`'s forecasts computed in parallel across the pool, then merged by
/// pool index and transposed into per-step rows.
///
/// The per-model rolling state (the growing history buffer) is
/// allocated once per member up front — not re-sliced and re-grown per
/// timestep — and the transpose pre-sizes every row, so the matrix
/// costs exactly `m + t + 2` allocations for an `m`-model pool over `t`
/// steps.
pub fn prediction_matrix(
    pool: &[Box<dyn Forecaster>],
    train: &[f64],
    segment: &[f64],
) -> Vec<Vec<f64>> {
    let refs: Vec<&dyn Forecaster> = pool.iter().map(AsRef::as_ref).collect();
    let per_model = match eadrl_par::par_map(refs, |model| rolling_forecast(model, train, segment))
    {
        Ok(columns) => columns,
        Err(err) => {
            eadrl_obs::event(
                "par.panic",
                Level::Warn,
                &[("context", format!("{err}").as_str().into())],
            );
            // Serial fallback keeps the forecast path alive; a panic in
            // `predict_next` is a Forecaster-contract violation.
            pool.iter()
                .map(|m| rolling_forecast(m.as_ref(), train, segment))
                .collect()
        }
    };
    let mut rows = Vec::with_capacity(segment.len());
    for t in 0..segment.len() {
        let mut row = Vec::with_capacity(per_model.len());
        for column in &per_model {
            row.push(column[t]);
        }
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadrl_models::{auto_regressive, rolling_forecast, Naive, SeasonalNaive};

    fn series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 4.0 + 10.0)
            .collect()
    }

    fn pool() -> Vec<Box<dyn Forecaster>> {
        vec![
            Box::new(Naive),
            Box::new(SeasonalNaive::new(12)),
            Box::new(auto_regressive(4, 1e-3)),
        ]
    }

    #[test]
    fn fit_pool_keeps_order_and_reports_drops() {
        let s = series(120);
        let mut p = pool();
        p.push(Box::new(SeasonalNaive::new(100_000)));
        let (kept, dropped) = fit_pool(p, &s);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].name(), "Naive");
        assert_eq!(dropped, vec!["SeasonalNaive".to_string()]);
    }

    #[test]
    fn matrix_matches_the_serial_rolling_forecast_bitwise() {
        let s = series(150);
        let (train, seg) = s.split_at(120);
        let (kept, _) = fit_pool(pool(), train);
        let rows = prediction_matrix(&kept, train, seg);
        assert_eq!(rows.len(), seg.len());
        for (i, model) in kept.iter().enumerate() {
            let serial = rolling_forecast(model.as_ref(), train, seg);
            for (t, row) in rows.iter().enumerate() {
                assert_eq!(row[i].to_bits(), serial[t].to_bits(), "model {i} step {t}");
            }
        }
    }
}
