//! Time-delay embedding of univariate series into supervised pairs.
//!
//! The paper applies "time series embedding to dimension k" (k = 5) before
//! training the regression-family base models: each target `x_t` is paired
//! with the feature vector `(x_{t-k}, …, x_{t-1})`.

/// A time-delay-embedded dataset: row `i` of `inputs` are the `k` lagged
/// values preceding `targets[i]`, oldest lag first.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedded {
    /// Lag vectors, one row per supervised example.
    pub inputs: Vec<Vec<f64>>,
    /// Next-step targets aligned with `inputs`.
    pub targets: Vec<f64>,
    /// Embedding dimension used.
    pub dimension: usize,
}

impl Embedded {
    /// Number of supervised examples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no examples could be formed.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// Embeds `series` with dimension `k`, producing `len - k` examples
/// (empty when the series is too short).
pub fn embed(series: &[f64], k: usize) -> Embedded {
    if k == 0 || series.len() <= k {
        return Embedded {
            inputs: Vec::new(),
            targets: Vec::new(),
            dimension: k,
        };
    }
    let n = series.len() - k;
    let mut inputs = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for t in k..series.len() {
        inputs.push(series[t - k..t].to_vec());
        targets.push(series[t]);
    }
    Embedded {
        inputs,
        targets,
        dimension: k,
    }
}

/// Iterator over all length-`w` sliding windows of `series` (overlapping,
/// stride 1). Returns an empty iterator when `w == 0` or the series is
/// shorter than `w`.
pub fn sliding_windows(series: &[f64], w: usize) -> impl Iterator<Item = &[f64]> + '_ {
    let count = if w == 0 || series.len() < w {
        0
    } else {
        series.len() - w + 1
    };
    (0..count).map(move |i| &series[i..i + w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embed_aligns_lags_and_targets() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        let e = embed(&s, 2);
        assert_eq!(e.len(), 3);
        assert_eq!(e.inputs[0], vec![1.0, 2.0]);
        assert_eq!(e.targets[0], 3.0);
        assert_eq!(e.inputs[2], vec![3.0, 4.0]);
        assert_eq!(e.targets[2], 5.0);
        assert_eq!(e.dimension, 2);
    }

    #[test]
    fn embed_too_short_is_empty() {
        assert!(embed(&[1.0, 2.0], 5).is_empty());
        assert!(embed(&[1.0, 2.0], 2).is_empty());
        assert!(embed(&[1.0, 2.0, 3.0], 0).is_empty());
    }

    #[test]
    fn embed_paper_dimension_five() {
        let s: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let e = embed(&s, 5);
        assert_eq!(e.len(), 5);
        assert_eq!(e.inputs[4], vec![4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(e.targets[4], 9.0);
    }

    #[test]
    fn sliding_windows_cover_series() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let w: Vec<&[f64]> = sliding_windows(&s, 2).collect();
        assert_eq!(w, vec![&[1.0, 2.0][..], &[2.0, 3.0], &[3.0, 4.0]]);
    }

    #[test]
    fn sliding_windows_degenerate() {
        let s = [1.0, 2.0];
        assert_eq!(sliding_windows(&s, 3).count(), 0);
        assert_eq!(sliding_windows(&s, 0).count(), 0);
        assert_eq!(sliding_windows(&s, 2).count(), 1);
    }
}
