//! Report rendering: plain text for humans, JSON for machines.
//!
//! All output is deterministic given the same trace — rows follow the
//! tree's DFS order, floats print with fixed precision — so reports
//! can be diffed, committed as goldens, and compared across
//! `EADRL_PAR_THREADS` settings.

use crate::diff::DiffReport;
use crate::trace::Trace;
use crate::tree::{SpanNode, SpanTree};
use crate::workers::Utilization;
use eadrl_obs::json::JsonValue;
use std::fmt::Write as _;

fn flags_of(node: &SpanNode) -> &'static str {
    match (node.open, node.overlap) {
        (true, _) => "open",
        (false, true) => "overlap",
        (false, false) => "",
    }
}

/// Header lines describing what the loader had to tolerate.
fn trace_header(trace: &Trace, out: &mut String) {
    let _ = writeln!(out, "events: {}", trace.events.len());
    if !trace.bad_lines.is_empty() {
        let _ = writeln!(
            out,
            "damaged lines: {} (first at line {})",
            trace.bad_lines.len(),
            trace.bad_lines[0].0
        );
    }
    if let Some(dropped) = trace.ring_dropped {
        let _ = writeln!(out, "ring-dropped events: {dropped} (trace is incomplete)");
    }
}

/// The span-tree report: one indented row per path, DFS order.
pub fn tree_text(tree: &SpanTree, trace: &Trace) -> String {
    let mut out = String::new();
    trace_header(trace, &mut out);
    let _ = writeln!(
        out,
        "{:<52} {:>7} {:>10} {:>10} {:>8} {:>8} {:>8}  flags",
        "path", "count", "total_us", "self_us", "p50", "p95", "p99"
    );
    for node in &tree.nodes {
        let label = format!(
            "{}{}",
            "  ".repeat(node.depth),
            node.path.rsplit('/').next().unwrap_or(&node.path)
        );
        let _ = writeln!(
            out,
            "{label:<52} {:>7} {:>10} {:>10} {:>8} {:>8} {:>8}  {}",
            node.count,
            node.total_us,
            node.self_us,
            node.p50_us,
            node.p95_us,
            node.p99_us,
            flags_of(node)
        );
    }
    out
}

/// Top-N hotspots by self time, worst first (ties break by path).
pub fn hotspots_text(tree: &SpanTree, top: usize) -> String {
    let mut nodes: Vec<&SpanNode> = tree.nodes.iter().filter(|n| n.self_us > 0).collect();
    nodes.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.path.cmp(&b.path)));
    let mut out = String::new();
    let _ = writeln!(out, "top {} by self time:", top.min(nodes.len()));
    for node in nodes.into_iter().take(top) {
        let _ = writeln!(
            out,
            "{:>10}us  {}  (count {})",
            node.self_us, node.path, node.count
        );
    }
    out
}

fn node_json(node: &SpanNode) -> JsonValue {
    JsonValue::Obj(vec![
        ("path".into(), node.path.as_str().into()),
        ("depth".into(), node.depth.into()),
        ("count".into(), node.count.into()),
        ("total_us".into(), node.total_us.into()),
        ("self_us".into(), node.self_us.into()),
        ("p50_us".into(), node.p50_us.into()),
        ("p95_us".into(), node.p95_us.into()),
        ("p99_us".into(), node.p99_us.into()),
        ("open".into(), node.open.into()),
        ("overlap".into(), node.overlap.into()),
    ])
}

/// The span-tree report as one JSON document.
pub fn tree_json(tree: &SpanTree, trace: &Trace) -> JsonValue {
    JsonValue::Obj(vec![
        ("events".into(), trace.events.len().into()),
        ("damaged_lines".into(), trace.bad_lines.len().into()),
        (
            "ring_dropped".into(),
            trace.ring_dropped.map_or(JsonValue::Null, |d| d.into()),
        ),
        (
            "nodes".into(),
            JsonValue::Arr(tree.nodes.iter().map(node_json).collect()),
        ),
    ])
}

/// Two-decimal fixed formatting: deterministic across platforms.
fn fixed2(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "inf".to_string()
    }
}

/// The worker-utilization report as text.
pub fn workers_text(util: &Utilization) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>7} {:>8} {:>10} {:>14}",
        "worker", "chunks", "items", "busy_us", "queue_wait_us"
    );
    for w in &util.workers {
        let _ = writeln!(
            out,
            "{:>6} {:>7} {:>8} {:>10} {:>14}",
            w.worker, w.chunks, w.items, w.busy_us, w.queue_wait_us
        );
    }
    let _ = writeln!(
        out,
        "total busy: {}us over {} items",
        util.total_busy_us(),
        util.total_items()
    );
    let _ = writeln!(
        out,
        "imbalance ratio (max/mean busy): {}",
        fixed2(util.imbalance_ratio())
    );
    let _ = writeln!(
        out,
        "item skew (max/mean items): {}",
        fixed2(util.item_skew())
    );
    out
}

/// The worker-utilization report as JSON.
pub fn workers_json(util: &Utilization) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "workers".into(),
            JsonValue::Arr(
                util.workers
                    .iter()
                    .map(|w| {
                        JsonValue::Obj(vec![
                            ("worker".into(), w.worker.into()),
                            ("chunks".into(), w.chunks.into()),
                            ("items".into(), w.items.into()),
                            ("busy_us".into(), w.busy_us.into()),
                            ("queue_wait_us".into(), w.queue_wait_us.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_busy_us".into(), util.total_busy_us().into()),
        ("total_items".into(), util.total_items().into()),
        ("imbalance_ratio".into(), util.imbalance_ratio().into()),
        ("item_skew".into(), util.item_skew().into()),
    ])
}

/// The latency diff as text: every compared path, regressions marked.
pub fn diff_text(report: &DiffReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "threshold: {}x, noise floor: {}us",
        fixed2(report.threshold),
        report.min_us
    );
    let _ = writeln!(
        out,
        "{:<52} {:>10} {:>10} {:>8}  verdict",
        "path", "base_us", "new_us", "ratio"
    );
    for d in &report.deltas {
        let _ = writeln!(
            out,
            "{:<52} {:>10} {:>10} {:>8}  {}",
            d.path,
            d.base_total_us,
            d.new_total_us,
            fixed2(d.ratio),
            if d.regressed { "REGRESSED" } else { "ok" }
        );
    }
    let regressions = report.regressions();
    if regressions.is_empty() {
        let _ = writeln!(out, "no regressions");
    } else {
        let _ = writeln!(out, "{} regression(s), worst first:", regressions.len());
        for d in regressions {
            let _ = writeln!(out, "  {}x  {}", fixed2(d.ratio), d.path);
        }
    }
    out
}

/// The latency diff as JSON.
pub fn diff_json(report: &DiffReport) -> JsonValue {
    JsonValue::Obj(vec![
        ("threshold".into(), report.threshold.into()),
        ("min_us".into(), report.min_us.into()),
        ("regressed".into(), report.has_regressions().into()),
        (
            "deltas".into(),
            JsonValue::Arr(
                report
                    .deltas
                    .iter()
                    .map(|d| {
                        JsonValue::Obj(vec![
                            ("path".into(), d.path.as_str().into()),
                            ("base_total_us".into(), d.base_total_us.into()),
                            ("new_total_us".into(), d.new_total_us.into()),
                            ("base_count".into(), d.base_count.into()),
                            ("new_count".into(), d.new_count.into()),
                            // infinity is not JSON; ratio of a new path
                            // renders as null.
                            (
                                "ratio".into(),
                                if d.ratio.is_finite() {
                                    d.ratio.into()
                                } else {
                                    JsonValue::Null
                                },
                            ),
                            ("regressed".into(), d.regressed.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::DiffOptions;
    use crate::tree::TreeOptions;
    use eadrl_obs::{Event, EventKind, Level};

    fn sample_trace() -> Trace {
        let lines = [
            Event::new("fit/train.step", EventKind::Span, Level::Info)
                .field("duration_us", 700u64)
                .to_json_line(),
            Event::new("fit", EventKind::Span, Level::Info)
                .field("duration_us", 1000u64)
                .to_json_line(),
        ];
        Trace::from_jsonl(&lines.join("\n"))
    }

    #[test]
    fn text_report_is_deterministic_and_indented() {
        let trace = sample_trace();
        let tree = SpanTree::build(&trace, &TreeOptions::default());
        let a = tree_text(&tree, &trace);
        let b = tree_text(&tree, &trace);
        assert_eq!(a, b);
        assert!(a.contains("events: 2"));
        assert!(
            a.contains("\n  train.step"),
            "child row indents under parent:\n{a}"
        );
    }

    #[test]
    fn json_report_parses_and_carries_the_numbers() {
        let trace = sample_trace();
        let tree = SpanTree::build(&trace, &TreeOptions::default());
        let doc = eadrl_obs::json::parse(&tree_json(&tree, &trace).to_json()).expect("valid JSON");
        let nodes = doc.get("nodes").and_then(JsonValue::as_arr).expect("nodes");
        assert_eq!(nodes.len(), 2);
        assert_eq!(
            nodes[0].get("path").and_then(JsonValue::as_str),
            Some("fit")
        );
        assert_eq!(
            nodes[0].get("self_us").and_then(JsonValue::as_f64),
            Some(300.0)
        );
    }

    #[test]
    fn diff_json_renders_infinite_ratio_as_null() {
        let base = SpanTree::build(&Trace::from_jsonl(""), &TreeOptions::default());
        let trace = sample_trace();
        let new = SpanTree::build(&trace, &TreeOptions::default());
        let report = DiffReport::compare(&base, &new, &DiffOptions::default());
        let doc = eadrl_obs::json::parse(&diff_json(&report).to_json()).expect("valid JSON");
        let deltas = doc
            .get("deltas")
            .and_then(JsonValue::as_arr)
            .expect("deltas");
        assert!(!deltas.is_empty());
        assert_eq!(deltas[0].get("ratio"), Some(&JsonValue::Null));
    }
}
