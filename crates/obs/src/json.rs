//! A minimal JSON value type with a writer and a recursive-descent
//! parser — just enough for the JSONL event sink and its validator, so
//! the crate stays free of external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Numbers are `f64` (JSON has one number type);
/// non-finite values serialize as `null`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Key order is preserved as written.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields as a map (later duplicates win); `None` on non-objects.
    pub fn as_map(&self) -> Option<BTreeMap<&str, &JsonValue>> {
        match self {
            JsonValue::Obj(fields) => Some(fields.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(*n, out),
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<&[f64]> for JsonValue {
    fn from(v: &[f64]) -> Self {
        JsonValue::Arr(v.iter().map(|&x| JsonValue::Num(x)).collect())
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null keeps the line parseable.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // `0.0 as i64` would erase the sign of negative zero.
        out.push_str("-0");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Integral values (timestamps, counts) print without the ".0"
        // so downstream integer parsers accept them.
        let _ = fmt::write(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::write(out, format_args!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped, ASCII-safe) run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: only the BMP and valid pairs
                            // are produced by our writer; reject the rest.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let v = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("a\"b\\c\nd".into())),
            ("n".into(), JsonValue::Num(-1.25e3)),
            ("ok".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            (
                "arr".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(0.5)]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(JsonValue::Num(42.0).to_json(), "42");
        assert_eq!(JsonValue::Num(0.5).to_json(), "0.5");
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        assert_eq!(parse(" { } ").unwrap(), JsonValue::Obj(vec![]),);
        assert_eq!(parse("[ ]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse(" 3e2 ").unwrap(), JsonValue::Num(300.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            parse("\"\\u00e9\\t\"").unwrap(),
            JsonValue::Str("é\t".into())
        );
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": 1, "b": "x", "c": [2]}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }
}
