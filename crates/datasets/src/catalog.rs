//! The 20-dataset catalogue mirroring Table I of the EA-DRL paper.

use crate::components::SeriesBuilder;
use eadrl_timeseries::{Frequency, TimeSeries};

/// Identifier of one of the paper's 20 evaluation series (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// 1 — Water consumption, Oporto city (daily).
    WaterConsumption,
    /// 2 — Humidity, bike sharing (hourly).
    BikeHumidity,
    /// 3 — Windspeed, bike sharing (hourly).
    BikeWindspeed,
    /// 4 — Total bike rentals (hourly).
    BikeRentals,
    /// 5 — Vatnsdalsa river flow (daily).
    RiverFlow,
    /// 6 — Total cloud cover, weather data (hourly).
    CloudCover,
    /// 7 — Precipitation, weather data (hourly).
    Precipitation,
    /// 8 — Global horizontal radiation, solar monitoring (hourly).
    SolarRadiation,
    /// 9 — Taxi demand, Porto, stand 1 (half-hourly).
    TaxiDemand1,
    /// 10 — Taxi demand, Porto, stand 2 (half-hourly).
    TaxiDemand2,
    /// 11 — NH4 concentration in wastewater (10-minute).
    Nh4Concentration,
    /// 12 — Humidity RH3, appliances energy (10-minute).
    EnergyHumidity3,
    /// 13 — Humidity RH4, appliances energy (10-minute).
    EnergyHumidity4,
    /// 14 — Humidity RH5, appliances energy (10-minute).
    EnergyHumidity5,
    /// 15 — Outdoor temperature T_out, appliances energy (10-minute).
    EnergyTempOut,
    /// 16 — Wind speed, appliances energy (10-minute).
    EnergyWindSpeed,
    /// 17 — Dew point, appliances energy (10-minute).
    EnergyDewPoint,
    /// 18 — France CAC stock index (10-minute).
    StockCac,
    /// 19 — Germany DAX (Ibis) stock index (10-minute).
    StockDax,
    /// 20 — Switzerland SMI stock index (10-minute).
    StockSmi,
}

impl DatasetId {
    /// All 20 ids in Table I order.
    pub fn all() -> [DatasetId; 20] {
        use DatasetId::*;
        [
            WaterConsumption,
            BikeHumidity,
            BikeWindspeed,
            BikeRentals,
            RiverFlow,
            CloudCover,
            Precipitation,
            SolarRadiation,
            TaxiDemand1,
            TaxiDemand2,
            Nh4Concentration,
            EnergyHumidity3,
            EnergyHumidity4,
            EnergyHumidity5,
            EnergyTempOut,
            EnergyWindSpeed,
            EnergyDewPoint,
            StockCac,
            StockDax,
            StockSmi,
        ]
    }

    /// The 1-based numeric id used in Table I.
    pub fn number(self) -> usize {
        // eadrl-lint: allow(panic-reachable): all() enumerates every variant, so position() always finds self
        DatasetId::all().iter().position(|&d| d == self).unwrap() + 1
    }

    /// Looks up a dataset by its Table I number (1–20).
    pub fn from_number(number: usize) -> Option<DatasetId> {
        (1..=20)
            .contains(&number)
            .then(|| DatasetId::all()[number - 1])
    }

    /// Looks up a dataset by its Table I display name (case-insensitive).
    pub fn from_name(name: &str) -> Option<DatasetId> {
        let wanted = name.trim().to_lowercase();
        catalog()
            .into_iter()
            .find(|spec| spec.name.to_lowercase() == wanted)
            .map(|spec| spec.id)
    }
}

/// Metadata row of the catalogue (one per Table I entry).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which series this is.
    pub id: DatasetId,
    /// Display name matching Table I.
    pub name: &'static str,
    /// Data source label from Table I.
    pub source: &'static str,
    /// Sampling cadence.
    pub frequency: Frequency,
    /// One-line description of the synthetic structure used.
    pub characteristics: &'static str,
}

/// Returns the full 20-entry catalogue in Table I order.
pub fn catalog() -> Vec<DatasetSpec> {
    use DatasetId::*;
    vec![
        DatasetSpec {
            id: WaterConsumption,
            name: "Water consumption",
            source: "Oporto city",
            frequency: Frequency::Daily,
            characteristics: "weekly seasonality, mild upward trend, level-shift drift",
        },
        DatasetSpec {
            id: BikeHumidity,
            name: "Humidity",
            source: "Bike sharing",
            frequency: Frequency::Hourly,
            characteristics: "daily cycle, strongly autocorrelated noise, bounded",
        },
        DatasetSpec {
            id: BikeWindspeed,
            name: "Windspeed",
            source: "Bike sharing",
            frequency: Frequency::Hourly,
            characteristics: "weak seasonality, gusty heteroskedastic noise, non-negative",
        },
        DatasetSpec {
            id: BikeRentals,
            name: "Total bike rentals",
            source: "Bike sharing",
            frequency: Frequency::Hourly,
            characteristics: "double daily peak, weekend break, demand bursts",
        },
        DatasetSpec {
            id: RiverFlow,
            name: "Vatnsdalsa",
            source: "River flow",
            frequency: Frequency::Daily,
            characteristics: "annual cycle, melt-season volatility regime, non-negative",
        },
        DatasetSpec {
            id: CloudCover,
            name: "Total cloud cover",
            source: "Weather data",
            frequency: Frequency::Hourly,
            characteristics: "persistent AR noise, regime switches, bounded",
        },
        DatasetSpec {
            id: Precipitation,
            name: "Precipitation",
            source: "Weather data",
            frequency: Frequency::Hourly,
            characteristics: "intermittent bursts, highly skewed, non-negative",
        },
        DatasetSpec {
            id: SolarRadiation,
            name: "Global horizontal radiation",
            source: "Solar radiation monitoring",
            frequency: Frequency::Hourly,
            characteristics: "strong daily cycle, cloud-induced dips, non-negative",
        },
        DatasetSpec {
            id: TaxiDemand1,
            name: "Taxi Demand 1",
            source: "Porto Taxi Data",
            frequency: Frequency::HalfHourly,
            characteristics: "daily + weekly cycle, demand drift mid-series",
        },
        DatasetSpec {
            id: TaxiDemand2,
            name: "Taxi Demand 2",
            source: "Porto Taxi Data",
            frequency: Frequency::HalfHourly,
            characteristics: "daily cycle, seasonal-amplitude break, bursts",
        },
        DatasetSpec {
            id: Nh4Concentration,
            name: "NH4 concentration",
            source: "NH4 in wastewater",
            frequency: Frequency::TenMinutes,
            characteristics: "slow diurnal cycle, plant-load level shifts",
        },
        DatasetSpec {
            id: EnergyHumidity3,
            name: "Humidity RH3",
            source: "Appliances Energy",
            frequency: Frequency::TenMinutes,
            characteristics: "daily cycle, strong persistence, bounded",
        },
        DatasetSpec {
            id: EnergyHumidity4,
            name: "Humidity RH4",
            source: "Appliances Energy",
            frequency: Frequency::TenMinutes,
            characteristics: "daily cycle, different phase, level drift",
        },
        DatasetSpec {
            id: EnergyHumidity5,
            name: "Humidity RH5",
            source: "Appliances Energy",
            frequency: Frequency::TenMinutes,
            characteristics: "noisier bathroom channel with bursts",
        },
        DatasetSpec {
            id: EnergyTempOut,
            name: "Temperature Tout",
            source: "Appliances Energy",
            frequency: Frequency::TenMinutes,
            characteristics: "daily cycle over seasonal warming trend",
        },
        DatasetSpec {
            id: EnergyWindSpeed,
            name: "Wind speed",
            source: "Appliances Energy",
            frequency: Frequency::TenMinutes,
            characteristics: "gusty, weak cycle, non-negative",
        },
        DatasetSpec {
            id: EnergyDewPoint,
            name: "Tdewpoint",
            source: "Appliances Energy",
            frequency: Frequency::TenMinutes,
            characteristics: "smooth persistent channel with trend",
        },
        DatasetSpec {
            id: StockCac,
            name: "France CAC",
            source: "European stock indices",
            frequency: Frequency::TenMinutes,
            characteristics: "random walk, volatility clustering, gentle drift",
        },
        DatasetSpec {
            id: StockDax,
            name: "Germany DAX (Ibis)",
            source: "European stock indices",
            frequency: Frequency::TenMinutes,
            characteristics: "random walk with jump (level shift)",
        },
        DatasetSpec {
            id: StockSmi,
            name: "Switzerland SMI",
            source: "European stock indices",
            frequency: Frequency::TenMinutes,
            characteristics: "random walk, calmer volatility, trend regime",
        },
    ]
}

/// Generates dataset `id` with `length` observations.
///
/// `seed` perturbs the noise realization while keeping the structural
/// recipe fixed; the per-dataset base seed is mixed in so different
/// datasets never share a noise stream.
pub fn generate(id: DatasetId, length: usize, seed: u64) -> TimeSeries {
    let spec_seed = (id.number() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
    let spec = catalog()
        .into_iter()
        .find(|s| s.id == id)
        .expect("catalog covers all ids"); // eadrl-lint: allow(panic-reachable): catalog() is built from DatasetId::all(), so every id has a spec
    let values = match id {
        DatasetId::WaterConsumption => SeriesBuilder::new(spec_seed, 300.0)
            .seasonal(7.0, 25.0, 0.0)
            .trend(0.03)
            .arma_noise(0.6, 0.2, 8.0)
            .level_shift(0.55, 30.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::BikeHumidity => SeriesBuilder::new(spec_seed, 60.0)
            .seasonal(24.0, 12.0, 6.0)
            .arma_noise(0.85, 0.0, 3.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::BikeWindspeed => SeriesBuilder::new(spec_seed, 12.0)
            .seasonal(24.0, 2.0, 0.0)
            .arma_noise(0.4, 0.3, 3.0)
            .volatility_regime(0.3, 0.45, 2.5)
            .clamp_min(0.0)
            .build(length),
        DatasetId::BikeRentals => SeriesBuilder::new(spec_seed, 150.0)
            .seasonal(24.0, 80.0, 8.0)
            .seasonal(12.0, 35.0, 3.0)
            .seasonal(168.0, 25.0, 0.0)
            .seasonal_break(0.6, 1.4)
            .arma_noise(0.5, 0.1, 18.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::RiverFlow => SeriesBuilder::new(spec_seed, 18.0)
            .seasonal(365.0, 8.0, 100.0)
            .arma_noise(0.7, 0.2, 2.0)
            .volatility_regime(0.35, 0.55, 3.0)
            .clamp_min(0.5)
            .build(length),
        DatasetId::CloudCover => SeriesBuilder::new(spec_seed, 50.0)
            .seasonal(24.0, 8.0, 0.0)
            .arma_noise(0.9, 0.0, 6.0)
            .level_shift(0.45, -12.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::Precipitation => SeriesBuilder::new(spec_seed, 0.4)
            .arma_noise(0.3, 0.5, 0.8)
            .volatility_regime(0.2, 0.3, 4.0)
            .volatility_regime(0.7, 0.8, 5.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::SolarRadiation => SeriesBuilder::new(spec_seed, 250.0)
            .seasonal(24.0, 230.0, 18.0)
            .arma_noise(0.6, 0.0, 35.0)
            .seasonal_break(0.5, 1.25)
            .clamp_min(0.0)
            .build(length),
        DatasetId::TaxiDemand1 => SeriesBuilder::new(spec_seed, 40.0)
            .seasonal(48.0, 18.0, 10.0)
            .seasonal(336.0, 8.0, 0.0)
            .arma_noise(0.5, 0.2, 5.0)
            .level_shift(0.5, 14.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::TaxiDemand2 => SeriesBuilder::new(spec_seed, 25.0)
            .seasonal(48.0, 12.0, 0.0)
            .seasonal_break(0.55, 1.8)
            .arma_noise(0.45, 0.3, 4.0)
            .volatility_regime(0.8, 0.95, 2.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::Nh4Concentration => SeriesBuilder::new(spec_seed, 28.0)
            .seasonal(144.0, 6.0, 20.0)
            .arma_noise(0.8, 0.1, 1.5)
            .level_shift(0.4, 6.0)
            .level_shift(0.75, -4.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::EnergyHumidity3 => SeriesBuilder::new(spec_seed, 42.0)
            .seasonal(144.0, 5.0, 0.0)
            .arma_noise(0.92, 0.0, 0.8)
            .clamp_min(0.0)
            .build(length),
        DatasetId::EnergyHumidity4 => SeriesBuilder::new(spec_seed, 40.0)
            .seasonal(144.0, 4.5, 48.0)
            .arma_noise(0.9, 0.0, 0.9)
            .level_shift(0.6, 3.5)
            .clamp_min(0.0)
            .build(length),
        DatasetId::EnergyHumidity5 => SeriesBuilder::new(spec_seed, 52.0)
            .seasonal(144.0, 6.0, 72.0)
            .arma_noise(0.7, 0.3, 2.5)
            .volatility_regime(0.25, 0.35, 3.0)
            .clamp_min(0.0)
            .build(length),
        DatasetId::EnergyTempOut => SeriesBuilder::new(spec_seed, 6.0)
            .seasonal(144.0, 4.0, 0.0)
            .trend(0.004)
            .arma_noise(0.88, 0.0, 0.6)
            .build(length),
        DatasetId::EnergyWindSpeed => SeriesBuilder::new(spec_seed, 3.5)
            .seasonal(144.0, 0.8, 30.0)
            .arma_noise(0.5, 0.4, 1.2)
            .volatility_regime(0.5, 0.65, 2.2)
            .clamp_min(0.0)
            .build(length),
        DatasetId::EnergyDewPoint => SeriesBuilder::new(spec_seed, 2.0)
            .seasonal(144.0, 2.0, 100.0)
            .trend(0.003)
            .arma_noise(0.93, 0.0, 0.35)
            .build(length),
        DatasetId::StockCac => SeriesBuilder::new(spec_seed, 4400.0)
            .random_walk(6.0)
            .volatility_regime(0.6, 0.75, 3.0)
            .trend(0.05)
            .clamp_min(1.0)
            .build(length),
        DatasetId::StockDax => SeriesBuilder::new(spec_seed, 9800.0)
            .random_walk(10.0)
            .level_shift(0.5, -180.0)
            .clamp_min(1.0)
            .build(length),
        DatasetId::StockSmi => SeriesBuilder::new(spec_seed, 7900.0)
            .random_walk(5.0)
            .trend(0.12)
            .volatility_regime(0.3, 0.4, 2.0)
            .clamp_min(1.0)
            .build(length),
    };
    TimeSeries::new(spec.name, spec.frequency, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_twenty_entries_in_order() {
        let cat = catalog();
        assert_eq!(cat.len(), 20);
        for (i, spec) in cat.iter().enumerate() {
            assert_eq!(spec.id.number(), i + 1);
        }
        assert_eq!(cat[0].name, "Water consumption");
        assert_eq!(cat[19].name, "Switzerland SMI");
    }

    #[test]
    fn numeric_and_name_lookups_roundtrip() {
        for id in DatasetId::all() {
            assert_eq!(DatasetId::from_number(id.number()), Some(id));
        }
        assert_eq!(DatasetId::from_number(0), None);
        assert_eq!(DatasetId::from_number(21), None);
        assert_eq!(
            DatasetId::from_name("taxi demand 1"),
            Some(DatasetId::TaxiDemand1)
        );
        assert_eq!(
            DatasetId::from_name("France CAC"),
            Some(DatasetId::StockCac)
        );
        assert_eq!(DatasetId::from_name("nope"), None);
    }

    #[test]
    fn generate_covers_every_id_deterministically() {
        for id in DatasetId::all() {
            let a = generate(id, 200, 42);
            let b = generate(id, 200, 42);
            assert_eq!(a.values(), b.values(), "{id:?} not deterministic");
            assert_eq!(a.len(), 200);
            assert!(
                a.values().iter().all(|v| v.is_finite()),
                "{id:?} non-finite"
            );
        }
    }

    #[test]
    fn different_datasets_have_different_realizations() {
        let a = generate(DatasetId::TaxiDemand1, 100, 7);
        let b = generate(DatasetId::TaxiDemand2, 100, 7);
        assert_ne!(a.values(), b.values());
    }

    #[test]
    fn seed_changes_noise_not_structure() {
        let a = generate(DatasetId::SolarRadiation, 300, 1);
        let b = generate(DatasetId::SolarRadiation, 300, 2);
        assert_ne!(a.values(), b.values());
        // Same structural backbone: means within a factor of noise.
        assert!((a.mean() - b.mean()).abs() < 0.5 * a.mean().abs().max(1.0));
    }

    #[test]
    fn non_negative_series_respect_clamp() {
        for id in [
            DatasetId::WaterConsumption,
            DatasetId::Precipitation,
            DatasetId::TaxiDemand1,
            DatasetId::SolarRadiation,
        ] {
            let s = generate(id, 500, 3);
            assert!(s.min().unwrap() >= 0.0, "{id:?} went negative");
        }
    }

    #[test]
    fn stock_series_look_like_random_walks() {
        // Lag-1 autocorrelation of a random walk is close to 1.
        let s = generate(DatasetId::StockDax, 800, 5);
        let a = eadrl_timeseries::stats::acf(s.values(), 1);
        assert!(a[1] > 0.95, "lag-1 acf = {}", a[1]);
    }

    #[test]
    fn seasonal_series_show_their_period() {
        let s = generate(DatasetId::BikeRentals, 600, 9);
        let a = eadrl_timeseries::stats::acf(s.values(), 30);
        // ACF at the daily period (24) should beat the mid-cycle lag (12).
        assert!(a[24] > a[12], "acf24 = {}, acf12 = {}", a[24], a[12]);
    }

    #[test]
    fn seasonal_generators_carry_measurable_seasonality() {
        use eadrl_timeseries::decompose::decompose_additive;
        // Strongly seasonal series should decompose with high seasonal
        // strength at their natural period; the random-walk stocks should
        // not.
        for (id, period, min_strength) in [
            (DatasetId::BikeRentals, 24, 0.5),
            (DatasetId::SolarRadiation, 24, 0.5),
            (DatasetId::TaxiDemand1, 48, 0.4),
        ] {
            let s = generate(id, 600, 11);
            let d = decompose_additive(s.values(), period).expect("long enough");
            assert!(
                d.seasonal_strength() > min_strength,
                "{id:?} seasonal strength {:.3} < {min_strength}",
                d.seasonal_strength()
            );
        }
        let stock = generate(DatasetId::StockCac, 600, 11);
        let d = decompose_additive(stock.values(), 144).unwrap();
        assert!(
            d.seasonal_strength() < 0.4,
            "stock series should not be strongly seasonal: {:.3}",
            d.seasonal_strength()
        );
    }

    #[test]
    fn table_one_frequencies_match_paper() {
        let cat = catalog();
        assert_eq!(cat[0].frequency, Frequency::Daily); // water
        assert_eq!(cat[3].frequency, Frequency::Hourly); // bike rentals
        assert_eq!(cat[8].frequency, Frequency::HalfHourly); // taxi 1
        assert_eq!(cat[17].frequency, Frequency::TenMinutes); // CAC
    }
}
