//! Quickstart: train EA-DRL on a synthetic taxi-demand series and forecast.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eadrl::core::{EaDrl, EaDrlConfig};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::quick_pool;
use eadrl::timeseries::metrics::rmse;

fn main() {
    // 1. Data: a half-hourly taxi-demand series with daily seasonality and
    //    a mid-series demand drift (synthetic stand-in for Table I, id 9).
    let series = generate(DatasetId::TaxiDemand1, 480, 42);
    let (train, test) = series.split(0.75);
    println!(
        "dataset: {} ({} observations, {} train / {} test)",
        series.name(),
        series.len(),
        train.len(),
        test.len()
    );

    // 2. Model: a pool of heterogeneous base forecasters plus the EA-DRL
    //    aggregation policy. `quick_pool` is the fast 8-model pool; swap in
    //    `standard_pool` for the paper's 43 models.
    let pool = quick_pool(5, 48, 7);
    let mut config = EaDrlConfig::default();
    config.episodes = 30; // keep the example snappy
    let mut model = EaDrl::new(pool, config);

    // 3. Offline phase: fit the pool, learn the combination policy.
    model.fit(train).expect("series is long enough");
    println!(
        "pool: {} models ({} dropped), policy trained over {} episodes",
        model.n_models(),
        model.dropped_models().len(),
        model.learning_curve().len()
    );

    // 4. Current ensemble weights (one actor forward pass).
    let weights = model.current_weights();
    let names = model.model_names();
    let mut ranked: Vec<(&str, f64)> = names.iter().copied().zip(weights).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop ensemble weights:");
    for (name, w) in ranked.iter().take(4) {
        println!("  {name:<22} {w:.3}");
    }

    // 5. Online phase (Algorithm 1): forecast the whole test horizon
    //    recursively, then score against the truth.
    let forecast = model.forecast(train, test.len());
    println!(
        "\nrecursive {}-step forecast RMSE: {:.3}",
        test.len(),
        rmse(test, &forecast)
    );

    // One-step-ahead rolling forecasts (truth revealed after each step)
    // are what the paper's Table II evaluates:
    let mut history = train.to_vec();
    let mut one_step = Vec::with_capacity(test.len());
    for &actual in test {
        one_step.push(model.predict_next(&history));
        history.push(actual);
    }
    println!(
        "rolling one-step forecast RMSE:  {:.3}",
        rmse(test, &one_step)
    );
}
