//! Forecast accuracy metrics.
//!
//! RMSE is the paper's headline metric; NRMSE feeds the Figure-2a reward
//! ablation (`reward = 1 - NRMSE`).

/// Mean squared error. Returns `f64::NAN` for empty or mismatched inputs.
pub fn mse(actual: &[f64], predicted: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != predicted.len() {
        return f64::NAN;
    }
    actual
        .iter()
        .zip(predicted.iter())
        .map(|(a, p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
///
/// ```
/// use eadrl_timeseries::metrics::rmse;
/// let err = rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 5.0]);
/// assert!((err - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
/// ```
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    mse(actual, predicted).sqrt()
}

/// RMSE normalized by the range of the actual values.
///
/// When the actuals are constant (zero range) the normalizer falls back to
/// `max(|mean|, 1)` so the metric stays finite — exactly the degenerate case
/// the paper cites as making error-magnitude rewards unstable.
pub fn nrmse(actual: &[f64], predicted: &[f64]) -> f64 {
    let r = rmse(actual, predicted);
    if r.is_nan() {
        return f64::NAN;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &a in actual {
        lo = lo.min(a);
        hi = hi.max(a);
    }
    let range = hi - lo;
    if range > 1e-12 {
        r / range
    } else {
        let mean = actual.iter().sum::<f64>() / actual.len() as f64;
        r / mean.abs().max(1.0)
    }
}

/// Mean absolute error.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != predicted.len() {
        return f64::NAN;
    }
    actual
        .iter()
        .zip(predicted.iter())
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Mean absolute percentage error (in percent). Observations with
/// `|actual| < 1e-12` are skipped; returns NaN when none remain.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != predicted.len() {
        return f64::NAN;
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for (a, p) in actual.iter().zip(predicted.iter()) {
        if a.abs() >= 1e-12 {
            sum += ((a - p) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        f64::NAN
    } else {
        100.0 * sum / count as f64
    }
}

/// Symmetric MAPE (in percent), bounded in `[0, 200]`. Pairs where both
/// values are ~0 contribute zero error.
pub fn smape(actual: &[f64], predicted: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != predicted.len() {
        return f64::NAN;
    }
    let sum: f64 = actual
        .iter()
        .zip(predicted.iter())
        .map(|(a, p)| {
            let denom = (a.abs() + p.abs()) / 2.0;
            if denom < 1e-12 {
                0.0
            } else {
                (a - p).abs() / denom
            }
        })
        .sum();
    100.0 * sum / actual.len() as f64
}

/// Coefficient of determination R². NaN on empty/mismatched input; can be
/// negative for models worse than the mean predictor. Returns 1 for a
/// perfect fit to a constant series.
pub fn r2(actual: &[f64], predicted: &[f64]) -> f64 {
    if actual.is_empty() || actual.len() != predicted.len() {
        return f64::NAN;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted.iter())
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    if ss_tot < 1e-300 {
        if ss_res < 1e-300 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

    #[test]
    fn perfect_prediction_is_zero_error() {
        assert_eq!(mse(&A, &A), 0.0);
        assert_eq!(rmse(&A, &A), 0.0);
        assert_eq!(mae(&A, &A), 0.0);
        assert_eq!(mape(&A, &A), 0.0);
        assert_eq!(smape(&A, &A), 0.0);
        assert_eq!(r2(&A, &A), 1.0);
        assert_eq!(nrmse(&A, &A), 0.0);
    }

    #[test]
    fn known_values() {
        let p = [2.0, 2.0, 2.0, 2.0];
        // errors: -1, 0, 1, 2 -> mse = 6/4
        assert!((mse(&A, &p) - 1.5).abs() < 1e-12);
        assert!((rmse(&A, &p) - 1.5f64.sqrt()).abs() < 1e-12);
        assert!((mae(&A, &p) - 1.0).abs() < 1e-12);
        // nrmse: range = 3
        assert!((nrmse(&A, &p) - 1.5f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 2.0];
        let p = [5.0, 1.0];
        // Only the second pair counts: |(2-1)/2| = 0.5 -> 50 %.
        assert!((mape(&a, &p) - 50.0).abs() < 1e-12);
        assert!(mape(&[0.0], &[1.0]).is_nan());
    }

    #[test]
    fn smape_is_bounded() {
        let a = [1.0];
        let p = [-1.0];
        assert!((smape(&a, &p) - 200.0).abs() < 1e-12);
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let mean = A.iter().sum::<f64>() / 4.0;
        let p = [mean; 4];
        assert!(r2(&A, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_worse_than_mean_is_negative() {
        let p = [10.0, 10.0, 10.0, 10.0];
        assert!(r2(&A, &p) < 0.0);
    }

    #[test]
    fn mismatched_lengths_are_nan() {
        assert!(mse(&A, &[1.0]).is_nan());
        assert!(rmse(&[], &[]).is_nan());
        assert!(mae(&A, &[1.0]).is_nan());
        assert!(smape(&A, &[1.0]).is_nan());
        assert!(r2(&A, &[1.0]).is_nan());
    }

    #[test]
    fn nrmse_constant_actuals_stay_finite() {
        let a = [5.0, 5.0, 5.0];
        let p = [6.0, 6.0, 6.0];
        let v = nrmse(&a, &p);
        assert!(v.is_finite());
        assert!((v - 1.0 / 5.0).abs() < 1e-12);
    }
}
