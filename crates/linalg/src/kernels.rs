//! Cache-blocked GEMM kernels and the reusable scratch-buffer arena.
//!
//! These are the slice-level engines behind the batched training path:
//! [`Matrix`](crate::Matrix) methods such as
//! [`matmul_into`](crate::Matrix::matmul_into) delegate here, and the
//! neural-network crate calls them directly on its own flat buffers so the
//! DDPG minibatch update runs one GEMM per layer instead of `batch_size`
//! tiny matvecs.
//!
//! # Determinism contract
//!
//! Every kernel accumulates each output element in **ascending k order**
//! starting from `0.0` (or from the existing value, for the `_acc`
//! variants). Cache blocking only re-tiles the *traversal*; for any fixed
//! output element the sequence of floating-point additions is identical to
//! the textbook loop, so results are bitwise-identical to the pre-blocked
//! kernels and to a per-row `dot`. The exact-zero fast path (skip a
//! multiplier that is `== 0.0`) is bit-identical to multiplying by it for
//! finite operands: partial sums never hold `-0.0` (a cancellation of
//! non-zero terms yields `+0.0`, and `+0.0 + ±0.0 == +0.0`), so adding the
//! skipped `±0.0` product would not change a single bit.
//!
//! # Allocation contract
//!
//! No kernel allocates. Callers bring their own output buffers, typically
//! leased from a [`Workspace`] so hot loops are allocation-free after the
//! first iteration.

/// Rows processed per i-block of the tiled GEMM. Together with [`KC`] this
/// keeps one A-panel and one B-panel resident in L1/L2 while the j loop
/// streams the output row.
pub const MC: usize = 64;

/// Depth (k dimension) processed per block of the tiled GEMM.
pub const KC: usize = 64;

/// A pool of reusable `f64` buffers for hot-loop scratch space.
///
/// `take` hands out a zero-filled buffer, `recycle` returns it. Leases are
/// LIFO, so a loop that takes and recycles the same sequence of sizes every
/// iteration reaches a steady state where no lease ever reallocates.
///
/// ```
/// use eadrl_linalg::kernels::Workspace;
/// let mut ws = Workspace::new();
/// let buf = ws.take(16);
/// assert_eq!(buf.len(), 16);
/// ws.recycle(buf);
/// let again = ws.take(16); // reuses the previous allocation
/// assert_eq!(again.capacity(), 16);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Leases a zero-filled buffer of exactly `len` elements, reusing the
    /// most recently recycled buffer when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a leased buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// `c = a · b` for row-major `a` (`m x k`), `b` (`k x n`), `c` (`m x n`).
///
/// Cache-blocked i-k-j loop order: the innermost loop walks a `b` row and a
/// `c` row contiguously, and rows of `a` that are exactly zero-heavy (e.g.
/// post-ReLU activations) skip whole row updates.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k, "gemm: lhs shape");
    debug_assert_eq!(b.len(), k * n, "gemm: rhs shape");
    debug_assert_eq!(c.len(), m * n, "gemm: out shape");
    c.fill(0.0);
    gemm_acc(m, k, n, a, b, c);
}

/// `c += a · b`; shapes as in [`gemm`]. The accumulation into each output
/// element runs in ascending `k` order, so per-element results are
/// bitwise-identical to the unblocked i-k-j loop.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
pub fn gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k, "gemm_acc: lhs shape");
    debug_assert_eq!(b.len(), k * n, "gemm_acc: rhs shape");
    debug_assert_eq!(c.len(), m * n, "gemm_acc: out shape");
    if n == 1 {
        gemm_acc_n1(m, k, a, b, c);
        return;
    }
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KC).min(k);
        let mut i0 = 0;
        while i0 < m {
            let i1 = (i0 + MC).min(m);
            for i in i0..i1 {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut c[i * n..(i + 1) * n];
                let mut kk = k0;
                // Register-blocked body: four rank-1 updates share one
                // load/store of the output row. Each element still
                // receives its additions in ascending k order (kk,
                // kk+1, kk+2, kk+3 sequentially), so this is bitwise
                // identical to the scalar loop below.
                while kk + 4 <= k1 {
                    let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
                    // eadrl-lint: allow(no-float-eq): sparsity fast path — skipping exact zeros is bit-identical to multiplying by them
                    if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                        kk += 4;
                        continue;
                    }
                    let b0 = &b[kk * n..(kk + 1) * n];
                    let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                    let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                    let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                    let lanes = crow
                        .iter_mut()
                        .zip(b0.iter().zip(b1).zip(b2.iter().zip(b3)));
                    for (cv, ((&v0, &v1), (&v2, &v3))) in lanes {
                        let mut acc = *cv;
                        acc += a0 * v0;
                        acc += a1 * v1;
                        acc += a2 * v2;
                        acc += a3 * v3;
                        *cv = acc;
                    }
                    kk += 4;
                }
                while kk < k1 {
                    let av = arow[kk];
                    // eadrl-lint: allow(no-float-eq): sparsity fast path — skipping exact zeros is bit-identical to multiplying by them
                    if av == 0.0 {
                        kk += 1;
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += av * bv;
                    }
                    kk += 1;
                }
            }
            i0 = i1;
        }
        k0 = k1;
    }
}

/// `c += a · b` for the `n == 1` case, where `b` is a single column (e.g.
/// the width-1 output layer of a value network). The generic kernel's
/// inner lane loop degenerates into one latency-bound scalar add chain
/// per row here; processing four rows at once gives four *independent*
/// accumulator chains that hide FP-add latency. Each `c[i]` still sums
/// `a[i][kk] * b[kk]` in ascending `kk` order from its prior value, so
/// results are bitwise identical to the generic path (no zero-skip is
/// needed for parity: adding a skipped `±0.0` product never changes a
/// partial sum — see the module determinism contract).
fn gemm_acc_n1(m: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    let mut i = 0;
    while i + 4 <= m {
        let r0 = &a[i * k..(i + 1) * k];
        let r1 = &a[(i + 1) * k..(i + 2) * k];
        let r2 = &a[(i + 2) * k..(i + 3) * k];
        let r3 = &a[(i + 3) * k..(i + 4) * k];
        let (mut s0, mut s1, mut s2, mut s3) = (c[i], c[i + 1], c[i + 2], c[i + 3]);
        let rows = b.iter().zip(r0.iter().zip(r1).zip(r2.iter().zip(r3)));
        for (&bv, ((&x0, &x1), (&x2, &x3))) in rows {
            s0 += x0 * bv;
            s1 += x1 * bv;
            s2 += x2 * bv;
            s3 += x3 * bv;
        }
        c[i] = s0;
        c[i + 1] = s1;
        c[i + 2] = s2;
        c[i + 3] = s3;
        i += 4;
    }
    while i < m {
        let row = &a[i * k..(i + 1) * k];
        let mut s = c[i];
        for (&av, &bv) in row.iter().zip(b.iter()) {
            s += av * bv;
        }
        c[i] = s;
        i += 1;
    }
}

/// `c += aᵀ · b` for row-major `a` (`k x m`), `b` (`k x n`), `c` (`m x n`)
/// — the weight-gradient accumulation `grad_W += dZᵀ · X` of a batched
/// backward pass, written so no transpose is ever materialized.
///
/// The outer loop runs over the shared `k` dimension (the samples) in
/// ascending order, so every output element accumulates its per-sample
/// contributions in exactly the order a per-sample training loop would.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
pub fn gemm_tn_acc(k: usize, m: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), k * m, "gemm_tn_acc: lhs shape");
    debug_assert_eq!(b.len(), k * n, "gemm_tn_acc: rhs shape");
    debug_assert_eq!(c.len(), m * n, "gemm_tn_acc: out shape");
    let mut s = 0;
    // Register-blocked body: four samples share one load/store of each
    // output row. Every element still receives its per-sample additions
    // in ascending s order (s, s+1, s+2, s+3 sequentially), so this is
    // bitwise identical to the scalar loop below.
    while s + 4 <= k {
        let a0 = &a[s * m..(s + 1) * m];
        let a1 = &a[(s + 1) * m..(s + 2) * m];
        let a2 = &a[(s + 2) * m..(s + 3) * m];
        let a3 = &a[(s + 3) * m..(s + 4) * m];
        let b0 = &b[s * n..(s + 1) * n];
        let b1 = &b[(s + 1) * n..(s + 2) * n];
        let b2 = &b[(s + 2) * n..(s + 3) * n];
        let b3 = &b[(s + 3) * n..(s + 4) * n];
        for j in 0..m {
            let (v0, v1, v2, v3) = (a0[j], a1[j], a2[j], a3[j]);
            // eadrl-lint: allow(no-float-eq): sparsity fast path — skipping exact zeros is bit-identical to multiplying by them
            if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                continue;
            }
            let crow = &mut c[j * n..(j + 1) * n];
            let lanes = crow
                .iter_mut()
                .zip(b0.iter().zip(b1).zip(b2.iter().zip(b3)));
            for (cv, ((&w0, &w1), (&w2, &w3))) in lanes {
                let mut acc = *cv;
                acc += v0 * w0;
                acc += v1 * w1;
                acc += v2 * w2;
                acc += v3 * w3;
                *cv = acc;
            }
        }
        s += 4;
    }
    while s < k {
        let arow = &a[s * m..(s + 1) * m];
        let brow = &b[s * n..(s + 1) * n];
        for (j, &av) in arow.iter().enumerate() {
            // eadrl-lint: allow(no-float-eq): sparsity fast path — skipping exact zeros is bit-identical to multiplying by them
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[j * n..(j + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
        s += 1;
    }
}

/// `c = a · bᵀ` for row-major `a` (`m x k`), `b` (`n x k`), `c` (`m x n`).
///
/// The NT-layout GEMM of the stacked-gate recurrent path: `b` is a packed
/// weight matrix whose *rows* are dot-product operands (the LSTM's
/// `4H x in_dim` input map or `4H x H` recurrence map), so one call
/// computes all four `i|f|g|o` gate pre-activation blocks for a whole
/// batch of samples — `Z_w = X_t · Wᵀ` — without materializing `Wᵀ`.
/// Each output element is an independent dot product accumulated in
/// ascending `k` order from `0.0`, bitwise-identical to the per-sample
/// `vector::dot(w_row, x)`.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
pub fn gates_gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(c.len(), m * n, "gates_gemm: out shape");
    c.fill(0.0);
    gates_gemm_acc(m, k, n, a, b, c);
}

/// `c += a · bᵀ`; shapes as in [`gates_gemm`]. The accumulating variant
/// seeds each output element from its existing value — the conv forward
/// pass pre-fills `c` with the broadcast bias so the accumulation chain
/// starts at `b[oc]` exactly like the per-sample loop, and the LSTM path
/// goes through [`gates_gemm`] (zero-seeded) instead.
///
/// Four output columns are processed per pass of the `a` row: four
/// *independent* accumulator chains hide FP-add latency while each chain
/// still sums its products in ascending `k` order.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
pub fn gates_gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k, "gates_gemm_acc: lhs shape");
    debug_assert_eq!(b.len(), n * k, "gates_gemm_acc: rhs shape");
    debug_assert_eq!(c.len(), m * n, "gates_gemm_acc: out shape");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (crow[j], crow[j + 1], crow[j + 2], crow[j + 3]);
            let lanes = arow.iter().zip(b0.iter().zip(b1).zip(b2.iter().zip(b3)));
            for (&av, ((&w0, &w1), (&w2, &w3))) in lanes {
                // eadrl-lint: allow(no-float-eq): sparsity fast path — skipping exact zeros is bit-identical to multiplying by them
                if av == 0.0 {
                    continue;
                }
                s0 += av * w0;
                s1 += av * w1;
                s2 += av * w2;
                s3 += av * w3;
            }
            crow[j] = s0;
            crow[j + 1] = s1;
            crow[j + 2] = s2;
            crow[j + 3] = s3;
            j += 4;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut s = crow[j];
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                // eadrl-lint: allow(no-float-eq): sparsity fast path — skipping exact zeros is bit-identical to multiplying by them
                if av == 0.0 {
                    continue;
                }
                s += av * bv;
            }
            crow[j] = s;
            j += 1;
        }
    }
}

/// Fused LSTM gate apply for one timestep of a batched forward pass.
///
/// Inputs are the two NT-GEMM halves `zw = X_t · Wᵀ` and
/// `zu = H_prev · Uᵀ` (each `batch x 4H`, gate blocks `[i|f|g|o]`), the
/// packed bias `b` (`4H`) and the previous cell state `c_prev`
/// (`batch x hidden`). For every sample and unit this computes
/// `z = b + (zw + zu)` — the exact expression tree of the per-sequence
/// step, which forms `b + (dot_w + dot_u)` — applies the sigmoid/tanh
/// nonlinearities, and writes the *activated* gates into `gates`
/// (`batch x 4H`), the new cell state into `c`, its tanh into `tanh_c`,
/// and the new hidden state into `h` (each `batch x hidden`). Purely
/// elementwise, so batching cannot reorder any accumulation.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
#[allow(clippy::too_many_arguments)]
pub fn lstm_gate_apply(
    batch: usize,
    hidden: usize,
    b: &[f64],
    zw: &[f64],
    zu: &[f64],
    c_prev: &[f64],
    gates: &mut [f64],
    c: &mut [f64],
    tanh_c: &mut [f64],
    h: &mut [f64],
) {
    let g4 = 4 * hidden;
    debug_assert_eq!(b.len(), g4, "lstm_gate_apply: bias shape");
    debug_assert_eq!(zw.len(), batch * g4, "lstm_gate_apply: zw shape");
    debug_assert_eq!(zu.len(), batch * g4, "lstm_gate_apply: zu shape");
    debug_assert_eq!(c_prev.len(), batch * hidden, "lstm_gate_apply: c_prev");
    debug_assert_eq!(gates.len(), batch * g4, "lstm_gate_apply: gates shape");
    debug_assert_eq!(c.len(), batch * hidden, "lstm_gate_apply: c shape");
    debug_assert_eq!(tanh_c.len(), batch * hidden, "lstm_gate_apply: tanh_c");
    debug_assert_eq!(h.len(), batch * hidden, "lstm_gate_apply: h shape");
    let sigmoid = |v: f64| 1.0 / (1.0 + (-v).exp());
    for s in 0..batch {
        let zw_row = &zw[s * g4..(s + 1) * g4];
        let zu_row = &zu[s * g4..(s + 1) * g4];
        let gate_row = &mut gates[s * g4..(s + 1) * g4];
        for (row, gv) in gate_row.iter_mut().enumerate() {
            let z = b[row] + (zw_row[row] + zu_row[row]);
            *gv = if (2 * hidden..3 * hidden).contains(&row) {
                z.tanh()
            } else {
                sigmoid(z)
            };
        }
        for kk in 0..hidden {
            let iv = gate_row[kk];
            let fv = gate_row[hidden + kk];
            let gv = gate_row[2 * hidden + kk];
            let ov = gate_row[3 * hidden + kk];
            let cv = fv * c_prev[s * hidden + kk] + iv * gv;
            let tv = cv.tanh();
            c[s * hidden + kk] = cv;
            tanh_c[s * hidden + kk] = tv;
            h[s * hidden + kk] = ov * tv;
        }
    }
}

/// Fused LSTM gate gradient for one timestep of a batched BPTT pass.
///
/// Reads the activated `gates` (`batch x 4H`, blocks `[i|f|g|o]`),
/// `tanh_c` and `c_prev` (`batch x hidden`), the incoming hidden
/// gradient `dh` and next-step cell gradient `dc_next`; writes the
/// pre-activation gate gradients `dz` (`batch x 4H`) and the cell
/// gradient flowing to the previous step `dc_prev`. Elementwise and
/// term-for-term identical to the per-sequence backward step.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
#[allow(clippy::too_many_arguments)]
pub fn lstm_gate_grad(
    batch: usize,
    hidden: usize,
    gates: &[f64],
    tanh_c: &[f64],
    c_prev: &[f64],
    dh: &[f64],
    dc_next: &[f64],
    dz: &mut [f64],
    dc_prev: &mut [f64],
) {
    let g4 = 4 * hidden;
    debug_assert_eq!(gates.len(), batch * g4, "lstm_gate_grad: gates shape");
    debug_assert_eq!(tanh_c.len(), batch * hidden, "lstm_gate_grad: tanh_c");
    debug_assert_eq!(c_prev.len(), batch * hidden, "lstm_gate_grad: c_prev");
    debug_assert_eq!(dh.len(), batch * hidden, "lstm_gate_grad: dh shape");
    debug_assert_eq!(dc_next.len(), batch * hidden, "lstm_gate_grad: dc_next");
    debug_assert_eq!(dz.len(), batch * g4, "lstm_gate_grad: dz shape");
    debug_assert_eq!(dc_prev.len(), batch * hidden, "lstm_gate_grad: dc_prev");
    for s in 0..batch {
        let gate_row = &gates[s * g4..(s + 1) * g4];
        let dz_row = &mut dz[s * g4..(s + 1) * g4];
        for kk in 0..hidden {
            let iv = gate_row[kk];
            let fv = gate_row[hidden + kk];
            let gv = gate_row[2 * hidden + kk];
            let ov = gate_row[3 * hidden + kk];
            let tv = tanh_c[s * hidden + kk];
            let dh_k = dh[s * hidden + kk];
            let do_k = dh_k * tv;
            let dc = dc_next[s * hidden + kk] + dh_k * ov * (1.0 - tv * tv);
            let di = dc * gv;
            let df = dc * c_prev[s * hidden + kk];
            let dg = dc * iv;
            dc_prev[s * hidden + kk] = dc * fv;
            dz_row[kk] = di * iv * (1.0 - iv);
            dz_row[hidden + kk] = df * fv * (1.0 - fv);
            dz_row[2 * hidden + kk] = dg * (1.0 - gv * gv);
            dz_row[3 * hidden + kk] = do_k * ov * (1.0 - ov);
        }
    }
}

/// `out = aᵀ` for row-major `a` of shape `rows x cols` (`out` must hold
/// `cols * rows` elements). Pure data movement — no arithmetic, so there is
/// nothing to reorder.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
pub fn transpose(rows: usize, cols: usize, a: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), rows * cols, "transpose: input shape");
    debug_assert_eq!(out.len(), rows * cols, "transpose: output shape");
    for i in 0..rows {
        let arow = &a[i * cols..(i + 1) * cols];
        for (j, &v) in arow.iter().enumerate() {
            out[j * rows + i] = v;
        }
    }
}

/// `out[i] = dot(a.row(i), x)` for row-major `a` (`m x n`): the matvec
/// kernel shared by [`Matrix::matvec`](crate::Matrix::matvec) and
/// [`Matrix::matvec_into`](crate::Matrix::matvec_into), built on
/// [`vector::dot`](crate::vector::dot) so the accumulation order is the
/// canonical ascending-index dot product.
///
/// # Panics
/// Debug-panics when the slice lengths do not match the given shape.
pub fn matvec(m: usize, n: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * n, "matvec: matrix shape");
    debug_assert_eq!(x.len(), n, "matvec: vector length");
    debug_assert_eq!(out.len(), m, "matvec: output length");
    for (i, o) in out.iter_mut().enumerate() {
        *o = crate::vector::dot(&a[i * n..(i + 1) * n], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference GEMM: plain i-k-j, no blocking, no zero skip (for finite
    /// inputs the skip is bit-identical, which these tests rely on).
    fn gemm_ref(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    c[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        c
    }

    fn filled(len: usize, seed: u64) -> Vec<f64> {
        // Cheap deterministic pseudo-values with some exact zeros mixed in
        // to exercise the sparsity fast path.
        (0..len)
            .map(|i| {
                let v = ((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33) as f64
                    / 1e8;
                if i % 7 == 0 {
                    0.0
                } else {
                    v - 64.0
                }
            })
            .collect()
    }

    #[test]
    fn blocked_gemm_matches_reference_across_block_boundaries() {
        // Sizes straddling MC/KC exercise every tiling edge case.
        // The n == 1 column cases route through the four-row micro-kernel.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (64, 64, 64),
            (65, 70, 67),
            (130, 1, 9),
            (64, 32, 1),
            (7, 33, 1),
        ] {
            let a = filled(m * k, 1);
            let b = filled(k * n, 2);
            let mut c = vec![f64::NAN; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            let expect = gemm_ref(m, k, n, &a, &b);
            assert_eq!(c, expect, "gemm {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_acc_accumulates_on_top() {
        let a = filled(6, 3);
        let b = filled(6, 4);
        let mut c = vec![1.0; 4];
        gemm_acc(2, 3, 2, &a, &b, &mut c);
        let mut expect = gemm_ref(2, 3, 2, &a, &b);
        for e in expect.iter_mut() {
            *e += 1.0;
        }
        assert_eq!(c, expect);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        for &(k, m, n) in &[(1, 1, 1), (5, 3, 4), (70, 9, 11)] {
            let a = filled(k * m, 5);
            let b = filled(k * n, 6);
            let mut at = vec![0.0; k * m];
            transpose(k, m, &a, &mut at);
            let mut c = vec![0.0; m * n];
            gemm_tn_acc(k, m, n, &a, &b, &mut c);
            let expect = gemm_ref(m, k, n, &at, &b);
            assert_eq!(c, expect, "gemm_tn {k}x{m}x{n}");
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let a = filled(12, 7);
        let mut t = vec![0.0; 12];
        transpose(3, 4, &a, &mut t);
        let mut back = vec![0.0; 12];
        transpose(4, 3, &t, &mut back);
        assert_eq!(back, a);
    }

    #[test]
    fn matvec_is_per_row_dot() {
        let a = filled(6, 8);
        let x = filled(3, 9);
        let mut out = vec![0.0; 2];
        matvec(2, 3, &a, &x, &mut out);
        assert_eq!(out[0], crate::vector::dot(&a[0..3], &x));
        assert_eq!(out[1], crate::vector::dot(&a[3..6], &x));
    }

    #[test]
    fn gates_gemm_matches_per_row_dots() {
        // Each output element must be bitwise-equal to the per-sample
        // vector::dot of an `a` row against a `b` (weight) row, the exact
        // chain the per-sequence LSTM step uses. Sizes cover the 4-wide
        // column micro-kernel, its scalar tail, and k == 1 (in_dim 1).
        for &(m, k, n) in &[(1, 1, 4), (3, 5, 8), (16, 1, 24), (7, 9, 10), (5, 70, 3)] {
            let a = filled(m * k, 10);
            let b = filled(n * k, 11);
            let mut c = vec![f64::NAN; m * n];
            gates_gemm(m, k, n, &a, &b, &mut c);
            for i in 0..m {
                for j in 0..n {
                    let expect = crate::vector::dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    assert_eq!(c[i * n + j], expect, "gates_gemm {m}x{k}x{n} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn gates_gemm_acc_seeds_from_existing_values() {
        // The conv forward path pre-fills `c` with the bias so the chain
        // starts at b[oc]; verify against the same bias-seeded scalar loop.
        let (m, k, n) = (4, 6, 5);
        let a = filled(m * k, 12);
        let b = filled(n * k, 13);
        let seed = filled(m * n, 14);
        let mut c = seed.clone();
        gates_gemm_acc(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut s = seed[i * n + j];
                for kk in 0..k {
                    s += a[i * k + kk] * b[j * k + kk];
                }
                assert_eq!(c[i * n + j], s, "gates_gemm_acc at ({i},{j})");
            }
        }
    }

    #[test]
    fn lstm_gate_apply_matches_scalar_step() {
        // Reference: the per-sequence step's expression tree, one sample
        // and unit at a time.
        let (batch, hidden) = (3, 5);
        let g4 = 4 * hidden;
        let b = filled(g4, 15);
        let zw = filled(batch * g4, 16);
        let zu = filled(batch * g4, 17);
        let c_prev = filled(batch * hidden, 18);
        let mut gates = vec![f64::NAN; batch * g4];
        let mut c = vec![f64::NAN; batch * hidden];
        let mut tanh_c = vec![f64::NAN; batch * hidden];
        let mut h = vec![f64::NAN; batch * hidden];
        lstm_gate_apply(
            batch,
            hidden,
            &b,
            &zw,
            &zu,
            &c_prev,
            &mut gates,
            &mut c,
            &mut tanh_c,
            &mut h,
        );
        let sigmoid = |v: f64| 1.0 / (1.0 + (-v).exp());
        for s in 0..batch {
            for kk in 0..hidden {
                let z = |row: usize| b[row] + (zw[s * g4 + row] + zu[s * g4 + row]);
                let iv = sigmoid(z(kk));
                let fv = sigmoid(z(hidden + kk));
                let gv = z(2 * hidden + kk).tanh();
                let ov = sigmoid(z(3 * hidden + kk));
                assert_eq!(gates[s * g4 + kk], iv);
                assert_eq!(gates[s * g4 + hidden + kk], fv);
                assert_eq!(gates[s * g4 + 2 * hidden + kk], gv);
                assert_eq!(gates[s * g4 + 3 * hidden + kk], ov);
                let cv = fv * c_prev[s * hidden + kk] + iv * gv;
                assert_eq!(c[s * hidden + kk], cv);
                assert_eq!(tanh_c[s * hidden + kk], cv.tanh());
                assert_eq!(h[s * hidden + kk], ov * cv.tanh());
            }
        }
    }

    #[test]
    fn lstm_gate_grad_matches_scalar_backward_step() {
        let (batch, hidden) = (2, 4);
        let g4 = 4 * hidden;
        // Gates must look like activation outputs (in (0, 1) / (-1, 1));
        // squash the pseudo-values accordingly.
        let gates: Vec<f64> = filled(batch * g4, 19)
            .iter()
            .map(|v| 1.0 / (1.0 + (-v / 64.0).exp()))
            .collect();
        let tanh_c: Vec<f64> = filled(batch * hidden, 20)
            .iter()
            .map(|v| (v / 64.0).tanh())
            .collect();
        let c_prev = filled(batch * hidden, 21);
        let dh = filled(batch * hidden, 22);
        let dc_next = filled(batch * hidden, 23);
        let mut dz = vec![f64::NAN; batch * g4];
        let mut dc_prev = vec![f64::NAN; batch * hidden];
        lstm_gate_grad(
            batch,
            hidden,
            &gates,
            &tanh_c,
            &c_prev,
            &dh,
            &dc_next,
            &mut dz,
            &mut dc_prev,
        );
        for s in 0..batch {
            for kk in 0..hidden {
                let iv = gates[s * g4 + kk];
                let fv = gates[s * g4 + hidden + kk];
                let gv = gates[s * g4 + 2 * hidden + kk];
                let ov = gates[s * g4 + 3 * hidden + kk];
                let tv = tanh_c[s * hidden + kk];
                let dh_k = dh[s * hidden + kk];
                let do_k = dh_k * tv;
                let dc = dc_next[s * hidden + kk] + dh_k * ov * (1.0 - tv * tv);
                assert_eq!(dc_prev[s * hidden + kk], dc * fv);
                assert_eq!(dz[s * g4 + kk], dc * gv * iv * (1.0 - iv));
                assert_eq!(
                    dz[s * g4 + hidden + kk],
                    dc * c_prev[s * hidden + kk] * fv * (1.0 - fv)
                );
                assert_eq!(dz[s * g4 + 2 * hidden + kk], dc * iv * (1.0 - gv * gv));
                assert_eq!(dz[s * g4 + 3 * hidden + kk], do_k * ov * (1.0 - ov));
            }
        }
    }

    #[test]
    fn workspace_reuses_buffers_lifo() {
        let mut ws = Workspace::new();
        let a = ws.take(8);
        let ptr = a.as_ptr();
        ws.recycle(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take(8);
        assert_eq!(b.as_ptr(), ptr, "steady-state lease must not reallocate");
        assert!(b.iter().all(|&v| v == 0.0));
    }
}
