//! Golden-fixture suite: every rule demonstrated firing (and not
//! firing) on adversarial inputs, with exact line expectations.
//!
//! Fixtures live in `tests/fixtures/` and carry `//~ <rule>` tags on the
//! lines where a finding is expected (two tags on one line mean two
//! findings). The harness lints each fixture under a *pretend*
//! workspace path so the path-scoped rules engage, then compares the
//! exact `(line, rule)` multiset against the tags.

use eadrl_lint::rules::SUPPRESSION_RULE;
use eadrl_lint::{default_rules, lint_source, Finding, LintContext, ObsSchema};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint(text: &str, pretend_path: &str, schema: Option<ObsSchema>) -> (Vec<Finding>, Vec<Finding>) {
    let rules = default_rules();
    let ctx = LintContext { schema };
    lint_source(&rules, &ctx, pretend_path, text)
}

/// Collects `//~ <rule>` tags as a sorted `(line, rule)` list.
fn expectations(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        for tag in line.split("//~").skip(1) {
            let rule = tag.split_whitespace().next().unwrap_or("").to_string();
            assert!(!rule.is_empty(), "empty //~ tag on line {}", i + 1);
            out.push((i + 1, rule));
        }
    }
    out.sort();
    out
}

fn found(findings: &[Finding]) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = findings
        .iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    out.sort();
    out
}

/// 1-based line of the first line containing `needle`.
fn line_of(text: &str, needle: &str) -> usize {
    text.lines()
        .position(|l| l.contains(needle))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("needle {needle:?} not found in fixture"))
}

#[test]
fn no_unwrap_fixture_matches_expectations() {
    let text = fixture("no_unwrap.rs");
    let (active, suppressed) = lint(&text, "crates/core/src/fixture.rs", None);
    assert_eq!(found(&active), expectations(&text));
    assert_eq!(
        suppressed.len(),
        1,
        "exactly the annotated unwrap is suppressed"
    );
    assert_eq!(suppressed[0].rule, "no-unwrap-in-lib");
    assert_eq!(suppressed[0].line, line_of(&text, "    v.unwrap()"));
}

#[test]
fn no_unwrap_is_scoped_to_result_crates() {
    let text = fixture("no_unwrap.rs");
    let (active, suppressed) = lint(&text, "crates/bench/src/fixture.rs", None);
    assert!(active.is_empty(), "bench is out of scope: {active:?}");
    assert!(suppressed.is_empty());
}

#[test]
fn float_eq_fixture_matches_expectations() {
    let text = fixture("float_eq.rs");
    let (active, suppressed) = lint(&text, "crates/nn/src/fixture.rs", None);
    assert_eq!(found(&active), expectations(&text));
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule, "no-float-eq");
    assert_eq!(suppressed[0].line, line_of(&text, "d == 0.0"));
}

#[test]
fn determinism_fixture_matches_expectations() {
    let text = fixture("determinism.rs");
    let (active, suppressed) = lint(&text, "crates/models/src/fixture.rs", None);
    assert_eq!(found(&active), expectations(&text));
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule, "determinism");
    assert_eq!(
        suppressed[0].line,
        line_of(&text, "Instant::now().elapsed()")
    );
}

#[test]
fn determinism_allows_clocks_and_hashes_in_obs() {
    let text = fixture("determinism.rs");
    let (active, suppressed) = lint(&text, "crates/obs/src/fixture.rs", None);
    assert!(active.is_empty(), "obs may read the clock: {active:?}");
    assert!(suppressed.is_empty());
}

#[test]
fn obs_schema_fixture_matches_expectations() {
    let text = fixture("obs_schema.rs");
    let schema = ObsSchema::from_patterns(&[
        "eadrl.fit",
        "eadrl.weights",
        "eadrl.*.skipped",
        "bench.dataset",
    ]);
    let (active, suppressed) = lint(&text, "crates/core/src/fixture.rs", Some(schema));
    assert_eq!(found(&active), expectations(&text));
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule, "obs-event-schema");
    assert_eq!(suppressed[0].line, line_of(&text, "fixture.only"));
}

#[test]
fn obs_schema_rule_is_silent_without_a_schema() {
    let text = fixture("obs_schema.rs");
    let (active, _) = lint(&text, "crates/core/src/fixture.rs", None);
    assert!(
        active.iter().all(|f| f.rule != "obs-event-schema"),
        "no schema, no schema findings: {active:?}"
    );
}

#[test]
fn doc_header_fixture_matches_expectations() {
    let text = fixture("doc_header.rs");
    let (active, suppressed) = lint(&text, "crates/linalg/src/fixture.rs", None);
    assert_eq!(found(&active), expectations(&text));
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule, "doc-header");
    assert_eq!(
        suppressed[0].line,
        line_of(&text, "pub struct SuppressedStruct")
    );
}

#[test]
fn doc_header_is_scoped_to_linalg_and_timeseries() {
    let text = fixture("doc_header.rs");
    let (active, suppressed) = lint(&text, "crates/models/src/fixture.rs", None);
    assert!(active.is_empty(), "models is out of scope: {active:?}");
    assert!(suppressed.is_empty());
}

#[test]
fn tricky_lexer_inputs_produce_zero_findings() {
    let text = fixture("lexer_tricky.rs");
    let (active, suppressed) = lint(&text, "crates/core/src/fixture.rs", None);
    assert!(
        active.is_empty(),
        "strings/comments must hide code: {active:?}"
    );
    assert!(suppressed.is_empty());
}

#[test]
fn suppression_markers_are_validated() {
    let text = fixture("suppression.rs");
    let (active, suppressed) = lint(&text, "crates/core/src/fixture.rs", None);
    let expected: Vec<(usize, String)> = vec![
        (
            line_of(&text, "allow(not-a-rule)"),
            SUPPRESSION_RULE.to_string(),
        ),
        (
            line_of(&text, "allow(no-float-eq)"),
            SUPPRESSION_RULE.to_string(),
        ),
        (
            line_of(&text, "malformed marker with no allow() clause"),
            SUPPRESSION_RULE.to_string(),
        ),
    ];
    let mut expected = expected;
    expected.sort();
    assert_eq!(found(&active), expected);
    // Both well-formed markers (standalone and trailing) suppress.
    assert_eq!(suppressed.len(), 2);
    assert!(suppressed.iter().all(|f| f.rule == "no-unwrap-in-lib"));
}

/// End-to-end acceptance: the workspace itself is lint-clean under the
/// real `DESIGN.md` schema. New findings must be fixed or annotated, so
/// this test is the `cargo test` twin of the blocking CI step.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let md = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    let schema = ObsSchema::from_design_md(&md);
    assert!(
        schema.is_some(),
        "DESIGN.md telemetry schema table must parse"
    );
    let ctx = LintContext { schema };
    let rules = default_rules();
    let mut bad = Vec::new();
    for dir in ["crates", "src"] {
        for path in eadrl_lint::collect_rs_files(&root.join(dir)).expect("walk workspace") {
            let rel = path
                .strip_prefix(root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path).expect("read source");
            let (active, _) = lint_source(&rules, &ctx, &rel, &text);
            bad.extend(active);
        }
    }
    assert!(
        bad.is_empty(),
        "workspace must stay lint-clean; fix or annotate:\n{}",
        bad.iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
