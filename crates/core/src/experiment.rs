//! The paper's evaluation protocol (§III): 75/25 split, pool fitting,
//! warm-up on a validation tail, online rolling one-step evaluation with
//! per-method timing.

use crate::combiner::{run_combiner, Combiner};
use eadrl_models::{rolling_forecast, Forecaster};
use eadrl_timeseries::metrics::rmse;
use std::time::Instant;

/// Protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvaluationProtocol {
    /// Train fraction of the full series (paper: 0.75).
    pub train_ratio: f64,
    /// Fraction of the training set held out as the combiner warm-up /
    /// policy-learning segment.
    pub warm_fraction: f64,
}

impl Default for EvaluationProtocol {
    fn default() -> Self {
        EvaluationProtocol {
            train_ratio: 0.75,
            warm_fraction: 0.25,
        }
    }
}

/// One method's outcome on one dataset.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name (paper label, e.g. `"EA-DRL"`, `"SWE"`, `"ARIMA"`).
    pub name: String,
    /// Test-set RMSE of the rolling one-step forecasts.
    pub rmse: f64,
    /// The per-step forecasts (aligned with the evaluation's
    /// `test_actuals`), kept for the Bayesian pairwise tests.
    pub predictions: Vec<f64>,
    /// Wall-clock seconds spent producing the online forecasts only
    /// (warm-up / offline training excluded — Table III semantics).
    pub online_seconds: f64,
    /// Wall-clock seconds spent in warm-up (policy training for EA-DRL,
    /// meta-learner fitting for Stacking, …).
    pub warmup_seconds: f64,
}

/// All methods' outcomes on one dataset.
#[derive(Debug, Clone)]
pub struct DatasetEvaluation {
    /// Dataset name.
    pub dataset: String,
    /// The realized test values every method was scored against.
    pub test_actuals: Vec<f64>,
    /// Per-method results.
    pub results: Vec<MethodResult>,
    /// Pool members dropped because the series was too short for them.
    pub dropped_models: Vec<String>,
    /// Number of pool members actually used.
    pub pool_size: usize,
}

impl DatasetEvaluation {
    /// The result for a given method name, if present.
    pub fn result(&self, name: &str) -> Option<&MethodResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Method names ranked by RMSE (best first).
    pub fn ranking(&self) -> Vec<&str> {
        let mut idx: Vec<usize> = (0..self.results.len()).collect();
        idx.sort_by(|&a, &b| {
            self.results[a]
                .rmse
                .partial_cmp(&self.results[b].rmse)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.into_iter()
            .map(|i| self.results[i].name.as_str())
            .collect()
    }
}

/// Multi-horizon evaluation of a recursive forecaster (Algorithm 1's
/// `N_f`-step use case): from every admissible origin in `test`, forecast
/// `max_horizon` steps recursively and accumulate the RMSE per horizon.
///
/// Returns `rmse[h]` for horizons `1..=max_horizon` (so index 0 is the
/// one-step error). Origins step through the test segment with the given
/// `stride` so the cost stays controllable on long tests.
pub fn multi_horizon_rmse(
    model: &mut crate::eadrl::EaDrl,
    train: &[f64],
    test: &[f64],
    max_horizon: usize,
    stride: usize,
) -> Vec<f64> {
    assert!(max_horizon >= 1, "need at least horizon 1");
    let stride = stride.max(1);
    let mut sse = vec![0.0; max_horizon];
    let mut counts = vec![0usize; max_horizon];
    let mut origin = 0;
    while origin + max_horizon <= test.len() {
        let mut history = Vec::with_capacity(train.len() + origin);
        history.extend_from_slice(train);
        history.extend_from_slice(&test[..origin]);
        let forecast = model.forecast(&history, max_horizon);
        for (h, (&f, &a)) in forecast
            .iter()
            .zip(test[origin..origin + max_horizon].iter())
            .enumerate()
        {
            let e = f - a;
            sse[h] += e * e;
            counts[h] += 1;
        }
        origin += stride;
    }
    sse.iter()
        .zip(counts.iter())
        .map(|(&s, &c)| {
            if c > 0 {
                (s / c as f64).sqrt()
            } else {
                f64::NAN
            }
        })
        .collect()
}

/// Clamps base-model predictions into a sane envelope around the training
/// range: `[lo - 3·range, hi + 3·range]`, with non-finite values replaced
/// by the envelope midpoint.
///
/// A single numerically misbehaving pool member (e.g. a mis-specified
/// model on a pathological series) would otherwise poison every linear
/// combiner; reference implementations get the same guard from their
/// underlying libraries' parameter constraints.
pub fn sanitize_predictions(preds: &mut [Vec<f64>], reference: &[f64]) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in reference {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return;
    }
    let range = (hi - lo).max(1e-9);
    let (floor, ceil) = (lo - 3.0 * range, hi + 3.0 * range);
    let mid = 0.5 * (lo + hi);
    let mut replaced = 0usize;
    let mut cells = 0usize;
    for row in preds.iter_mut() {
        for v in row.iter_mut() {
            cells += 1;
            if !v.is_finite() {
                *v = mid;
                replaced += 1;
            } else {
                *v = v.clamp(floor, ceil);
            }
        }
    }
    // Only non-finite repair is reported: range clamps are routine and an
    // event per fit would pollute the clean-path telemetry baselines.
    if replaced > 0 {
        eadrl_obs::event(
            "eadrl.sanitize",
            eadrl_obs::Level::Warn,
            &[
                ("context", "prediction_matrix".into()),
                ("replaced", replaced.into()),
                ("len", cells.into()),
            ],
        );
    }
}

impl EvaluationProtocol {
    /// Runs the full protocol on one series.
    ///
    /// * `pool` — base models for the ensemble methods (fitted here on the
    ///   fit segment; members that fail to fit are dropped),
    /// * `standalone` — individually-evaluated forecasters (ARIMA, RF, …;
    ///   fitted here on the full training set),
    /// * `combiners` — the aggregation methods under test (including the
    ///   EA-DRL policy), warm-started on the validation tail.
    pub fn evaluate(
        &self,
        dataset: &str,
        series: &[f64],
        pool: Vec<Box<dyn Forecaster>>,
        standalone: Vec<(String, Box<dyn Forecaster>)>,
        combiners: Vec<Box<dyn Combiner>>,
    ) -> DatasetEvaluation {
        let train_ratio = self.train_ratio.clamp(0.1, 0.95);
        let cut = ((series.len() as f64) * train_ratio).round() as usize;
        let (train, test) = series.split_at(cut.min(series.len().saturating_sub(2)));
        let warm_fraction = self.warm_fraction.clamp(0.05, 0.5);
        let fit_len = ((train.len() as f64) * (1.0 - warm_fraction)).round() as usize;
        let (fit_part, warm_part) = train.split_at(fit_len.min(train.len().saturating_sub(2)));

        // --- Pool fitting (drop members the series cannot support),
        // fanned out across `eadrl-par` workers.
        let (fitted, dropped) = crate::parallel::fit_pool(pool, fit_part);

        // --- Base-model rolling predictions (warm-up + online segments),
        // one parallel task per pool member.
        let mut warm_preds = crate::parallel::prediction_matrix(&fitted, fit_part, warm_part);
        let mut online_preds = crate::parallel::prediction_matrix(&fitted, train, test);
        sanitize_predictions(&mut warm_preds, fit_part);
        sanitize_predictions(&mut online_preds, train);

        let mut results = Vec::new();

        // --- Standalone forecasters, fitted on the full training set.
        // Each method is self-contained, so the whole fit + rolling
        // evaluation runs as one parallel task; the Table III wall-clock
        // is measured inside the task, exactly as the serial loop did.
        let standalone_results = eadrl_par::par_map(standalone, |(label, mut model)| {
            if model.fit(train).is_err() {
                return None;
            }
            // eadrl-lint: allow(determinism): wall-clock here IS the measurement — Table III reports computation time
            let start = Instant::now();
            let preds = rolling_forecast(model.as_ref(), train, test);
            let online_seconds = start.elapsed().as_secs_f64();
            Some(MethodResult {
                name: label,
                rmse: rmse(test, &preds),
                predictions: preds,
                online_seconds,
                warmup_seconds: 0.0,
            })
        });
        match standalone_results {
            Ok(rows) => results.extend(rows.into_iter().flatten()),
            // A panicking forecaster violates the Forecaster contract;
            // report the batch and keep the sweep alive.
            Err(err) => {
                eadrl_obs::warn(
                    "par.panic",
                    &[("context", format!("{err}").as_str().into())],
                );
            }
        }

        // --- Combination methods over the shared pool predictions, one
        // parallel task per method (they only read the shared matrices).
        let combiner_results = eadrl_par::par_map(combiners, |mut combiner| {
            // eadrl-lint: allow(determinism): wall-clock here IS the measurement — Table III reports warm-up time
            let warm_start = Instant::now();
            combiner.warm_up(&warm_preds, warm_part);
            let warmup_seconds = warm_start.elapsed().as_secs_f64();
            // eadrl-lint: allow(determinism): wall-clock here IS the measurement — Table III reports online time
            let start = Instant::now();
            let preds = run_combiner(combiner.as_mut(), &online_preds, test);
            let online_seconds = start.elapsed().as_secs_f64();
            MethodResult {
                name: combiner.name().to_string(),
                rmse: rmse(test, &preds),
                predictions: preds,
                online_seconds,
                warmup_seconds,
            }
        });
        match combiner_results {
            Ok(rows) => results.extend(rows),
            Err(err) => {
                eadrl_obs::warn(
                    "par.panic",
                    &[("context", format!("{err}").as_str().into())],
                );
            }
        }

        DatasetEvaluation {
            dataset: dataset.to_string(),
            test_actuals: test.to_vec(),
            results,
            dropped_models: dropped,
            pool_size: fitted.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{SlidingWindowEnsemble, StaticEnsemble};
    use eadrl_models::{auto_regressive, Naive, SeasonalNaive};

    fn series() -> Vec<f64> {
        (0..320)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin() * 5.0 + 30.0)
            .collect()
    }

    fn pool() -> Vec<Box<dyn Forecaster>> {
        vec![
            Box::new(Naive),
            Box::new(SeasonalNaive::new(16)),
            Box::new(auto_regressive(5, 1e-3)),
        ]
    }

    #[test]
    fn protocol_produces_results_for_all_methods() {
        let eval = EvaluationProtocol::default().evaluate(
            "sine",
            &series(),
            pool(),
            vec![("Naive".into(), Box::new(Naive))],
            vec![
                Box::new(StaticEnsemble::new()),
                Box::new(SlidingWindowEnsemble::new(10)),
            ],
        );
        assert_eq!(eval.results.len(), 3);
        assert_eq!(eval.pool_size, 3);
        assert!(eval.dropped_models.is_empty());
        assert_eq!(eval.test_actuals.len(), 80);
        for r in &eval.results {
            assert_eq!(r.predictions.len(), 80);
            assert!(r.rmse.is_finite());
            assert!(r.online_seconds >= 0.0);
        }
    }

    #[test]
    fn ensemble_beats_naive_on_seasonal_data() {
        let eval = EvaluationProtocol::default().evaluate(
            "sine",
            &series(),
            pool(),
            vec![("Naive".into(), Box::new(Naive))],
            vec![Box::new(SlidingWindowEnsemble::new(10))],
        );
        let naive = eval.result("Naive").unwrap().rmse;
        let swe = eval.result("SWE").unwrap().rmse;
        assert!(swe < naive, "SWE {swe} vs Naive {naive}");
    }

    #[test]
    fn ranking_orders_by_rmse() {
        let eval = EvaluationProtocol::default().evaluate(
            "sine",
            &series(),
            pool(),
            vec![("Naive".into(), Box::new(Naive))],
            vec![Box::new(SlidingWindowEnsemble::new(10))],
        );
        let ranking = eval.ranking();
        assert_eq!(ranking.len(), 2);
        let best = eval.result(ranking[0]).unwrap().rmse;
        let worst = eval.result(ranking[1]).unwrap().rmse;
        assert!(best <= worst);
    }

    #[test]
    fn multi_horizon_errors_grow_with_horizon() {
        use crate::eadrl::{EaDrl, EaDrlConfig};
        let s = series();
        let (train, test) = s.split_at(240);
        let mut config = EaDrlConfig::default();
        config.omega = 6;
        config.episodes = 8;
        config.restarts = 1;
        let mut model = EaDrl::new(pool(), config);
        model.fit(train).unwrap();
        let horizons = multi_horizon_rmse(&mut model, train, test, 6, 4);
        assert_eq!(horizons.len(), 6);
        assert!(horizons.iter().all(|h| h.is_finite()));
        // Recursive forecasting compounds errors: the six-step error must
        // exceed the one-step error on this noisy-free seasonal series by
        // at most a sane factor, and generally h1 <= h6.
        assert!(
            horizons[0] <= horizons[5] * 1.5 + 1e-9,
            "h1 = {} vs h6 = {}",
            horizons[0],
            horizons[5]
        );
    }

    #[test]
    #[should_panic(expected = "horizon 1")]
    fn zero_horizon_panics() {
        use crate::eadrl::{EaDrl, EaDrlConfig};
        let s = series();
        let (train, test) = s.split_at(240);
        let mut model = EaDrl::new(pool(), EaDrlConfig::default());
        let _ = model.fit(train);
        let _ = multi_horizon_rmse(&mut model, train, test, 0, 1);
    }

    #[test]
    fn unfittable_pool_members_are_reported() {
        let mut p = pool();
        p.push(Box::new(SeasonalNaive::new(50_000)));
        let eval = EvaluationProtocol::default().evaluate("sine", &series(), p, vec![], vec![]);
        assert_eq!(eval.pool_size, 3);
        assert_eq!(eval.dropped_models.len(), 1);
    }
}
