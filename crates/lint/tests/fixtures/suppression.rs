// Fixture: suppression-marker validation. Linted with the pretend path
// `crates/core/src/fixture.rs`. Malformed markers are themselves
// findings (rule name `suppression`) and cannot be suppressed.

pub fn f(v: Option<u32>) -> u32 {
    // eadrl-lint: allow(no-unwrap-in-lib): well-formed, suppresses the next line
    let a = v.unwrap();
    // eadrl-lint: allow(not-a-rule): names a rule that does not exist
    let b = 1u32;
    // eadrl-lint: allow(no-float-eq)
    let c = 2u32;
    // eadrl-lint: malformed marker with no allow() clause
    a + b + c
}

pub fn trailing(v: Option<u32>) -> u32 {
    v.unwrap() // eadrl-lint: allow(no-unwrap-in-lib): trailing marker suppresses its own line
}
