//! Neural base forecasters: MLP, LSTM, Bi-LSTM, CNN-LSTM and Conv-LSTM.
//!
//! All five families from the paper's pool are trained the same way: Adam
//! on mini-batches of embedded windows, a fixed epoch budget, seeded
//! initialization. Windows arrive already z-scored via
//! [`crate::tabular::Windowed`], so no internal scaling is needed.
//!
//! The MLP family trains through the batched GEMM path
//! ([`Mlp::forward_batch`]/[`Mlp::backward_batch`]): each shuffled chunk is
//! assembled into a row matrix and runs one forward/backward per network
//! instead of one per sample — bitwise identical to the per-sample loop
//! (the batch kernels preserve per-element accumulation order; see
//! `crates/nn/tests/props.rs`). The recurrent families (LSTM, Bi-LSTM,
//! CNN-LSTM, Conv-LSTM, stacked LSTM) keep per-sample fits: their
//! time-step recurrence carries a sequential data dependency that a
//! row-batched GEMM cannot express without restructuring the unrolled
//! graph, which is out of scope here.
//!
//! Faithfulness note (documented in `DESIGN.md`): Conv-LSTM is implemented
//! as an LSTM over overlapping *patches* of the window — the input-to-state
//! transition sees a local receptive field per step, which is the
//! convolutional-locality property that distinguishes Conv-LSTM from plain
//! LSTM on univariate windows. CNN-LSTM is the literal composition
//! Conv1d → LSTM → linear head with end-to-end backprop.

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_linalg::Matrix;
use eadrl_nn::{
    mse_loss_grad, Activation, Adam, BiLstm, Conv1d, Dense, Lstm, Mlp, Network, Optimizer,
};
use eadrl_rng::DetRng;

const BATCH: usize = 16;

fn shuffled_indices(n: usize, rng: &mut DetRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Two freshly built layers trained as one parameter group, so Adam's
/// positional moment buffers line up across batches. Training on locals
/// (and storing them only after the loop) keeps the `Option` fields out
/// of the hot path entirely — no `.expect("initialized")` needed.
struct ParamGroup2<'a, A: Network, B: Network>(&'a mut A, &'a mut B);

impl<A: Network, B: Network> Network for ParamGroup2<'_, A, B> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.0.visit_params(f);
        self.1.visit_params(f);
    }
}

/// Three-layer variant of [`ParamGroup2`] (conv/LSTM/head stacks).
struct ParamGroup3<'a, A: Network, B: Network, C: Network>(&'a mut A, &'a mut B, &'a mut C);

impl<A: Network, B: Network, C: Network> Network for ParamGroup3<'_, A, B, C> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.0.visit_params(f);
        self.1.visit_params(f);
        self.2.visit_params(f);
    }
}

/// MLP regressor over windows (paper family **MLP**).
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    hidden: Vec<usize>,
    epochs: usize,
    lr: f64,
    seed: u64,
    net: Option<Mlp>,
}

impl MlpRegressor {
    /// Creates an unfitted MLP with the given hidden-layer sizes.
    pub fn new(hidden: Vec<usize>, epochs: usize, lr: f64, seed: u64) -> Self {
        MlpRegressor {
            hidden,
            epochs: epochs.max(1),
            lr,
            seed,
            net: None,
        }
    }
}

impl TabularModel for MlpRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut sizes = vec![inputs[0].len()];
        sizes.extend(&self.hidden);
        sizes.push(1);
        let mut net = Mlp::new(&mut rng, &sizes, Activation::Relu, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        // Chunk staging matrices, reused across batches so the steady
        // state allocates nothing beyond `mse_loss_grad`'s tiny per-row
        // vector.
        let mut xb = Matrix::default();
        let mut gb = Matrix::default();
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                net.zero_grad();
                let n = chunk.len();
                xb.resize(n, sizes[0]);
                for (r, &i) in chunk.iter().enumerate() {
                    xb.row_mut(r).copy_from_slice(&inputs[i]);
                }
                gb.resize(n, 1);
                {
                    let out = net.forward_batch(&xb);
                    for (r, &i) in chunk.iter().enumerate() {
                        let g = mse_loss_grad(out.row(r), &[targets[i]]);
                        gb.row_mut(r).copy_from_slice(&g);
                    }
                }
                net.backward_batch_weights_only(&gb);
                net.clip_grad_norm(5.0);
                opt.step(&mut net);
            }
        }
        self.net = Some(net);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        self.net
            .as_ref()
            .map_or(0.0, |n| n.forward_inference(input)[0])
    }
}

/// Turns a window into a sequence of 1-dimensional inputs.
fn window_to_seq(window: &[f64]) -> Vec<Vec<f64>> {
    window.iter().map(|&v| vec![v]).collect()
}

/// Turns a window into overlapping patches of width `patch` (stride 1).
fn window_to_patches(window: &[f64], patch: usize) -> Vec<Vec<f64>> {
    if window.len() < patch {
        return vec![window.to_vec()];
    }
    (0..=window.len() - patch)
        .map(|i| window[i..i + patch].to_vec())
        .collect()
}

/// LSTM regressor (paper family **LSTM**): LSTM over the window as a
/// length-k sequence, linear head on the final hidden state.
#[derive(Debug, Clone)]
pub struct LstmRegressor {
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    lstm: Option<Lstm>,
    head: Option<Dense>,
}

impl LstmRegressor {
    /// Creates an unfitted LSTM regressor.
    pub fn new(hidden: usize, epochs: usize, lr: f64, seed: u64) -> Self {
        LstmRegressor {
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            lstm: None,
            head: None,
        }
    }
}

impl TabularModel for LstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut lstm = Lstm::new(&mut rng, 1, self.hidden);
        let mut head = Dense::new(&mut rng, self.hidden, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup2(&mut lstm, &mut head);
                group.zero_grad();
                for &i in chunk {
                    let seq = window_to_seq(&inputs[i]);
                    let h = group.0.forward_sequence(&seq);
                    let y = group.1.forward(&h);
                    let g = mse_loss_grad(&y, &[targets[i]]);
                    let gh = group.1.backward(&g);
                    group.0.backward_last(&gh);
                }
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.lstm = Some(lstm);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(lstm), Some(head)) = (self.lstm.as_ref(), self.head.as_ref()) else {
            return 0.0;
        };
        let h = lstm.forward_inference(&window_to_seq(input));
        head.forward_inference(&h)[0]
    }
}

/// Bi-LSTM regressor (paper family **Bi-LSTM**).
#[derive(Debug, Clone)]
pub struct BiLstmRegressor {
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    bilstm: Option<BiLstm>,
    head: Option<Dense>,
}

impl BiLstmRegressor {
    /// Creates an unfitted Bi-LSTM regressor (each direction `hidden` wide).
    pub fn new(hidden: usize, epochs: usize, lr: f64, seed: u64) -> Self {
        BiLstmRegressor {
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            bilstm: None,
            head: None,
        }
    }
}

impl TabularModel for BiLstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut bilstm = BiLstm::new(&mut rng, 1, self.hidden);
        let mut head = Dense::new(&mut rng, 2 * self.hidden, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup2(&mut bilstm, &mut head);
                group.zero_grad();
                for &i in chunk {
                    let seq = window_to_seq(&inputs[i]);
                    let h = group.0.forward_sequence(&seq);
                    let y = group.1.forward(&h);
                    let g = mse_loss_grad(&y, &[targets[i]]);
                    let gh = group.1.backward(&g);
                    group.0.backward_last(&gh);
                }
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.bilstm = Some(bilstm);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(b), Some(head)) = (self.bilstm.as_ref(), self.head.as_ref()) else {
            return 0.0;
        };
        let h = b.forward_inference(&window_to_seq(input));
        head.forward_inference(&h)[0]
    }
}

/// CNN-LSTM regressor (paper family **CNN-LSTM**): Conv1d features over the
/// window, LSTM over the feature sequence, linear head.
#[derive(Debug, Clone)]
pub struct CnnLstmRegressor {
    channels: usize,
    kernel: usize,
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    conv: Option<Conv1d>,
    lstm: Option<Lstm>,
    head: Option<Dense>,
}

impl CnnLstmRegressor {
    /// Creates an unfitted CNN-LSTM.
    pub fn new(
        channels: usize,
        kernel: usize,
        hidden: usize,
        epochs: usize,
        lr: f64,
        seed: u64,
    ) -> Self {
        CnnLstmRegressor {
            channels: channels.max(1),
            kernel: kernel.max(1),
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            conv: None,
            lstm: None,
            head: None,
        }
    }

    /// Conv output (channel-major) reshaped to a time-major sequence.
    fn conv_to_seq(conv_out: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let steps = conv_out.first().map_or(0, Vec::len);
        (0..steps)
            .map(|t| conv_out.iter().map(|ch| ch[t]).collect())
            .collect()
    }

    /// Time-major gradient sequence reshaped back to channel-major.
    fn seq_grad_to_conv(grads: &[Vec<f64>], channels: usize) -> Vec<Vec<f64>> {
        (0..channels)
            .map(|c| grads.iter().map(|g| g[c]).collect())
            .collect()
    }
}

impl TabularModel for CnnLstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let window = inputs[0].len();
        if window < self.kernel {
            return Err(ModelError::Numerical {
                context: format!("window {window} shorter than conv kernel {}", self.kernel),
            });
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut conv = Conv1d::new(&mut rng, 1, self.channels, self.kernel, Activation::Relu);
        let mut lstm = Lstm::new(&mut rng, self.channels, self.hidden);
        let mut head = Dense::new(&mut rng, self.hidden, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup3(&mut conv, &mut lstm, &mut head);
                group.zero_grad();
                for &i in chunk {
                    let conv_out = group.0.forward(&[inputs[i].clone()]);
                    let seq = Self::conv_to_seq(&conv_out);
                    let h = group.1.forward_sequence(&seq);
                    let y = group.2.forward(&h);
                    let g = mse_loss_grad(&y, &[targets[i]]);
                    let gh = group.2.backward(&g);
                    let gseq = group.1.backward_last(&gh);
                    let gconv = Self::seq_grad_to_conv(&gseq, self.channels);
                    group.0.backward(&gconv);
                }
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.conv = Some(conv);
        self.lstm = Some(lstm);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(conv), Some(lstm), Some(head)) =
            (self.conv.as_ref(), self.lstm.as_ref(), self.head.as_ref())
        else {
            return 0.0;
        };
        let conv_out = conv.forward_inference(&[input.to_vec()]);
        let seq = Self::conv_to_seq(&conv_out);
        let h = lstm.forward_inference(&seq);
        head.forward_inference(&h)[0]
    }
}

/// Conv-LSTM regressor (paper family **Conv-LSTM**): LSTM over overlapping
/// width-`patch` slices of the window, so every input-to-state transition
/// has a local receptive field.
#[derive(Debug, Clone)]
pub struct ConvLstmRegressor {
    patch: usize,
    hidden: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    lstm: Option<Lstm>,
    head: Option<Dense>,
}

impl ConvLstmRegressor {
    /// Creates an unfitted Conv-LSTM regressor.
    pub fn new(patch: usize, hidden: usize, epochs: usize, lr: f64, seed: u64) -> Self {
        ConvLstmRegressor {
            patch: patch.max(1),
            hidden: hidden.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            lstm: None,
            head: None,
        }
    }
}

impl TabularModel for ConvLstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let in_dim = self.patch.min(inputs[0].len());
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut lstm = Lstm::new(&mut rng, in_dim, self.hidden);
        let mut head = Dense::new(&mut rng, self.hidden, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup2(&mut lstm, &mut head);
                group.zero_grad();
                for &i in chunk {
                    let seq = window_to_patches(&inputs[i], in_dim);
                    let h = group.0.forward_sequence(&seq);
                    let y = group.1.forward(&h);
                    let g = mse_loss_grad(&y, &[targets[i]]);
                    let gh = group.1.backward(&g);
                    group.0.backward_last(&gh);
                }
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.lstm = Some(lstm);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(lstm), Some(head)) = (self.lstm.as_ref(), self.head.as_ref()) else {
            return 0.0;
        };
        let in_dim = lstm.in_dim();
        let h = lstm.forward_inference(&window_to_patches(input, in_dim));
        head.forward_inference(&h)[0]
    }
}

/// Stacked-LSTM regressor (the paper's **StLSTM** baseline): two LSTM
/// layers — the full hidden sequence of the first feeds the second — with a
/// linear head on the second layer's final hidden state. The paper frames
/// this as "an ensemble of LSTMs combined using a cascading approach".
#[derive(Debug, Clone)]
pub struct StackedLstmRegressor {
    hidden1: usize,
    hidden2: usize,
    epochs: usize,
    lr: f64,
    seed: u64,
    lstm1: Option<Lstm>,
    lstm2: Option<Lstm>,
    head: Option<Dense>,
}

impl StackedLstmRegressor {
    /// Creates an unfitted two-layer stacked LSTM.
    pub fn new(hidden1: usize, hidden2: usize, epochs: usize, lr: f64, seed: u64) -> Self {
        StackedLstmRegressor {
            hidden1: hidden1.max(1),
            hidden2: hidden2.max(1),
            epochs: epochs.max(1),
            lr,
            seed,
            lstm1: None,
            lstm2: None,
            head: None,
        }
    }
}

impl TabularModel for StackedLstmRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut lstm1 = Lstm::new(&mut rng, 1, self.hidden1);
        let mut lstm2 = Lstm::new(&mut rng, self.hidden1, self.hidden2);
        let mut head = Dense::new(&mut rng, self.hidden2, 1, Activation::Identity);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let order = shuffled_indices(inputs.len(), &mut rng);
            for chunk in order.chunks(BATCH) {
                let mut group = ParamGroup3(&mut lstm1, &mut lstm2, &mut head);
                group.zero_grad();
                for &i in chunk {
                    let seq = window_to_seq(&inputs[i]);
                    let hs1 = group.0.forward_sequence_full(&seq);
                    let h2 = group.1.forward_sequence(&hs1);
                    let y = group.2.forward(&h2);
                    let g = mse_loss_grad(&y, &[targets[i]]);
                    let gh2 = group.2.backward(&g);
                    let gh1 = group.1.backward_last(&gh2);
                    group.0.backward_full(&gh1);
                }
                group.clip_grad_norm(5.0);
                opt.step(&mut group);
            }
        }
        self.lstm1 = Some(lstm1);
        self.lstm2 = Some(lstm2);
        self.head = Some(head);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let (Some(l1), Some(l2), Some(head)) =
            (self.lstm1.as_ref(), self.lstm2.as_ref(), self.head.as_ref())
        else {
            return 0.0;
        };
        let hs1 = l1.forward_inference_full(&window_to_seq(input));
        let h2 = l2.forward_inference(&hs1);
        head.forward_inference(&h2)[0]
    }
}

/// An MLP forecaster over embedded windows.
pub fn mlp_forecaster(
    k: usize,
    hidden: Vec<usize>,
    epochs: usize,
    seed: u64,
) -> Windowed<MlpRegressor> {
    Windowed::new(
        format!("MLP({hidden:?})"),
        k,
        MlpRegressor::new(hidden, epochs, 0.01, seed),
    )
}

/// An LSTM forecaster over embedded windows.
pub fn lstm_forecaster(
    k: usize,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<LstmRegressor> {
    Windowed::new(
        format!("LSTM(h={hidden})"),
        k,
        LstmRegressor::new(hidden, epochs, 0.01, seed),
    )
}

/// A Bi-LSTM forecaster over embedded windows.
pub fn bilstm_forecaster(
    k: usize,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<BiLstmRegressor> {
    Windowed::new(
        format!("BiLSTM(h={hidden})"),
        k,
        BiLstmRegressor::new(hidden, epochs, 0.01, seed),
    )
}

/// A stacked-LSTM forecaster over embedded windows (paper baseline
/// **StLSTM**).
pub fn stacked_lstm_forecaster(
    k: usize,
    hidden1: usize,
    hidden2: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<StackedLstmRegressor> {
    Windowed::new(
        format!("StLSTM(h={hidden1},{hidden2})"),
        k,
        StackedLstmRegressor::new(hidden1, hidden2, epochs, 0.01, seed),
    )
}

/// A CNN-LSTM forecaster over embedded windows.
pub fn cnn_lstm_forecaster(
    k: usize,
    channels: usize,
    kernel: usize,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<CnnLstmRegressor> {
    Windowed::new(
        format!("CNN-LSTM(c={channels},k={kernel},h={hidden})"),
        k,
        CnnLstmRegressor::new(channels, kernel, hidden, epochs, 0.01, seed),
    )
}

/// A Conv-LSTM forecaster over embedded windows.
pub fn conv_lstm_forecaster(
    k: usize,
    patch: usize,
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Windowed<ConvLstmRegressor> {
    Windowed::new(
        format!("Conv-LSTM(p={patch},h={hidden})"),
        k,
        ConvLstmRegressor::new(patch, hidden, epochs, 0.01, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    fn sine_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 3.0 + 10.0)
            .collect()
    }

    #[test]
    fn mlp_learns_sine_continuation() {
        let s = sine_series(220);
        let mut m = mlp_forecaster(5, vec![16], 60, 1);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 220.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.0, "pred {pred} truth {truth}");
    }

    #[test]
    fn lstm_learns_sine_continuation() {
        let s = sine_series(200);
        let mut m = lstm_forecaster(5, 8, 40, 2);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.2, "pred {pred} truth {truth}");
    }

    #[test]
    fn bilstm_runs_and_is_deterministic() {
        let s = sine_series(150);
        let mut a = bilstm_forecaster(5, 6, 15, 3);
        let mut b = bilstm_forecaster(5, 6, 15, 3);
        a.fit(&s).unwrap();
        b.fit(&s).unwrap();
        assert_eq!(a.predict_next(&s), b.predict_next(&s));
        assert!(a.predict_next(&s).is_finite());
    }

    #[test]
    fn cnn_lstm_learns_sine() {
        let s = sine_series(200);
        let mut m = cnn_lstm_forecaster(5, 4, 2, 8, 40, 4);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.5, "pred {pred} truth {truth}");
    }

    #[test]
    fn conv_lstm_learns_sine() {
        let s = sine_series(200);
        let mut m = conv_lstm_forecaster(5, 3, 8, 40, 5);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.5, "pred {pred} truth {truth}");
    }

    #[test]
    fn stacked_lstm_learns_sine() {
        let s = sine_series(200);
        let mut m = stacked_lstm_forecaster(5, 8, 8, 40, 6);
        m.fit(&s).unwrap();
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 3.0 + 10.0;
        let pred = m.predict_next(&s);
        assert!((pred - truth).abs() < 1.5, "pred {pred} truth {truth}");
    }

    #[test]
    fn kernel_larger_than_window_is_fit_error() {
        let s = sine_series(100);
        let mut m = Windowed::new("bad", 3, CnnLstmRegressor::new(2, 5, 4, 5, 0.01, 0));
        assert!(m.fit(&s).is_err());
    }

    #[test]
    fn patches_cover_window() {
        let p = window_to_patches(&[1.0, 2.0, 3.0, 4.0], 3);
        assert_eq!(p, vec![vec![1.0, 2.0, 3.0], vec![2.0, 3.0, 4.0]]);
        // Patch wider than window degrades to the whole window.
        let q = window_to_patches(&[1.0, 2.0], 5);
        assert_eq!(q, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn unfitted_models_predict_zero() {
        assert_eq!(
            MlpRegressor::new(vec![4], 5, 0.01, 0).predict(&[1.0; 5]),
            0.0
        );
        assert_eq!(LstmRegressor::new(4, 5, 0.01, 0).predict(&[1.0; 5]), 0.0);
        assert_eq!(BiLstmRegressor::new(4, 5, 0.01, 0).predict(&[1.0; 5]), 0.0);
        assert_eq!(
            CnnLstmRegressor::new(2, 2, 4, 5, 0.01, 0).predict(&[1.0; 5]),
            0.0
        );
        assert_eq!(
            ConvLstmRegressor::new(2, 4, 5, 0.01, 0).predict(&[1.0; 5]),
            0.0
        );
    }
}
