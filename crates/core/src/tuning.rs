//! Hyper-parameter search for EA-DRL — the machinery behind the paper's
//! "the hyperparameters of EA-DRL are tuned by model selection".
//!
//! [`tune`] grid-searches a small set of configuration knobs, scoring each
//! candidate by the greedy-policy RMSE on a held-out tail of the provided
//! validation predictions (the same generalization-first criterion the
//! checkpoint selection inside [`EaDrlPolicy::warm_up`] uses).

use crate::combiner::{run_combiner, Combiner};
use crate::eadrl::{EaDrlConfig, EaDrlPolicy};
use eadrl_timeseries::metrics::rmse;

/// The knobs explored by [`tune`]. Leave a vector empty to pin the knob
/// at the base configuration's value.
#[derive(Debug, Clone, Default)]
pub struct TuningGrid {
    /// Candidate state-window lengths ω.
    pub omegas: Vec<usize>,
    /// Candidate episode budgets.
    pub episodes: Vec<usize>,
    /// Candidate informed-initialization temperatures.
    pub init_temperatures: Vec<f64>,
}

impl TuningGrid {
    /// A sensible default grid around the paper's settings.
    pub fn standard() -> Self {
        TuningGrid {
            omegas: vec![5, 10, 20],
            episodes: vec![25, 50],
            init_temperatures: vec![4.0, 8.0, 12.0],
        }
    }

    fn axis<T: Clone>(values: &[T], fallback: T) -> Vec<T> {
        if values.is_empty() {
            vec![fallback]
        } else {
            values.to_vec()
        }
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The winning configuration.
    pub config: EaDrlConfig,
    /// Its holdout RMSE.
    pub score: f64,
    /// Every `(omega, episodes, temperature, score)` evaluated, in grid
    /// order — useful for sensitivity inspection.
    pub trials: Vec<(usize, usize, f64, f64)>,
}

/// Grid-searches `grid` over `base`, training one policy per candidate on
/// the head of the validation data and scoring it on the tail.
///
/// `holdout` is the fraction of steps reserved for scoring (clamped to
/// `[0.1, 0.5]`). Returns `None` when the data is too short to split.
pub fn tune(
    base: &EaDrlConfig,
    preds: &[Vec<f64>],
    actuals: &[f64],
    grid: &TuningGrid,
    holdout: f64,
) -> Option<TuningResult> {
    let holdout = holdout.clamp(0.1, 0.5);
    let cut = ((preds.len() as f64) * (1.0 - holdout)).round() as usize;
    let max_omega = grid.omegas.iter().copied().max().unwrap_or(base.omega);
    if cut <= max_omega + 2 || cut >= preds.len() {
        return None;
    }
    let (train_p, hold_p) = preds.split_at(cut);
    let (train_a, hold_a) = actuals.split_at(cut);

    let omegas = TuningGrid::axis(&grid.omegas, base.omega);
    let episodes = TuningGrid::axis(&grid.episodes, base.episodes);
    let temps = TuningGrid::axis(&grid.init_temperatures, base.init_temperature);

    let mut best: Option<(f64, EaDrlConfig)> = None;
    let mut trials = Vec::new();
    for &omega in &omegas {
        for &eps in &episodes {
            for &temp in &temps {
                let mut config = base.clone();
                config.omega = omega;
                config.episodes = eps;
                config.init_temperature = temp;
                let mut policy = EaDrlPolicy::new(config.clone());
                policy.warm_up(train_p, train_a);
                let out = run_combiner(&mut policy, hold_p, hold_a);
                let score = rmse(hold_a, &out);
                trials.push((omega, eps, temp, score));
                if score.is_finite() && best.as_ref().is_none_or(|(b, _)| score < *b) {
                    best = Some((score, config));
                }
            }
        }
    }
    best.map(|(score, config)| TuningResult {
        config,
        score,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model 0 accurate, model 1 offset, model 2 junk.
    fn stream(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let actuals: Vec<f64> = (0..n).map(|t| (t as f64 / 5.0).sin() * 2.0 + 8.0).collect();
        let preds = actuals
            .iter()
            .enumerate()
            .map(|(t, &a)| {
                let w = ((t * 3) % 7) as f64 / 7.0 - 0.5;
                vec![a + 0.05 * w, a + 1.5, a - 5.0]
            })
            .collect();
        (preds, actuals)
    }

    fn quick_base() -> EaDrlConfig {
        let mut config = EaDrlConfig::default();
        config.episodes = 5;
        config.max_iter = 30;
        config.restarts = 1;
        config
    }

    #[test]
    fn tune_explores_the_whole_grid() {
        let (preds, actuals) = stream(160);
        let grid = TuningGrid {
            omegas: vec![4, 8],
            episodes: vec![3],
            init_temperatures: vec![4.0, 10.0],
        };
        let result = tune(&quick_base(), &preds, &actuals, &grid, 0.3).unwrap();
        assert_eq!(result.trials.len(), 4);
        assert!(result.score.is_finite());
        assert!(grid.omegas.contains(&result.config.omega));
        // The winner's score is the minimum of all trials.
        let min_trial = result
            .trials
            .iter()
            .map(|t| t.3)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.score, min_trial);
    }

    #[test]
    fn empty_axes_fall_back_to_base_values() {
        let (preds, actuals) = stream(140);
        let base = quick_base();
        let result = tune(&base, &preds, &actuals, &TuningGrid::default(), 0.3).unwrap();
        assert_eq!(result.trials.len(), 1);
        assert_eq!(result.config.omega, base.omega);
        assert_eq!(result.config.episodes, base.episodes);
    }

    #[test]
    fn too_short_data_returns_none() {
        let (preds, actuals) = stream(12);
        assert!(tune(
            &quick_base(),
            &preds,
            &actuals,
            &TuningGrid::standard(),
            0.3
        )
        .is_none());
    }

    #[test]
    fn tuned_config_beats_a_bad_pinned_omega() {
        // With ω larger than the holdout can support vs sensible choices,
        // the search must settle on something that actually scores.
        let (preds, actuals) = stream(200);
        let grid = TuningGrid {
            omegas: vec![4, 30],
            episodes: vec![3],
            init_temperatures: vec![8.0],
        };
        let result = tune(&quick_base(), &preds, &actuals, &grid, 0.3).unwrap();
        assert!(result.score.is_finite());
        assert_eq!(result.trials.len(), 2);
    }
}
