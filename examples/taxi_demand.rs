//! Taxi-demand scenario: compare EA-DRL against the combination baselines
//! on a drifting demand series — the motivating workload of the paper's
//! BRIGHT lineage (dynamic ensembles for taxi networks).
//!
//! ```text
//! cargo run --release --example taxi_demand
//! ```

use eadrl::core::baselines::all_baselines;
use eadrl::core::experiment::sanitize_predictions;
use eadrl::core::{run_combiner, EaDrlConfig, EaDrlPolicy};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::{rolling_forecast, standard_pool};
use eadrl::timeseries::metrics::{mae, rmse};

fn main() {
    for id in [DatasetId::TaxiDemand1, DatasetId::TaxiDemand2] {
        let series = generate(id, 480, 42);
        let (train, test) = series.split(0.75);
        let fit_len = (train.len() as f64 * 0.75).round() as usize;
        let (fit_part, warm_part) = train.split_at(fit_len);

        // Fit the paper's 43-model pool on the fit segment.
        let mut pool = standard_pool(5, 48, 42);
        pool.retain_mut(|m| m.fit(fit_part).is_ok());
        println!("== {} (pool of {} models) ==", series.name(), pool.len());

        // Per-step prediction matrices for warm-up and online segments.
        let to_matrix = |history: &[f64], segment: &[f64]| -> Vec<Vec<f64>> {
            let per_model: Vec<Vec<f64>> = pool
                .iter()
                .map(|m| rolling_forecast(m.as_ref(), history, segment))
                .collect();
            (0..segment.len())
                .map(|t| per_model.iter().map(|p| p[t]).collect())
                .collect()
        };
        let mut warm_preds = to_matrix(fit_part, warm_part);
        let mut online_preds = to_matrix(train, test);
        sanitize_predictions(&mut warm_preds, fit_part);
        sanitize_predictions(&mut online_preds, train);

        // All combination methods plus EA-DRL.
        let mut combiners = all_baselines(10, 42);
        combiners.push(Box::new(EaDrlPolicy::new(EaDrlConfig::default())));

        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for mut combiner in combiners {
            combiner.warm_up(&warm_preds, warm_part);
            let out = run_combiner(combiner.as_mut(), &online_preds, test);
            rows.push((
                combiner.name().to_string(),
                rmse(test, &out),
                mae(test, &out),
            ));
        }
        rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        println!("{:<10} {:>8} {:>8}", "method", "RMSE", "MAE");
        for (name, r, m) in &rows {
            let marker = if name == "EA-DRL" {
                "  <-- this paper"
            } else {
                ""
            };
            println!("{name:<10} {r:>8.3} {m:>8.3}{marker}");
        }
        println!();
    }
}
