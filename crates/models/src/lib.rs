//! Base forecasting models of the EA-DRL reproduction.
//!
//! The paper builds its ensemble from a heterogeneous pool of 43 base models
//! spanning 16 families (§III, "Single base models set-up"): ARIMA, ETS,
//! GBM, Gaussian processes, SVR, random forests, projection-pursuit
//! regression, MARS, principal-component regression, decision trees,
//! partial-least-squares regression, MLP, LSTM, Bi-LSTM, CNN-LSTM and
//! Conv-LSTM. Every family is implemented here from scratch on top of
//! `eadrl-linalg` and `eadrl-nn`; [`pool::standard_pool`] assembles the
//! 43-member pool from varied hyper-parameter settings, mirroring the
//! paper's construction.
//!
//! All models implement the [`Forecaster`] trait: fit on a training series,
//! then produce one-step-ahead forecasts from a recent-history slice.
//! Regression-family models are adapted through [`tabular::Windowed`],
//! which embeds the series with time-delay dimension k = 5 (the paper's
//! embedding) and z-scores the windows.

pub mod arima;
pub mod ets;
pub mod forecaster;
pub mod gbm;
pub mod gp;
pub mod linear;
pub mod mars;
pub mod naive;
pub mod neural;
pub mod pcr;
pub mod pls_model;
pub mod pool;
pub mod ppr;
pub mod svr;
pub mod tabular;
pub mod tree;

pub use arima::Arima;
pub use ets::{Ets, EtsKind};
pub use forecaster::{fallback_forecast, rolling_forecast, Forecaster, ModelError, PredictError};
pub use gbm::gradient_boosting;
pub use gp::gaussian_process;
pub use linear::auto_regressive;
pub use mars::mars;
pub use naive::{DriftNaive, Naive, SeasonalNaive};
pub use neural::{
    bilstm_forecaster, cnn_lstm_forecaster, conv_lstm_forecaster, lstm_forecaster, mlp_forecaster,
    stacked_lstm_forecaster,
};
pub use pcr::pcr;
pub use pls_model::pls;
pub use pool::{quick_pool, standard_pool, ModelFamily, STANDARD_POOL_SIZE};
pub use ppr::projection_pursuit;
pub use svr::{svr_linear, svr_rbf};
pub use tabular::{TabularModel, Windowed};
pub use tree::{decision_tree, random_forest};

/// The paper's embedding dimension for regression-family base models.
pub const DEFAULT_EMBEDDING: usize = 5;
