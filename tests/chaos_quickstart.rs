//! Golden chaos run: the committed fault plan
//! (`crates/sim/plans/chaos_quickstart.plan`) driven through the
//! hardened quickstart-shaped pipeline must (a) uphold every
//! degradation invariant, (b) actually exercise quarantine and history
//! repair — a chaos test that stops injecting is worse than none — and
//! (c) reproduce byte-identically: same forecast bits and the same
//! telemetry fingerprint on a rerun and at `EADRL_PAR_THREADS` 1 vs 4.

use eadrl_sim::{run_scenario, FaultPlan, Scenario};

const PLAN: &str = include_str!("../crates/sim/plans/chaos_quickstart.plan");

/// Runs the golden scenario under `threads` workers and returns the
/// run's byte-level identity (forecast bits + telemetry fingerprint).
fn run_with_threads(threads: &str) -> (Vec<u64>, u64) {
    std::env::set_var(eadrl::par::THREADS_ENV, threads);
    let plan = FaultPlan::parse(PLAN).expect("committed plan must parse");
    let outcome = run_scenario(&Scenario::new("chaos-quickstart", plan, 17));

    assert!(
        outcome.report.passed(),
        "degradation invariants violated at {threads} threads: {:?}",
        outcome.report.violations
    );
    assert!(
        outcome.forecasts.iter().all(|f| f.is_finite()),
        "non-finite forecast escaped the guard"
    );
    assert!(
        outcome.quarantine_enters > 0,
        "the always-NaN member must trip quarantine — did the plan lose its teeth?"
    );
    assert!(
        outcome.degraded_events > 0,
        "faulted steps must surface as eadrl.degraded telemetry"
    );
    assert!(
        outcome.sanitize_events > 0,
        "the gap burst must trigger history repair"
    );
    (
        outcome.forecast_bits.clone(),
        outcome.telemetry_fingerprint(),
    )
}

#[test]
fn golden_chaos_run_is_byte_identical_across_reruns_and_thread_counts() {
    let first = run_with_threads("1");
    let rerun = run_with_threads("1");
    let parallel = run_with_threads("4");
    std::env::remove_var(eadrl::par::THREADS_ENV);

    assert_eq!(
        first, rerun,
        "same plan, same seed, same thread count — the rerun must match bitwise"
    );
    assert_eq!(
        first, parallel,
        "forecast bits / telemetry fingerprint leaked the thread count"
    );
}
