//! Naive benchmark forecasters.
//!
//! Not members of the paper's 43-model pool, but indispensable as sanity
//! baselines in tests and examples (a pool model that cannot beat the naive
//! forecast on a random walk is suspect).

use crate::forecaster::{fallback_forecast, Forecaster, ModelError};

/// Predicts the last observed value (optimal for a pure random walk).
#[derive(Debug, Clone, Default)]
pub struct Naive;

impl Forecaster for Naive {
    fn name(&self) -> &str {
        "Naive"
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
        if series.is_empty() {
            return Err(ModelError::SeriesTooShort { needed: 1, got: 0 });
        }
        Ok(())
    }

    fn predict_next(&self, history: &[f64]) -> f64 {
        fallback_forecast(history)
    }

    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Predicts the value one full season ago.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// Creates a seasonal-naive forecaster with the given period.
    ///
    /// # Panics
    /// Panics when `period == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "seasonal period must be positive");
        SeasonalNaive { period }
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &str {
        "SeasonalNaive"
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
        if series.len() < self.period {
            return Err(ModelError::SeriesTooShort {
                needed: self.period,
                got: series.len(),
            });
        }
        Ok(())
    }

    fn predict_next(&self, history: &[f64]) -> f64 {
        if history.len() >= self.period {
            history[history.len() - self.period]
        } else {
            fallback_forecast(history)
        }
    }

    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Random-walk-with-drift forecast: last value plus the average first
/// difference of the training series.
#[derive(Debug, Clone, Default)]
pub struct DriftNaive {
    drift: f64,
}

impl Forecaster for DriftNaive {
    fn name(&self) -> &str {
        "DriftNaive"
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
        if series.len() < 2 {
            return Err(ModelError::SeriesTooShort {
                needed: 2,
                got: series.len(),
            });
        }
        self.drift = (series[series.len() - 1] - series[0]) / (series.len() - 1) as f64;
        Ok(())
    }

    fn predict_next(&self, history: &[f64]) -> f64 {
        fallback_forecast(history) + self.drift
    }

    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_predicts_last() {
        let mut m = Naive;
        m.fit(&[1.0, 2.0]).unwrap();
        assert_eq!(m.predict_next(&[5.0, 9.0]), 9.0);
    }

    #[test]
    fn seasonal_naive_looks_back_one_period() {
        let mut m = SeasonalNaive::new(3);
        m.fit(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        // history ...: period 3 back from next = index len-3
        assert_eq!(m.predict_next(&[10.0, 20.0, 30.0, 40.0]), 20.0);
    }

    #[test]
    fn seasonal_naive_falls_back_when_history_short() {
        let m = SeasonalNaive::new(5);
        assert_eq!(m.predict_next(&[1.0, 2.0]), 2.0);
    }

    #[test]
    fn drift_extends_trend() {
        let mut m = DriftNaive::default();
        m.fit(&[0.0, 1.0, 2.0, 3.0]).unwrap();
        assert!((m.predict_next(&[0.0, 1.0, 2.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fit_length_requirements() {
        assert!(Naive.fit(&[]).is_err());
        assert!(SeasonalNaive::new(4).fit(&[1.0, 2.0]).is_err());
        assert!(DriftNaive::default().fit(&[1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = SeasonalNaive::new(0);
    }
}
