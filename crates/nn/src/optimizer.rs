//! Gradient-descent optimizers over [`Network`] parameter visitors.

use crate::network::Network;
use eadrl_linalg::vector::{axpy, scale_in_place};

/// A first-order optimizer.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in the
    /// network, then leaves the gradients untouched (callers decide when to
    /// zero them).
    fn step(&mut self, network: &mut dyn Network);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain SGD with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum `v = μ v - lr g; p += v`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, network: &mut dyn Network) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        network.visit_params(&mut |p, g| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; p.len()]);
            }
            let v = &mut velocity[idx];
            debug_assert_eq!(v.len(), p.len(), "Sgd: topology changed between steps");
            if momentum > 0.0 {
                // v = μ v - lr g; p += v — via the shared in-place kernels
                // (`a - lr*g` and `a + (-lr)*g` are the same bits in IEEE).
                scale_in_place(v, momentum);
                axpy(-lr, g, v);
                axpy(1.0, v, p);
            } else {
                axpy(-lr, g, p);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Fully parameterized constructor.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, network: &mut dyn Network) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let mut idx = 0;
        let m_state = &mut self.m;
        let v_state = &mut self.v;
        network.visit_params(&mut |p, g| {
            if m_state.len() <= idx {
                m_state.push(vec![0.0; p.len()]);
                v_state.push(vec![0.0; p.len()]);
            }
            let m = &mut m_state[idx];
            let v = &mut v_state[idx];
            debug_assert_eq!(m.len(), p.len(), "Adam: topology changed between steps");
            // Lockstep zips so the whole update auto-vectorizes (the
            // indexed form keeps bounds checks in the loop body).
            for ((pv, &gv), (mv, vv)) in p
                .iter_mut()
                .zip(g.iter())
                .zip(m.iter_mut().zip(v.iter_mut()))
            {
                *mv = b1 * *mv + (1.0 - b1) * gv;
                *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *pv -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy quadratic "network": loss = Σ (p_i - target_i)², so the gradient
    /// is 2 (p - target).
    struct Quadratic {
        p: Vec<f64>,
        g: Vec<f64>,
        target: Vec<f64>,
    }

    impl Quadratic {
        fn new(start: Vec<f64>, target: Vec<f64>) -> Self {
            let n = start.len();
            Quadratic {
                p: start,
                g: vec![0.0; n],
                target,
            }
        }

        fn compute_grads(&mut self) {
            for i in 0..self.p.len() {
                self.g[i] = 2.0 * (self.p[i] - self.target[i]);
            }
        }

        fn loss(&self) -> f64 {
            self.p
                .iter()
                .zip(self.target.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum()
        }
    }

    impl Network for Quadratic {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
            f(&mut self.p, &mut self.g);
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut q = Quadratic::new(vec![5.0, -3.0], vec![1.0, 2.0]);
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            q.compute_grads();
            opt.step(&mut q);
        }
        assert!(q.loss() < 1e-10, "loss = {}", q.loss());
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let run = |mut opt: Sgd| {
            let mut q = Quadratic::new(vec![10.0], vec![0.0]);
            for _ in 0..20 {
                q.compute_grads();
                opt.step(&mut q);
            }
            q.loss()
        };
        let plain = run(Sgd::new(0.01));
        let momentum = run(Sgd::with_momentum(0.01, 0.9));
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut q = Quadratic::new(vec![5.0, -3.0, 0.7], vec![1.0, 2.0, -0.5]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            q.compute_grads();
            opt.step(&mut q);
        }
        assert!(q.loss() < 1e-6, "loss = {}", q.loss());
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, |Δp| of the very first step ≈ lr.
        let mut q = Quadratic::new(vec![100.0], vec![0.0]);
        let mut opt = Adam::new(0.01);
        q.compute_grads();
        let before = q.p[0];
        opt.step(&mut q);
        assert!(((before - q.p[0]).abs() - 0.01).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.5);
        s.set_learning_rate(0.25);
        assert_eq!(s.learning_rate(), 0.25);
        let mut a = Adam::new(0.1);
        a.set_learning_rate(0.05);
        assert_eq!(a.learning_rate(), 0.05);
    }
}
