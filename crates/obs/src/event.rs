//! Telemetry events: the JSONL schema every sink speaks.
//!
//! One event is one line. The wire contract (checked by the
//! `obs_validate` binary and CI) is:
//!
//! ```json
//! {"ts": 1754489600123456, "name": "ddpg.episode", "kind": "event",
//!  "level": "info", "fields": {"total_reward": -3.2, "steps": 40}}
//! ```
//!
//! * `ts` — microseconds since the UNIX epoch (integer);
//! * `name` — dot-separated event name; span events use the full
//!   hierarchical path, e.g. `eadrl.fit/ddpg.episode`;
//! * `kind` — one of `span`, `event`, `metric`;
//! * `level` — `error` | `warn` | `info` | `debug` | `trace`;
//! * `fields` — flat object of numbers, strings, booleans and numeric
//!   arrays (e.g. per-step weight vectors).

use crate::json::{self, JsonValue};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity / verbosity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unexpected failures.
    Error,
    /// Contract violations and degraded behaviour (e.g. empty episodes).
    Warn,
    /// Episode/fit/refresh-grained progress; the default for JSONL traces
    /// is one step more verbose ([`Level::Debug`]).
    Info,
    /// Per-step detail: weight vectors, prediction spans.
    Debug,
    /// Per-update detail inside the DDPG inner loop.
    Trace,
}

impl Level {
    /// The wire name (`"info"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a wire name; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// What an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed scoped timer.
    Span,
    /// A point-in-time occurrence with payload fields.
    Event,
    /// A metric snapshot (registry export).
    Metric,
}

impl EventKind {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Event => "event",
            EventKind::Metric => "metric",
        }
    }

    /// Parses a wire name; `None` for unknown strings.
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "span" => Some(EventKind::Span),
            "event" => Some(EventKind::Event),
            "metric" => Some(EventKind::Metric),
            _ => None,
        }
    }
}

/// A field value. `From` impls exist for the common primitives so call
/// sites can write `("reward", reward.into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A float.
    F64(f64),
    /// An unsigned integer (counts, sizes).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean flag.
    Bool(bool),
    /// A string (e.g. refresh cause).
    Str(String),
    /// A numeric vector (e.g. ensemble weights).
    F64s(Vec<f64>),
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::F64s(v)
    }
}

impl From<&[f64]> for Value {
    fn from(v: &[f64]) -> Self {
        Value::F64s(v.to_vec())
    }
}

impl Value {
    fn to_json(&self) -> JsonValue {
        match self {
            Value::F64(v) => JsonValue::Num(*v),
            Value::U64(v) => JsonValue::Num(*v as f64),
            Value::I64(v) => JsonValue::Num(*v as f64),
            Value::Bool(v) => JsonValue::Bool(*v),
            Value::Str(v) => JsonValue::Str(v.clone()),
            Value::F64s(v) => JsonValue::Arr(v.iter().map(|&x| JsonValue::Num(x)).collect()),
        }
    }

    fn from_json(v: &JsonValue) -> Option<Value> {
        match v {
            // Non-finite numbers serialize as null; recover them as NaN.
            JsonValue::Null => Some(Value::F64(f64::NAN)),
            JsonValue::Num(n) => Some(Value::F64(*n)),
            JsonValue::Bool(b) => Some(Value::Bool(*b)),
            JsonValue::Str(s) => Some(Value::Str(s.clone())),
            JsonValue::Arr(items) => {
                let nums: Option<Vec<f64>> = items.iter().map(JsonValue::as_f64).collect();
                nums.map(Value::F64s)
            }
            _ => None,
        }
    }
}

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the UNIX epoch.
    pub ts_us: u64,
    /// Dot-separated name (span events: the full `/`-joined path).
    pub name: String,
    /// What the event records.
    pub kind: EventKind,
    /// Severity.
    pub level: Level,
    /// Payload fields, in emission order.
    pub fields: Vec<(String, Value)>,
}

/// Current wall-clock time in microseconds since the UNIX epoch.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

impl Event {
    /// Creates an event stamped with the current wall clock.
    pub fn new(name: impl Into<String>, kind: EventKind, level: Level) -> Event {
        Event {
            ts_us: now_us(),
            name: name.into(),
            kind,
            level,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Event {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Looks up a field value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True when the event name, split on the `/` span separator,
    /// contains `segment` (so `require("eadrl.predict_next")` matches the
    /// span `eadrl.forecast/eadrl.predict_next`).
    pub fn name_matches(&self, segment: &str) -> bool {
        self.name == segment || self.name.split('/').any(|part| part == segment)
    }

    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let fields = JsonValue::Obj(
            self.fields
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        JsonValue::Obj(vec![
            ("ts".to_string(), JsonValue::Num(self.ts_us as f64)),
            ("name".to_string(), JsonValue::Str(self.name.clone())),
            (
                "kind".to_string(),
                JsonValue::Str(self.kind.as_str().to_string()),
            ),
            (
                "level".to_string(),
                JsonValue::Str(self.level.as_str().to_string()),
            ),
            ("fields".to_string(), fields),
        ])
        .to_json()
    }

    /// Parses an event back from one JSON line. Numeric field values come
    /// back as [`Value::F64`] (JSON does not distinguish integer kinds);
    /// use [`Event::semantically_eq`] for round-trip comparisons.
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let ts = v
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or("missing numeric 'ts'")?;
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("missing string 'name'")?
            .to_string();
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .and_then(EventKind::parse)
            .ok_or("missing or unknown 'kind'")?;
        let level = v
            .get("level")
            .and_then(JsonValue::as_str)
            .and_then(Level::parse)
            .ok_or("missing or unknown 'level'")?;
        let mut fields = Vec::new();
        if let Some(JsonValue::Obj(raw)) = v.get("fields") {
            for (k, fv) in raw {
                let value =
                    Value::from_json(fv).ok_or_else(|| format!("bad field value for '{k}'"))?;
                fields.push((k.clone(), value));
            }
        }
        Ok(Event {
            ts_us: ts as u64,
            name,
            kind,
            level,
            fields,
        })
    }

    /// Equality up to JSON's single number type: `U64(3)` equals `F64(3.0)`.
    pub fn semantically_eq(&self, other: &Event) -> bool {
        fn num(v: &Value) -> Option<f64> {
            match v {
                Value::F64(x) => Some(*x),
                Value::U64(x) => Some(*x as f64),
                Value::I64(x) => Some(*x as f64),
                _ => None,
            }
        }
        self.ts_us == other.ts_us
            && self.name == other.name
            && self.kind == other.kind
            && self.level == other.level
            && self.fields.len() == other.fields.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|((ka, va), (kb, vb))| {
                    ka == kb
                        && match (num(va), num(vb)) {
                            (Some(a), Some(b)) => a == b || (a.is_nan() && b.is_nan()),
                            _ => va == vb,
                        }
                })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_has_required_fields() {
        let e = Event::new("eadrl.fit", EventKind::Span, Level::Info).field("duration_us", 12u64);
        let line = e.to_json_line();
        let v = json::parse(&line).unwrap();
        assert!(v.get("ts").and_then(JsonValue::as_f64).is_some());
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("eadrl.fit"));
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("span"));
        assert_eq!(v.get("level").and_then(JsonValue::as_str), Some("info"));
    }

    #[test]
    fn name_matches_span_segments() {
        let e = Event::new(
            "eadrl.fit/ddpg.episode/ddpg.update",
            EventKind::Span,
            Level::Trace,
        );
        assert!(e.name_matches("ddpg.episode"));
        assert!(e.name_matches("eadrl.fit"));
        assert!(!e.name_matches("ddpg"));
    }

    #[test]
    fn level_ordering_is_severity_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }
}
