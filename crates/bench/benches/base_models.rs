//! Benchmarks for representative base-model families: fit cost and
//! one-step prediction cost. These dominate the end-to-end online loop
//! (see the Table III discussion).

use eadrl_bench::harness::Harness;
use eadrl_datasets::{generate, DatasetId};
use eadrl_models::{
    auto_regressive, decision_tree, gaussian_process, gradient_boosting, lstm_forecaster,
    mlp_forecaster, random_forest, Arima, Ets, EtsKind, Forecaster,
};
use std::hint::black_box;

fn models() -> Vec<(&'static str, Box<dyn Forecaster>)> {
    vec![
        (
            "arima_2_1_1",
            Box::new(Arima::new(2, 1, 1)) as Box<dyn Forecaster>,
        ),
        (
            "ets_holt_winters",
            Box::new(Ets::new(EtsKind::HoltWinters { period: 24 })),
        ),
        ("ar_ridge", Box::new(auto_regressive(5, 1e-3))),
        ("decision_tree_d6", Box::new(decision_tree(5, 6, 3))),
        ("random_forest_15x6", Box::new(random_forest(5, 15, 6, 42))),
        ("gbm_60x2", Box::new(gradient_boosting(5, 60, 2, 0.1))),
        (
            "gp_subset150",
            Box::new(gaussian_process(5, 1.0, 1e-2, 150)),
        ),
        ("mlp_h16", Box::new(mlp_forecaster(5, vec![16], 40, 42))),
        ("lstm_h8", Box::new(lstm_forecaster(5, 8, 30, 42))),
    ]
}

fn bench_fit(c: &mut Harness) {
    let series = generate(DatasetId::BikeRentals, 480, 42);
    let train = &series.values()[..270];
    let mut group = c.benchmark_group("model_fit");
    group.sample_size(10);
    for (name, model) in models() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || model.box_clone(),
                |mut m| {
                    m.fit(black_box(train)).unwrap();
                    black_box(m.name().len())
                },
            )
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Harness) {
    let series = generate(DatasetId::BikeRentals, 480, 42);
    let train = &series.values()[..360];
    let mut group = c.benchmark_group("model_predict_next");
    for (name, mut model) in models() {
        model.fit(&train[..270]).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.predict_next(black_box(train))))
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20);
    bench_fit(&mut h);
    bench_predict(&mut h);
}
