//! Rank distributions across datasets (Table II's "Avg. Rank" column).

/// Mean ± standard deviation of one method's ranks across datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSummary {
    /// Method name.
    pub name: String,
    /// Mean rank (1 = always best).
    pub mean: f64,
    /// Population standard deviation of the ranks.
    pub std: f64,
}

/// Ranks a score vector ascending (lower score = rank 1), averaging ties.
pub fn rank_with_ties(scores: &[f64]) -> Vec<f64> {
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < n && (scores[order[j]] - scores[order[i]]).abs() < 1e-12 {
            j += 1;
        }
        // Average rank of positions i..j (1-based).
        let avg = (i + 1..=j).map(|r| r as f64).sum::<f64>() / (j - i) as f64;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Computes the mean ± std rank of each method across datasets.
///
/// `scores[d][m]` is method `m`'s loss (lower = better) on dataset `d`;
/// `names[m]` labels the methods. Output is sorted by mean rank
/// (best first).
///
/// # Panics
/// Panics when rows are ragged or names mismatch the method count.
pub fn average_ranks(names: &[String], scores: &[Vec<f64>]) -> Vec<RankSummary> {
    let m = names.len();
    assert!(
        scores.iter().all(|row| row.len() == m),
        "ragged score matrix"
    );
    let d = scores.len();
    assert!(d > 0, "need at least one dataset");
    let mut per_method: Vec<Vec<f64>> = vec![Vec::with_capacity(d); m];
    for row in scores {
        let ranks = rank_with_ties(row);
        for (col, r) in ranks.into_iter().enumerate() {
            per_method[col].push(r);
        }
    }
    let mut out: Vec<RankSummary> = names
        .iter()
        .zip(per_method.iter())
        .map(|(name, ranks)| {
            let mean = ranks.iter().sum::<f64>() / d as f64;
            let var = ranks.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / d as f64;
            RankSummary {
                name: name.clone(),
                mean,
                std: var.sqrt(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        a.mean
            .partial_cmp(&b.mean)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranking() {
        assert_eq!(rank_with_ties(&[0.3, 0.1, 0.2]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_get_average_rank() {
        // Two tied for first share (1+2)/2 = 1.5.
        assert_eq!(rank_with_ties(&[0.1, 0.1, 0.5]), vec![1.5, 1.5, 3.0]);
        // Three-way tie in the middle.
        let r = rank_with_ties(&[0.0, 1.0, 1.0, 1.0, 2.0]);
        assert_eq!(r, vec![1.0, 3.0, 3.0, 3.0, 5.0]);
    }

    #[test]
    fn average_ranks_across_datasets() {
        let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        // A best on both datasets, C worst on both.
        let scores = vec![vec![0.1, 0.2, 0.3], vec![0.2, 0.5, 0.9]];
        let summary = average_ranks(&names, &scores);
        assert_eq!(summary[0].name, "A");
        assert_eq!(summary[0].mean, 1.0);
        assert_eq!(summary[0].std, 0.0);
        assert_eq!(summary[2].name, "C");
        assert_eq!(summary[2].mean, 3.0);
    }

    #[test]
    fn average_ranks_with_variation() {
        let names = vec!["A".to_string(), "B".to_string()];
        // A first, then second: mean 1.5, std 0.5.
        let scores = vec![vec![0.1, 0.9], vec![0.9, 0.1]];
        let summary = average_ranks(&names, &scores);
        assert!((summary[0].mean - 1.5).abs() < 1e-12);
        assert!((summary[0].std - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        let names = vec!["A".to_string(), "B".to_string()];
        let _ = average_ranks(&names, &[vec![1.0], vec![1.0, 2.0]]);
    }
}
