//! The telemetry name schema: the machine-readable form of DESIGN.md's
//! "Telemetry event schema" table.
//!
//! One table, three consumers: `eadrl-lint` validates emitter call-sites
//! at review time, `obs_validate --schema` validates a captured trace
//! after a run, and `obs_report check` validates a trace before
//! profiling it. [`ObsSchema`] lives here (rather than in the lint
//! crate, where it originated) so the two trace-side tools don't need a
//! dependency on the linter.

/// The event-name schema: one pattern per documented name; `*` matches
/// one or more dot-separated segments (`eadrl.*.skipped`).
#[derive(Debug, Clone, Default)]
pub struct ObsSchema {
    patterns: Vec<Vec<String>>,
}

impl ObsSchema {
    /// Parses the "Telemetry event schema" markdown table out of
    /// `DESIGN.md` text. Names come from the first column; comma-
    /// separated cells list several names for one row.
    pub fn from_design_md(md: &str) -> Option<ObsSchema> {
        let mut patterns = Vec::new();
        let mut in_section = false;
        for line in md.lines() {
            if line.starts_with('#') {
                in_section = line.to_lowercase().contains("telemetry event schema");
                continue;
            }
            if !in_section || !line.trim_start().starts_with('|') {
                continue;
            }
            let first_cell = line.trim_start().trim_start_matches('|');
            let Some(cell) = first_cell.split('|').next() else {
                continue;
            };
            for raw in cell.split(',') {
                let name = raw.trim().trim_matches('`').trim();
                // Keep only dotted identifiers (skips the header row and
                // separator rows like `|---|`).
                if !name.is_empty()
                    && name.contains('.')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._*".contains(c))
                {
                    patterns.push(name.split('.').map(str::to_string).collect());
                }
            }
        }
        if patterns.is_empty() {
            None
        } else {
            Some(ObsSchema { patterns })
        }
    }

    /// A schema from explicit patterns (for tests).
    pub fn from_patterns(names: &[&str]) -> ObsSchema {
        ObsSchema {
            patterns: names
                .iter()
                .map(|n| n.split('.').map(str::to_string).collect())
                .collect(),
        }
    }

    /// True when `name` matches a documented pattern. `*` matches one or
    /// more consecutive segments, so `eadrl.*.skipped` covers both
    /// `eadrl.warm_up.skipped` and `eadrl.online.refresh.skipped`.
    pub fn matches(&self, name: &str) -> bool {
        fn seg_match(pat: &[String], segs: &[&str]) -> bool {
            match (pat.first(), segs.first()) {
                (None, None) => true,
                (Some(p), Some(_)) if p == "*" => {
                    (1..=segs.len()).any(|k| seg_match(&pat[1..], &segs[k..]))
                }
                (Some(p), Some(s)) if p == s => seg_match(&pat[1..], &segs[1..]),
                _ => false,
            }
        }
        let segs: Vec<&str> = name.split('.').collect();
        self.patterns.iter().any(|pat| seg_match(pat, &segs))
    }

    /// True when every `/`-separated segment of a span path matches (a
    /// span event's wire name is its full path, but the schema documents
    /// the per-span names). Non-span names have one segment, so this is
    /// [`ObsSchema::matches`] for them.
    pub fn matches_path(&self, path: &str) -> bool {
        path.split('/').all(|seg| self.matches(seg))
    }

    /// Number of documented name patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns were parsed.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_schema_from_markdown_table() {
        let md = "\
# Design

### Telemetry event schema

| Name | Kind |
|---|---|
| `a.b`, `c.d.e` | event |
| `x.*.skipped` | event |

### Next section

| `not.me` | event |
";
        let s = ObsSchema::from_design_md(md).expect("schema parses");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.matches("a.b"));
        assert!(s.matches("c.d.e"));
        assert!(s.matches("x.anything.skipped"));
        assert!(s.matches("x.two.deep.skipped"));
        assert!(!s.matches("not.me"));
        assert!(!s.matches("a.b.c"));
    }

    #[test]
    fn matches_path_checks_every_span_segment() {
        let s = ObsSchema::from_patterns(&["a.b", "c.d"]);
        assert!(s.matches_path("a.b"));
        assert!(s.matches_path("a.b/c.d"));
        assert!(s.matches_path("a.b/c.d/a.b"));
        assert!(!s.matches_path("a.b/nope.c"));
    }
}
