//! Energy-monitoring scenario: run EA-DRL across the six appliance-energy
//! channels of Table I (datasets 12–17), the paper's largest domain, and
//! summarize who wins per channel.
//!
//! ```text
//! cargo run --release --example energy_monitoring
//! ```

use eadrl::core::baselines::{Demsc, MlPol, SlidingWindowEnsemble, StaticEnsemble};
use eadrl::core::experiment::sanitize_predictions;
use eadrl::core::{run_combiner, Combiner, EaDrlConfig, EaDrlPolicy};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::{quick_pool, rolling_forecast};
use eadrl::timeseries::metrics::rmse;

fn main() {
    let channels = [
        DatasetId::EnergyHumidity3,
        DatasetId::EnergyHumidity4,
        DatasetId::EnergyHumidity5,
        DatasetId::EnergyTempOut,
        DatasetId::EnergyWindSpeed,
        DatasetId::EnergyDewPoint,
    ];

    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8}   winner",
        "channel", "EA-DRL", "SE", "SWE", "MLPOL", "DEMSC"
    );
    let mut eadrl_wins = 0;
    for id in channels {
        let series = generate(id, 480, 42);
        let (train, test) = series.split(0.75);
        let fit_len = (train.len() as f64 * 0.75).round() as usize;
        let (fit_part, warm_part) = train.split_at(fit_len);

        let mut pool = quick_pool(5, 144, 42);
        pool.retain_mut(|m| m.fit(fit_part).is_ok());
        let matrix = |history: &[f64], segment: &[f64]| -> Vec<Vec<f64>> {
            let per_model: Vec<Vec<f64>> = pool
                .iter()
                .map(|m| rolling_forecast(m.as_ref(), history, segment))
                .collect();
            (0..segment.len())
                .map(|t| per_model.iter().map(|p| p[t]).collect())
                .collect()
        };
        let mut warm = matrix(fit_part, warm_part);
        let mut online = matrix(train, test);
        sanitize_predictions(&mut warm, fit_part);
        sanitize_predictions(&mut online, train);

        let mut methods: Vec<Box<dyn Combiner>> = vec![
            Box::new(EaDrlPolicy::new(EaDrlConfig::default())),
            Box::new(StaticEnsemble::new()),
            Box::new(SlidingWindowEnsemble::new(10)),
            Box::new(MlPol::new()),
            Box::new(Demsc::new(10, 0.25, 4, 42)),
        ];
        let mut scores = Vec::new();
        for c in methods.iter_mut() {
            c.warm_up(&warm, warm_part);
            let out = run_combiner(c.as_mut(), &online, test);
            scores.push((c.name().to_string(), rmse(test, &out)));
        }
        let winner = scores
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
            .clone();
        if winner == "EA-DRL" {
            eadrl_wins += 1;
        }
        println!(
            "{:<18} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}   {winner}",
            series.name(),
            scores[0].1,
            scores[1].1,
            scores[2].1,
            scores[3].1,
            scores[4].1,
        );
    }
    println!(
        "\nEA-DRL wins {eadrl_wins}/{} energy channels outright",
        channels.len()
    );
}
