//! CLI for `eadrl-lint`. See the library docs for the rule set.
//!
//! ```text
//! cargo run -p eadrl-lint -- [--json] [--design DESIGN.md] [--list-rules] [paths…]
//! cargo run -p eadrl-lint -- --deep [--report F] [--baseline F] [--graph F] [paths…]
//! cargo run -p eadrl-lint -- --explain <fn> | --stale-allows [paths…]
//! ```
//!
//! `--deep` runs the call-graph passes (`panic-reachable`,
//! `hot-path-alloc`, `determinism-taint`) and the `stale-allow` check on
//! top of the line rules. `--report` writes the panic verdict table
//! (`lint-panic-report.json`); `--baseline` diffs fresh verdicts against
//! a committed report and fails on any new panic-reachable pub fn;
//! `--graph` writes the call graph as DOT; `--explain <fn>` prints a
//! fn's verdict and offending chains; `--stale-allows` reports *only*
//! unused suppression markers.
//!
//! Exit codes: 0 clean, 1 unsuppressed findings or baseline regression,
//! 2 usage or I/O error.

use eadrl_lint::deep::{self, Analysis, HotPathConfig};
use eadrl_lint::{default_rules, lint_file, report_to_json, LintContext, LintReport, ObsSchema};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    json: bool,
    list_rules: bool,
    deep: bool,
    stale_only: bool,
    design: PathBuf,
    report_path: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    graph_path: Option<PathBuf>,
    explain: Option<String>,
    paths: Vec<PathBuf>,
}

fn usage() {
    eprintln!(
        "usage: eadrl-lint [--json] [--design DESIGN.md] [--list-rules] [paths…]\n\
         \x20      eadrl-lint --deep [--report FILE] [--baseline FILE] [--graph FILE] [paths…]\n\
         \x20      eadrl-lint --explain <fn> [paths…]\n\
         \x20      eadrl-lint --stale-allows [paths…]\n\
         default paths: crates src examples"
    );
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        json: false,
        list_rules: false,
        deep: false,
        stale_only: false,
        design: PathBuf::from("DESIGN.md"),
        report_path: None,
        baseline_path: None,
        graph_path: None,
        explain: None,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    let path_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().map(PathBuf::from).ok_or_else(|| {
            eprintln!("eadrl-lint: {flag} needs a path");
            ExitCode::from(2)
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--deep" => opts.deep = true,
            "--stale-allows" => {
                opts.deep = true;
                opts.stale_only = true;
            }
            "--design" => opts.design = path_arg(&mut args, "--design")?,
            "--report" => {
                opts.deep = true;
                opts.report_path = Some(path_arg(&mut args, "--report")?);
            }
            "--baseline" => {
                opts.deep = true;
                opts.baseline_path = Some(path_arg(&mut args, "--baseline")?);
            }
            "--graph" => {
                opts.deep = true;
                opts.graph_path = Some(path_arg(&mut args, "--graph")?);
            }
            "--explain" => {
                opts.deep = true;
                match args.next() {
                    Some(p) => opts.explain = Some(p),
                    None => {
                        eprintln!(
                            "eadrl-lint: --explain needs a fn name (e.g. `core::EaDrl::fit`)"
                        );
                        return Err(ExitCode::from(2));
                    }
                }
            }
            "--help" | "-h" => {
                usage();
                return Err(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                eprintln!("eadrl-lint: unknown flag {flag}");
                return Err(ExitCode::from(2));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        opts.paths = vec![
            PathBuf::from("crates"),
            PathBuf::from("src"),
            PathBuf::from("examples"),
        ];
        opts.paths.retain(|p| p.exists());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    if opts.list_rules {
        for rule in default_rules() {
            println!("{:<18} {}", rule.name(), rule.description());
        }
        println!(
            "{:<18} {}",
            deep::PANIC_RULE_HELP.0,
            deep::PANIC_RULE_HELP.1
        );
        println!("{:<18} {}", deep::HOT_RULE_HELP.0, deep::HOT_RULE_HELP.1);
        println!(
            "{:<18} {}",
            deep::TAINT_RULE_HELP.0,
            deep::TAINT_RULE_HELP.1
        );
        println!(
            "{:<18} {}",
            deep::STALE_RULE_HELP.0,
            deep::STALE_RULE_HELP.1
        );
        return ExitCode::SUCCESS;
    }

    let design_text = std::fs::read_to_string(&opts.design).ok();
    let schema = design_text.as_deref().and_then(ObsSchema::from_design_md);
    if schema.is_none() {
        eprintln!(
            "eadrl-lint: warning: no telemetry schema table found at {} — obs-event-schema rule disabled",
            opts.design.display()
        );
    }
    let have_schema = schema.is_some();
    let ctx = LintContext { schema };

    if !opts.deep {
        return run_line_only(&opts, &ctx);
    }

    // Deep mode: parse once, run the line engine and the call-graph
    // passes over the same files.
    let analysis = match Analysis::load(&opts.paths, Path::new(".")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("eadrl-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let rules = default_rules();
    let mut report = LintReport::default();
    for file in &analysis.files {
        let (active, suppressed) = lint_file(&rules, &ctx, file);
        report.findings.extend(active);
        report.suppressed.extend(suppressed);
        report.files += 1;
    }

    let hot = design_text
        .as_deref()
        .and_then(HotPathConfig::from_design_md);
    if hot.is_none() {
        eprintln!(
            "eadrl-lint: warning: no hot-path table found at {} — hot-path-alloc pass disabled",
            opts.design.display()
        );
    }
    let deep_report = deep::run_deep(&analysis, hot.as_ref());

    if let Some(pattern) = &opts.explain {
        return explain(&analysis, &deep_report, pattern);
    }

    if let Some(path) = &opts.graph_path {
        if let Err(e) = std::fs::write(path, analysis.graph.to_dot()) {
            eprintln!("eadrl-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.report_path {
        if let Err(e) = std::fs::write(path, deep::panic_report_json(&deep_report.verdicts)) {
            eprintln!("eadrl-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    // Stale-allow check: markers neither engine used.
    let line_used = deep::line_used_markers(&analysis.files, &report.suppressed);
    let stale = deep::stale_allows(
        &analysis.files,
        &line_used,
        &deep_report.used_markers,
        have_schema,
    );

    let mut combined = LintReport {
        findings: Vec::new(),
        suppressed: report.suppressed,
        files: report.files,
    };
    if opts.stale_only {
        combined.findings = stale;
    } else {
        combined.findings.extend(report.findings);
        combined
            .findings
            .extend(deep_report.findings.iter().cloned());
        combined.findings.extend(stale);
        combined
            .findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    let mut baseline_errors = Vec::new();
    if let Some(path) = &opts.baseline_path {
        match std::fs::read_to_string(path) {
            Ok(text) => match deep::diff_baseline(&deep_report.verdicts, &text) {
                Ok(errs) => baseline_errors = errs,
                Err(e) => {
                    eprintln!("eadrl-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("eadrl-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if opts.json {
        println!("{}", report_to_json(&combined));
        for e in &baseline_errors {
            eprintln!("eadrl-lint: baseline: {e}");
        }
    } else {
        for f in &combined.findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        for e in &baseline_errors {
            println!("baseline: {e}");
        }
        let panicking = deep_report
            .verdicts
            .iter()
            .filter(|v| v.verdict == "panics-via")
            .count();
        let allowed = deep_report
            .verdicts
            .iter()
            .filter(|v| v.verdict == "allowed")
            .count();
        println!(
            "eadrl-lint: {} finding(s), {} suppressed, {} file(s), {} fn(s) in graph; verdicts: {} safe / {} allowed / {} panics-via",
            combined.findings.len(),
            combined.suppressed.len(),
            combined.files,
            analysis.graph.nodes.len(),
            deep_report.verdicts.len() - allowed - panicking,
            allowed,
            panicking,
        );
    }
    if combined.findings.is_empty() && baseline_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_line_only(opts: &Options, ctx: &LintContext) -> ExitCode {
    let report = match eadrl_lint::lint_paths(&opts.paths, ctx) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eadrl-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        println!("{}", report_to_json(&report));
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        println!(
            "eadrl-lint: {} finding(s), {} suppressed, {} file(s) checked",
            report.findings.len(),
            report.suppressed.len(),
            report.files
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--explain <fn>`: the fn's panic verdict (with chain) plus every deep
/// finding whose chain mentions it.
fn explain(analysis: &Analysis, deep_report: &deep::DeepReport, pattern: &str) -> ExitCode {
    let mut shown = false;
    for v in &deep_report.verdicts {
        if v.qualified == pattern || v.qualified.ends_with(&format!("::{pattern}")) {
            shown = true;
            println!("{} ({}:{})", v.qualified, v.file, v.line);
            println!("  panic verdict: {}", v.verdict);
            if let Some(chain) = &v.chain {
                println!("  chain: {chain}");
            }
        }
    }
    let mut related = 0;
    for f in &deep_report.findings {
        if f.message.contains(pattern) {
            related += 1;
            println!("finding [{}] {}:{}: {}", f.rule, f.path, f.line, f.message);
        }
    }
    if !shown && related == 0 {
        // Maybe it's a non-pub fn: report graph membership at least.
        let ids = analysis.graph.find(&analysis.asts, pattern);
        if ids.is_empty() {
            eprintln!("eadrl-lint: no workspace fn matches `{pattern}`");
            return ExitCode::from(2);
        }
        for id in ids {
            let n = &analysis.graph.nodes[id];
            println!(
                "{} ({}:{}) — not a pub library fn; no verdict tracked, {} outgoing call edge(s)",
                n.qualified(),
                n.rel_path,
                n.line,
                analysis.graph.edges[id].len()
            );
        }
    }
    ExitCode::SUCCESS
}
