//! The Bayes sign test's Monte-Carlo estimate must depend only on
//! `(diffs, rope, samples, seed)` — never on how many `eadrl-par`
//! workers ran the chains. One `#[test]` only: the thread count is an
//! environment variable, and `set_var` must not race other assertions
//! in the same binary.

use eadrl_eval::bayes::bayes_sign_test;

#[test]
fn posterior_is_identical_at_1_2_and_8_threads() {
    let diffs = [0.5, -0.2, 0.7, 0.9, -0.1, 0.3, 0.0, -0.4, 0.6, 0.2];
    let mut posteriors = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var(eadrl_par::THREADS_ENV, threads);
        posteriors.push((threads, bayes_sign_test(&diffs, 0.05, 3000, 11)));
    }
    std::env::remove_var(eadrl_par::THREADS_ENV);
    let (_, reference) = posteriors[0];
    for (threads, p) in &posteriors[1..] {
        assert_eq!(*p, reference, "posterior diverged at {threads} threads");
    }
    // Sanity: the estimate is a proper distribution over the three wins.
    let total = reference.p_left + reference.p_rope + reference.p_right;
    assert!((total - 1.0).abs() < 1e-12, "{reference:?}");
}
