//! EA-DRL: actor-critic ensemble aggregation for time-series forecasting.
//!
//! This crate is the paper's primary contribution, built on the substrates
//! in the sibling crates:
//!
//! * [`env::EnsembleEnv`] — the MDP of §II-B: states are ω-length windows
//!   of the ensemble's own outputs, actions are the m-dimensional weight
//!   vectors, the transition is deterministic, and the reward is the
//!   rank-based signal of Eq. 3 (with the 1 − NRMSE alternative of
//!   Figure 2a available for the ablation);
//! * [`eadrl::EaDrl`] — the end-to-end model: a pool of base forecasters,
//!   offline DDPG policy learning, and the online forecasting procedure of
//!   Algorithm 1;
//! * [`combiner::Combiner`] — the interface shared by EA-DRL and every
//!   baseline aggregation method of the evaluation (SE, SWE, EWA, FS, OGD,
//!   MLPOL, Stacking, Clus, Top.sel, DEMSC);
//! * [`experiment`] — the evaluation protocol of §III: 75/25 split, pool
//!   fitting, warm-up on a validation tail, online rolling evaluation.

pub mod baselines;
pub mod combiner;
pub mod eadrl;
pub mod env;
pub mod experiment;
pub mod guard;
pub mod online;
pub mod parallel;
pub mod persist;
pub mod tuning;

pub use combiner::{run_combiner, run_combiner_traced, weight_churn, Combiner};
pub use eadrl::{weight_entropy, EaDrl, EaDrlConfig, EaDrlPolicy, OnlineState};
pub use env::{EnsembleEnv, RewardKind};
pub use experiment::{
    multi_horizon_rmse, sanitize_predictions, DatasetEvaluation, EvaluationProtocol, MethodResult,
};
pub use guard::{
    guarded_call, renormalize_over_active, FaultClass, GuardConfig, GuardedSweep, PoolGuard,
};
pub use online::{AdaptiveEaDrl, RefreshStrategy, RefreshTrigger};
pub use parallel::{fit_pool, prediction_matrix};
pub use persist::{PersistError, PolicySnapshot};
pub use tuning::{tune, TuningGrid, TuningResult};
