//! Regenerates **Figure 2**: DDPG learning curves under the two reward
//! definitions — (a) `1 - NRMSE`, which the paper shows failing to
//! converge, and (b) the rank-based reward of Eq. 3, which converges.
//!
//! Prints both curves as CSV columns plus terminal sparklines.
//!
//! ```text
//! cargo run -p eadrl-bench --release --bin fig2 [-- --quick]
//! ```

use eadrl_bench::{
    build_pool, fit_pool, json_output, mean_std, prediction_matrix, print_json_report, sparkline,
    Scale, OMEGA,
};
use eadrl_core::{EnsembleEnv, RewardKind};
use eadrl_datasets::{generate, DatasetId};
use eadrl_obs::json::JsonValue;
use eadrl_rl::{DdpgAgent, DdpgConfig, EpisodeStats, SamplingStrategy};

fn curve_json(curve: &[EpisodeStats]) -> JsonValue {
    JsonValue::Arr(
        curve
            .iter()
            .enumerate()
            .map(|(i, s)| {
                JsonValue::Obj(vec![
                    ("episode".to_string(), (i + 1).into()),
                    ("avg_reward".to_string(), s.avg_reward.into()),
                    ("critic_loss".to_string(), s.critic_loss.into()),
                    ("actor_objective".to_string(), s.actor_objective.into()),
                ])
            })
            .collect(),
    )
}

fn learning_curve(
    preds: &[Vec<f64>],
    actuals: &[f64],
    reward: RewardKind,
    episodes: usize,
    seed: u64,
) -> Vec<EpisodeStats> {
    let mut env = EnsembleEnv::new(preds.to_vec(), actuals.to_vec(), OMEGA, reward, 100);
    let config = DdpgConfig {
        gamma: 0.9,
        actor_lr: 0.01,
        critic_lr: 0.01,
        sampling: SamplingStrategy::Diversity,
        hidden: vec![32, 32],
        seed,
        ..Default::default()
    };
    let mut agent = DdpgAgent::new(OMEGA, preds[0].len(), config);
    agent.train(&mut env, episodes)
}

fn main() {
    let scale = Scale::from_args();
    let episodes = scale.episodes.max(30);
    // The paper's Figure 2 is plotted on one representative dataset; we use
    // Taxi Demand 1 (half-hourly, drifting) as ours.
    let series = generate(DatasetId::TaxiDemand1, scale.series_len, scale.seed);
    let cut = (series.len() as f64 * 0.75).round() as usize;
    let train = &series.values()[..cut];
    let fit_len = (train.len() as f64 * 0.75).round() as usize;
    let (fit_part, warm_part) = train.split_at(fit_len);
    let season = series.frequency().default_season().min(series.len() / 4);
    let pool = fit_pool(build_pool(scale, season), fit_part);
    let preds = prediction_matrix(&pool, fit_part, warm_part);

    eprintln!(
        "Training DDPG on {} ({} models, {} validation steps, {} episodes)...",
        series.name(),
        pool.len(),
        warm_part.len(),
        episodes
    );
    let nrmse_curve = learning_curve(
        &preds,
        warm_part,
        RewardKind::OneMinusNrmse,
        episodes,
        scale.seed,
    );
    let rank_curve = learning_curve(
        &preds,
        warm_part,
        RewardKind::Rank { normalize: true },
        episodes,
        scale.seed,
    );

    if json_output() {
        print_json_report(
            "fig2",
            vec![
                ("dataset".to_string(), series.name().into()),
                ("episodes".to_string(), episodes.into()),
                ("nrmse_curve".to_string(), curve_json(&nrmse_curve)),
                ("rank_curve".to_string(), curve_json(&rank_curve)),
            ],
        );
        return;
    }

    println!("Figure 2 - learning curves of the actor-critic under two rewards.");
    println!(
        "Columns: episode, avg_reward_fig2a(1-NRMSE), critic_loss_fig2a,\n         avg_reward_fig2b(rank), critic_loss_fig2b\n"
    );
    for (i, (a, b)) in nrmse_curve.iter().zip(rank_curve.iter()).enumerate() {
        println!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            i + 1,
            a.avg_reward,
            a.critic_loss,
            b.avg_reward,
            b.critic_loss
        );
    }

    let a_vals: Vec<f64> = nrmse_curve.iter().map(|s| s.avg_reward).collect();
    let b_vals: Vec<f64> = rank_curve.iter().map(|s| s.avg_reward).collect();
    println!("\nFig 2a (reward = 1 - NRMSE): {}", sparkline(&a_vals));
    println!("Fig 2b (reward = Eq. 3 rank): {}", sparkline(&b_vals));

    // Convergence summary: compare first-quarter vs last-quarter rewards.
    let q = (episodes / 4).max(1);
    let (a_early, _) = mean_std(&a_vals[..q]);
    let (a_late, a_late_std) = mean_std(&a_vals[a_vals.len() - q..]);
    let (b_early, _) = mean_std(&b_vals[..q]);
    let (b_late, b_late_std) = mean_std(&b_vals[b_vals.len() - q..]);
    println!("\nFig 2a: early avg {a_early:.4} -> late avg {a_late:.4} (late std {a_late_std:.4})");
    println!("Fig 2b: early avg {b_early:.4} -> late avg {b_late:.4} (late std {b_late_std:.4})");
    println!(
        "Paper's claim: the rank reward improves and stabilizes; the NRMSE\nreward tracks the series' time-varying error magnitude and fails to\nconverge."
    );
}
