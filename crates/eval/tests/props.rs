//! Property-based tests for the statistics harness.

use eadrl_eval::special::{incomplete_beta, ln_gamma, student_t_cdf};
use eadrl_eval::{average_ranks, bayes_sign_test, correlated_t_test, rank_with_ties};
use eadrl_ptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn t_cdf_is_a_cdf(t in -50.0f64..50.0, dof in 1.0f64..100.0) {
        let p = student_t_cdf(t, dof);
        prop_assert!((0.0..=1.0).contains(&p));
        // Symmetry.
        let q = student_t_cdf(-t, dof);
        prop_assert!((p + q - 1.0).abs() < 1e-9);
        // Monotonicity in t.
        let p2 = student_t_cdf(t + 0.1, dof);
        prop_assert!(p2 >= p - 1e-12);
    }

    #[test]
    fn incomplete_beta_bounds_and_symmetry(
        a in 0.5f64..20.0,
        b in 0.5f64..20.0,
        x in 0.0f64..1.0,
    ) {
        let v = incomplete_beta(a, b, x);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "I_{x}({a},{b}) = {v}");
        let w = incomplete_beta(b, a, 1.0 - x);
        prop_assert!((v + w - 1.0).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_satisfies_recurrence(x in 0.5f64..50.0) {
        // Γ(x+1) = x Γ(x)  =>  lnΓ(x+1) = ln x + lnΓ(x).
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn posterior_probabilities_sum_to_one(
        diffs in prop::collection::vec(-10.0f64..10.0, 2..60),
        rho in 0.0f64..0.9,
        rope in 0.0f64..1.0,
    ) {
        let p = correlated_t_test(&diffs, rho, rope);
        prop_assert!((p.p_left + p.p_rope + p.p_right - 1.0).abs() < 1e-6);
        prop_assert!(p.p_left >= 0.0 && p.p_rope >= 0.0 && p.p_right >= 0.0);
    }

    #[test]
    fn sign_test_probabilities_sum_to_one(
        diffs in prop::collection::vec(-5.0f64..5.0, 1..30),
        rope in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let p = bayes_sign_test(&diffs, rope, 500, seed);
        prop_assert!((p.p_left + p.p_rope + p.p_right - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_sum_to_triangular_number(scores in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        let ranks = rank_with_ties(&scores);
        let n = scores.len();
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - (n * (n + 1)) as f64 / 2.0).abs() < 1e-9);
        // Best score has the lowest rank.
        let best = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert!(ranks.iter().all(|&r| r >= ranks[best]));
    }

    #[test]
    fn average_ranks_are_within_bounds(
        scores in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 4), 1..8),
    ) {
        let names: Vec<String> = (0..4).map(|i| format!("m{i}")).collect();
        let summary = average_ranks(&names, &scores);
        for s in &summary {
            prop_assert!(s.mean >= 1.0 - 1e-9 && s.mean <= 4.0 + 1e-9);
            prop_assert!(s.std >= 0.0);
        }
        // Output is sorted by mean rank.
        for pair in summary.windows(2) {
            prop_assert!(pair[0].mean <= pair[1].mean + 1e-12);
        }
    }

    #[test]
    fn stronger_evidence_moves_the_posterior(
        base in 0.1f64..5.0,
        n in 5usize..40,
    ) {
        // Constant positive differences with tiny jitter: more samples
        // must not reduce confidence that the difference is positive.
        let small: Vec<f64> = (0..n).map(|i| base + 0.01 * (i % 3) as f64).collect();
        let big: Vec<f64> = (0..4 * n).map(|i| base + 0.01 * (i % 3) as f64).collect();
        let p_small = correlated_t_test(&small, 0.0, 0.0);
        let p_big = correlated_t_test(&big, 0.0, 0.0);
        prop_assert!(p_big.p_right >= p_small.p_right - 1e-6);
    }
}
