//! Property-based tests for the base forecasting models.

use eadrl_models::tree::{RandomForestRegressor, TreeRegressor};
use eadrl_models::{
    auto_regressive, decision_tree, gradient_boosting, Arima, Ets, EtsKind, Forecaster,
    TabularModel,
};
use eadrl_ptest::prelude::*;

/// A synthetic AR(1)-plus-level series driven by the proptest inputs.
fn ar_series(noise: &[f64], phi: f64, level: f64) -> Vec<f64> {
    let mut s = vec![level];
    for &n in noise {
        let prev = *s.last().unwrap();
        s.push(level + phi * (prev - level) + n);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_predictions_stay_within_target_range(
        xs in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 10..40),
        ys in prop::collection::vec(-100.0f64..100.0, 40),
        query in prop::collection::vec(-20.0f64..20.0, 3),
    ) {
        let y = &ys[..xs.len()];
        let mut tree = TreeRegressor::new(5, 2);
        tree.fit(&xs, y).unwrap();
        let p = tree.predict(&query);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    #[test]
    fn forest_predictions_stay_within_target_range(
        xs in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 8..30),
        ys in prop::collection::vec(-50.0f64..50.0, 30),
        query in prop::collection::vec(-20.0f64..20.0, 2),
        seed in 0u64..100,
    ) {
        let y = &ys[..xs.len()];
        let mut forest = RandomForestRegressor::new(8, 4, 1, seed);
        forest.fit(&xs, y).unwrap();
        let p = forest.predict(&query);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn ar_model_predictions_are_finite_on_stable_series(
        noise in prop::collection::vec(-1.0f64..1.0, 40..80),
        phi in -0.9f64..0.9,
        level in -100.0f64..100.0,
    ) {
        let series = ar_series(&noise, phi, level);
        let mut m = auto_regressive(5, 1e-6);
        m.fit(&series).unwrap();
        let p = m.predict_next(&series);
        prop_assert!(p.is_finite());
    }

    #[test]
    fn arima_one_step_is_finite_and_level_scaled(
        noise in prop::collection::vec(-1.0f64..1.0, 60..100),
        phi in -0.8f64..0.8,
        level in -1000.0f64..1000.0,
    ) {
        let series = ar_series(&noise, phi, level);
        let mut m = Arima::new(1, 0, 1);
        m.fit(&series).unwrap();
        let p = m.predict_next(&series);
        prop_assert!(p.is_finite());
        // A stationary series' forecast should stay within a broad band of
        // its observed range.
        let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let band = (hi - lo).max(1.0);
        prop_assert!(p > lo - 3.0 * band && p < hi + 3.0 * band, "{p} vs [{lo}, {hi}]");
    }

    #[test]
    fn ets_forecast_interpolates_level_on_stationary_series(
        noise in prop::collection::vec(-0.5f64..0.5, 30..60),
        level in -100.0f64..100.0,
    ) {
        let series = ar_series(&noise, 0.0, level);
        let mut m = Ets::new(EtsKind::Simple);
        m.fit(&series).unwrap();
        let p = m.predict_next(&series);
        prop_assert!((p - level).abs() < 2.0, "SES drifted: {p} vs level {level}");
    }

    #[test]
    fn gbm_training_error_not_worse_than_mean_predictor(
        xs in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 2), 10..30),
        ys in prop::collection::vec(-20.0f64..20.0, 30),
    ) {
        let y = &ys[..xs.len()];
        let mut gbm = eadrl_models::gbm::GbmRegressor::new(20, 2, 0.2);
        gbm.fit(&xs, y).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let sse_gbm: f64 = xs.iter().zip(y.iter()).map(|(x, t)| (gbm.predict(x) - t).powi(2)).sum();
        let sse_mean: f64 = y.iter().map(|t| (t - mean) * (t - mean)).sum();
        prop_assert!(sse_gbm <= sse_mean + 1e-6);
    }

    #[test]
    fn windowed_forecasters_never_panic_on_short_histories(
        history in prop::collection::vec(-100.0f64..100.0, 0..6),
    ) {
        // Unfitted models on arbitrarily short histories must fall back,
        // not panic — pool robustness depends on it.
        let models: Vec<Box<dyn Forecaster>> = vec![
            Box::new(decision_tree(5, 4, 2)),
            Box::new(gradient_boosting(5, 10, 2, 0.1)),
            Box::new(auto_regressive(5, 1e-3)),
        ];
        for m in &models {
            let p = m.predict_next(&history);
            prop_assert!(p.is_finite() || history.is_empty());
        }
    }
}
