//! Reinforcement-learning substrate: environments, replay buffers, noise
//! processes and a from-scratch DDPG agent.
//!
//! The EA-DRL paper learns its ensemble-combination policy with the deep
//! deterministic policy gradient algorithm of Lillicrap et al. (reference \[10\] of the
//! paper) and modifies exactly one ingredient: replay transitions are
//! sampled **diversity-first** — half above the median reward, half below
//! (Eq. 4) — instead of uniformly. This crate implements
//!
//! * [`Environment`] — the minimal episodic-MDP interface,
//! * [`ReplayBuffer`] with both [`SamplingStrategy::Uniform`] (the original
//!   DDPG) and [`SamplingStrategy::Diversity`] (the paper's Eq. 4),
//! * [`OrnsteinUhlenbeck`] and [`GaussianNoise`] exploration noise,
//! * [`DdpgAgent`] — actor/critic MLPs with target networks, Polyak soft
//!   updates and the deterministic-policy-gradient actor update, plus the
//!   [`ActionSquash`] output map (the paper squashes policy outputs onto
//!   the probability simplex so the weights are positive and sum to one).

pub mod ddpg;
pub mod env;
pub mod noise;
pub mod replay;
pub mod squash;

pub use ddpg::{DdpgAgent, DdpgConfig, EpisodeStats, UpdatePath, UpdateStats};
pub use env::Environment;
pub use noise::{GaussianNoise, Noise, OrnsteinUhlenbeck};
pub use replay::{ReplayBuffer, SamplingStrategy, Transition};
pub use squash::ActionSquash;
