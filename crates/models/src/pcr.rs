//! Principal-component regression.

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_linalg::{lstsq, Matrix, Pca};

/// PCR: project inputs onto the top principal components, then ordinary
/// least squares in the reduced space.
#[derive(Debug, Clone)]
pub struct PcrRegressor {
    n_components: usize,
    pca: Option<Pca>,
    /// `[intercept, coef per component]`.
    coef: Vec<f64>,
}

impl PcrRegressor {
    /// Creates an unfitted PCR model keeping `n_components` components.
    pub fn new(n_components: usize) -> Self {
        PcrRegressor {
            n_components: n_components.max(1),
            pca: None,
            coef: Vec::new(),
        }
    }
}

impl TabularModel for PcrRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.len() < 3 || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 3,
                got: inputs.len(),
            });
        }
        let x = Matrix::from_rows(inputs).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        let pca = Pca::fit(&x, self.n_components).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        let scores = pca.transform(&x).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        // Design = [1 | scores].
        let rows: Vec<Vec<f64>> = (0..scores.rows())
            .map(|i| {
                let mut r = Vec::with_capacity(scores.cols() + 1);
                r.push(1.0);
                r.extend_from_slice(scores.row(i));
                r
            })
            .collect();
        let design = Matrix::from_rows(&rows).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        self.coef = lstsq(&design, targets).map_err(|e| ModelError::Numerical {
            context: e.to_string(),
        })?;
        self.pca = Some(pca);
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let Some(pca) = &self.pca else { return 0.0 };
        let Ok(score) = pca.transform_one(input) else {
            return 0.0;
        };
        self.coef[0]
            + self.coef[1..]
                .iter()
                .zip(score.iter())
                .map(|(c, s)| c * s)
                .sum::<f64>()
    }
}

/// A PCR forecaster over embedded windows (paper family **PCMR**).
pub fn pcr(k: usize, n_components: usize) -> Windowed<PcrRegressor> {
    Windowed::new(
        format!("PCR(c={n_components})"),
        k,
        PcrRegressor::new(n_components),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    #[test]
    fn full_rank_pcr_matches_linear_fit() {
        // With all components retained, PCR == OLS.
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 * 0.2, ((i * 3) % 7) as f64])
            .collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|x| 2.0 * x[0] - 0.5 * x[1] + 1.0)
            .collect();
        let mut m = PcrRegressor::new(2);
        m.fit(&inputs, &targets).unwrap();
        for (x, t) in inputs.iter().zip(targets.iter()).step_by(7) {
            assert!((m.predict(x) - t).abs() < 1e-6);
        }
    }

    #[test]
    fn one_component_handles_collinearity() {
        // x1 = 2 x0 exactly: OLS normal equations would be singular.
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let targets: Vec<f64> = (0..30).map(|i| 3.0 * i as f64 + 2.0).collect();
        let mut m = PcrRegressor::new(1);
        m.fit(&inputs, &targets).unwrap();
        for (x, t) in inputs.iter().zip(targets.iter()).step_by(9) {
            assert!((m.predict(x) - t).abs() < 1e-6);
        }
    }

    #[test]
    fn pcr_forecaster_on_ar_series() {
        let mut s = vec![1.0, 2.0];
        for t in 2..150 {
            s.push(0.6 * s[t - 1] + 0.3 * s[t - 2] + 0.5);
        }
        let mut m = pcr(5, 3);
        m.fit(&s).unwrap();
        let truth = 0.6 * s[149] + 0.3 * s[148] + 0.5;
        assert!((m.predict_next(&s) - truth).abs() < 0.2);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let m = PcrRegressor::new(2);
        assert_eq!(m.predict(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn too_few_samples_is_error() {
        let mut m = PcrRegressor::new(1);
        assert!(m.fit(&[vec![1.0]], &[1.0]).is_err());
    }
}
