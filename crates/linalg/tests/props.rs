//! Property-based tests for the linear-algebra kernels.

use eadrl_linalg::{lstsq, ridge, Cholesky, Lu, Matrix, Qr, SymmetricEigen};
use eadrl_ptest::prelude::*;

/// A random square matrix with entries in a moderate range.
fn square(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).unwrap())
}

/// A random well-conditioned SPD matrix: `BᵀB + n·I`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    square(n).prop_map(move |b| {
        let mut g = b.gram();
        g.add_diagonal(n as f64);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_solve_satisfies_the_system(a in spd(4), b in prop::collection::vec(-10.0f64..10.0, 4)) {
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            prop_assert!((l - r).abs() < 1e-8, "{l} vs {r}");
        }
    }

    #[test]
    fn cholesky_matches_lu_on_spd(a in spd(3), b in prop::collection::vec(-5.0f64..5.0, 3)) {
        let x1 = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x2 = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (l, r) in x1.iter().zip(x2.iter()) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 6..12),
        ys in prop::collection::vec(-10.0f64..10.0, 12),
    ) {
        let a = Matrix::from_rows(&rows).unwrap();
        let y = &ys[..rows.len()];
        if let Ok(beta) = Qr::new(&a).and_then(|qr| qr.solve(y)) {
            let pred = a.matvec(&beta).unwrap();
            let resid: Vec<f64> = y.iter().zip(pred.iter()).map(|(t, p)| t - p).collect();
            let ortho = a.tr_matvec(&resid).unwrap();
            // Residual orthogonal to the column space = optimality.
            for v in ortho {
                prop_assert!(v.abs() < 1e-6, "residual not orthogonal: {v}");
            }
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(a in spd(4)) {
        let e = SymmetricEigen::new(&a).unwrap();
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = e.eigenvalues[i];
            prop_assert!(e.eigenvalues[i] > 0.0, "SPD eigenvalues must be positive");
        }
        let rec = e
            .eigenvectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap();
        prop_assert!(rec.sub(&a).unwrap().max_abs() < 1e-7 * a.max_abs().max(1.0));
    }

    #[test]
    fn ridge_never_increases_coefficient_norm(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 5..15),
        ys in prop::collection::vec(-10.0f64..10.0, 15),
    ) {
        let a = Matrix::from_rows(&rows).unwrap();
        let y = &ys[..rows.len()];
        let small = ridge(&a, y, 1e-6);
        let big = ridge(&a, y, 100.0);
        if let (Ok(s), Ok(b)) = (small, big) {
            let ns: f64 = s.iter().map(|v| v * v).sum();
            let nb: f64 = b.iter().map(|v| v * v).sum();
            prop_assert!(nb <= ns + 1e-9, "regularization grew the norm: {nb} > {ns}");
        }
    }

    #[test]
    fn lstsq_fit_is_at_least_as_good_as_zero(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 4..12),
        ys in prop::collection::vec(-10.0f64..10.0, 12),
    ) {
        let a = Matrix::from_rows(&rows).unwrap();
        let y = &ys[..rows.len()];
        if let Ok(beta) = lstsq(&a, y) {
            let pred = a.matvec(&beta).unwrap();
            let sse: f64 = y.iter().zip(pred.iter()).map(|(t, p)| (t - p) * (t - p)).sum();
            let sse_zero: f64 = y.iter().map(|t| t * t).sum();
            prop_assert!(sse <= sse_zero + 1e-6, "worse than the zero fit");
        }
    }

    #[test]
    fn matmul_is_associative_with_vectors(
        a in square(3),
        b in square(3),
        v in prop::collection::vec(-10.0f64..10.0, 3),
    ) {
        let ab_v = a.matmul(&b).unwrap().matvec(&v).unwrap();
        let a_bv = a.matvec(&b.matvec(&v).unwrap()).unwrap();
        for (l, r) in ab_v.iter().zip(a_bv.iter()) {
            prop_assert!((l - r).abs() < 1e-6 * l.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_is_an_involution(a in square(4)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// The cache-blocked GEMM must be *bitwise* equal to the unblocked
    /// i-k-j reference at shapes straddling the tile boundaries — this is
    /// the determinism contract the batched training path rests on.
    #[test]
    fn blocked_gemm_is_bitwise_identical_to_naive(
        m in 1usize..80,
        k in 1usize..80,
        n in 1usize..20,
        seed in 0u64..u64::MAX,
    ) {
        let fill = |len: usize, salt: u64| -> Vec<f64> {
            (0..len)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(seed ^ salt);
                    if h % 5 == 0 { 0.0 } else { (h >> 32) as f64 / 1e8 - 21.0 }
                })
                .collect()
        };
        let a = Matrix::from_vec(m, k, fill(m * k, 1)).unwrap();
        let b = Matrix::from_vec(k, n, fill(k * n, 2)).unwrap();
        let blocked = a.matmul(&b).unwrap();
        let mut naive = Matrix::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                let av = a[(i, kk)];
                for j in 0..n {
                    naive[(i, j)] += av * b[(kk, j)];
                }
            }
        }
        let lb: Vec<u64> = blocked.data().iter().map(|x| x.to_bits()).collect();
        let ln: Vec<u64> = naive.data().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(lb, ln);
    }

    /// `matvec` (now routed through `vector::dot`) must agree bitwise with
    /// the corresponding GEMM column, and `transpose_into`/`matmul_into`
    /// must agree with their allocating counterparts.
    #[test]
    fn into_kernels_match_allocating_kernels_bitwise(a in square(5), b in square(5)) {
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert_eq!(&out, &a.matmul(&b).unwrap());

        let mut t = Matrix::default();
        a.transpose_into(&mut t);
        prop_assert_eq!(&t, &a.transpose());

        let v = b.row(0);
        let mut mv = Vec::new();
        a.matvec_into(v, &mut mv).unwrap();
        let direct = a.matvec(v).unwrap();
        prop_assert_eq!(
            mv.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            direct.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
