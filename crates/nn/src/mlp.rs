//! Multi-layer perceptron built from [`Dense`] layers.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::network::Network;
use eadrl_linalg::Matrix;
use eadrl_rng::DetRng;

/// A feed-forward network: a chain of [`Dense`] layers.
///
/// Both the paper's policy and value networks are MLPs ("both policy and
/// value networks are based on MLPs"), and the MLP base forecaster reuses
/// this type directly.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP from a sizes vector and a hidden activation.
    ///
    /// `sizes = [in, h1, …, out]` creates `sizes.len() - 1` layers; hidden
    /// layers use `hidden_activation`, the final layer uses
    /// `output_activation`.
    ///
    /// # Panics
    /// Panics when fewer than two sizes are given.
    pub fn new(
        rng: &mut DetRng,
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Self {
        assert!(sizes.len() >= 2, "Mlp::new needs at least [in, out] sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() {
                output_activation
            } else {
                hidden_activation
            };
            layers.push(Dense::new(rng, sizes[i], sizes[i + 1], act));
        }
        Mlp { layers }
    }

    /// Replaces the final layer with a small-uniform-initialized one
    /// (DDPG-style: keeps initial outputs near zero).
    pub fn with_small_final_layer(mut self, rng: &mut DetRng, scale: f64) -> Self {
        if let Some(last) = self.layers.last_mut() {
            let (in_dim, out_dim) = (last.in_dim(), last.out_dim());
            let act = Activation::Identity;
            *last = Dense::new_small(rng, in_dim, out_dim, act, scale);
        }
        self
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Dense::in_dim)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Dense::out_dim)
    }

    /// Mutable access to the final layer (informed output initialization).
    pub fn final_layer_mut(&mut self) -> Option<&mut Dense> {
        self.layers.last_mut()
    }

    /// Forward pass with caching (training).
    pub fn forward(&mut self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in self.layers.iter_mut() {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for layer in self.layers.iter() {
            x = layer.forward_inference(&x);
        }
        x
    }

    /// Backward pass through all layers; returns the input gradient.
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        let mut g = grad_output.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Batched forward pass with caching: each layer's output batch feeds
    /// the next layer directly out of its persistent cache, so the whole
    /// pass is allocation-free at steady state. Returns the final layer's
    /// output rows.
    pub fn forward_batch(&mut self, input: &Matrix) -> &Matrix {
        let mut _kernel = eadrl_obs::span_at(eadrl_obs::Level::Trace, "nn.forward_batch");
        _kernel.record("rows", input.rows().into());
        let n = self.layers.len();
        for idx in 0..n {
            let (before, rest) = self.layers.split_at_mut(idx);
            if idx == 0 {
                rest[0].forward_batch(input);
            } else {
                let prev = before[idx - 1].batch_output();
                rest[0].forward_batch(prev);
            }
        }
        self.layers[n - 1].batch_output()
    }

    /// Output rows of the last [`Mlp::forward_batch`] call (the final
    /// layer's cached batch output).
    pub fn batch_output(&self) -> &Matrix {
        self.layers[self.layers.len() - 1].batch_output()
    }

    /// Input-gradient rows of the last [`Mlp::backward_batch`] call (the
    /// first layer's cached input gradient).
    pub fn batch_grad_input(&self) -> &Matrix {
        self.layers[0].batch_grad_input()
    }

    /// Batched backward pass through all layers (gradients accumulate in
    /// sample order, exactly as per-sample [`Mlp::backward`] calls would);
    /// returns the input-gradient rows.
    pub fn backward_batch(&mut self, grad_output: &Matrix) -> &Matrix {
        let mut _kernel = eadrl_obs::span_at(eadrl_obs::Level::Trace, "nn.backward_batch");
        _kernel.record("rows", grad_output.rows().into());
        let n = self.layers.len();
        for idx in (0..n).rev() {
            let (before, rest) = self.layers.split_at_mut(idx + 1);
            if idx == n - 1 {
                before[idx].backward_batch(grad_output);
            } else {
                let g = rest[0].batch_grad_input();
                before[idx].backward_batch(g);
            }
        }
        self.layers[0].batch_grad_input()
    }

    /// Batched backward pass for training loops that discard the input
    /// gradient: identical parameter-gradient accumulation to
    /// [`Mlp::backward_batch`] (bitwise), but the first layer skips its
    /// input-gradient GEMM — nothing sits below it to receive one.
    pub fn backward_batch_weights_only(&mut self, grad_output: &Matrix) {
        let mut _kernel = eadrl_obs::span_at(eadrl_obs::Level::Trace, "nn.backward_batch");
        _kernel.record("rows", grad_output.rows().into());
        let n = self.layers.len();
        for idx in (0..n).rev() {
            let (before, rest) = self.layers.split_at_mut(idx + 1);
            let g = if idx == n - 1 {
                grad_output
            } else {
                rest[0].batch_grad_input()
            };
            if idx == 0 {
                before[idx].backward_batch_weights_only(g);
            } else {
                before[idx].backward_batch(g);
            }
        }
    }

    /// Batched backward pass computing only the input gradients — no
    /// layer's `grad_w`/`grad_b` is touched. Bitwise identical input
    /// gradients to [`Mlp::backward_batch`], minus the weight-gradient
    /// GEMMs; see [`Dense::backward_batch_input_only`].
    pub fn backward_batch_input_only(&mut self, grad_output: &Matrix) -> &Matrix {
        let mut _kernel = eadrl_obs::span_at(eadrl_obs::Level::Trace, "nn.backward_batch");
        _kernel.record("rows", grad_output.rows().into());
        let n = self.layers.len();
        for idx in (0..n).rev() {
            let (before, rest) = self.layers.split_at_mut(idx + 1);
            if idx == n - 1 {
                before[idx].backward_batch_input_only(grad_output);
            } else {
                let g = rest[0].batch_grad_input();
                before[idx].backward_batch_input_only(g);
            }
        }
        self.layers[0].batch_grad_input()
    }
}

impl Network for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        for layer in self.layers.iter_mut() {
            layer.visit_params(f);
        }
    }
}

impl crate::network::BatchNetwork for Mlp {
    fn forward_batch(&mut self, input: &Matrix) -> &Matrix {
        Mlp::forward_batch(self, input)
    }

    fn backward_batch(&mut self, grad_output: &Matrix) -> &Matrix {
        Mlp::backward_batch(self, grad_output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{mse_loss, mse_loss_grad};
    use crate::optimizer::{Adam, Optimizer};

    #[test]
    fn shapes_are_consistent() {
        let mut rng = DetRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut rng, &[5, 8, 3], Activation::Relu, Activation::Identity);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn single_size_panics() {
        let mut rng = DetRng::seed_from_u64(0);
        let _ = Mlp::new(&mut rng, &[5], Activation::Relu, Activation::Identity);
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&mut rng, &[3, 4, 2], Activation::Tanh, Activation::Identity);
        let x = [0.2, -0.5, 0.8];
        let target = [1.0, -1.0];
        let y = mlp.forward(&x);
        let grad = mse_loss_grad(&y, &target);
        mlp.backward(&grad);

        // Spot-check parameter gradients against central finite differences.
        let flat = mlp.flat_params();
        let mut grads = Vec::new();
        mlp.visit_params(&mut |_p, g| grads.extend_from_slice(g));
        let h = 1e-6;
        for &idx in &[0usize, 5, 11, flat.len() - 1] {
            let mut up = flat.clone();
            up[idx] += h;
            let mut dn = flat.clone();
            dn[idx] -= h;
            mlp.load_flat_params(&up);
            let lu = mse_loss(&mlp.forward_inference(&x), &target);
            mlp.load_flat_params(&dn);
            let ld = mse_loss(&mlp.forward_inference(&x), &target);
            mlp.load_flat_params(&flat);
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - grads[idx]).abs() < 1e-5,
                "param {idx}: {numeric} vs {}",
                grads[idx]
            );
        }
    }

    #[test]
    fn can_learn_xor_like_function() {
        // Regression on f(x1, x2) = x1 * x2 over {-1, 1}^2 — needs the
        // hidden layer; a linear model cannot fit it.
        let mut rng = DetRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&mut rng, &[2, 8, 1], Activation::Tanh, Activation::Identity);
        let data = [
            ([-1.0, -1.0], 1.0),
            ([-1.0, 1.0], -1.0),
            ([1.0, -1.0], -1.0),
            ([1.0, 1.0], 1.0),
        ];
        let mut opt = Adam::new(0.05);
        for _ in 0..400 {
            mlp.zero_grad();
            for (x, t) in data.iter() {
                let y = mlp.forward(x);
                let g = mse_loss_grad(&y, &[*t]);
                mlp.backward(&g);
            }
            opt.step(&mut mlp);
        }
        for (x, t) in data.iter() {
            let y = mlp.forward_inference(x)[0];
            assert!((y - t).abs() < 0.2, "f({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn small_final_layer_outputs_near_zero() {
        let mut rng = DetRng::seed_from_u64(5);
        let mlp = Mlp::new(
            &mut rng,
            &[4, 16, 3],
            Activation::Relu,
            Activation::Identity,
        )
        .with_small_final_layer(&mut rng, 1e-3);
        let y = mlp.forward_inference(&[1.0, -1.0, 2.0, 0.5]);
        assert!(y.iter().all(|v| v.abs() < 0.1), "{y:?}");
    }

    #[test]
    fn flat_roundtrip_preserves_behaviour() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut a = Mlp::new(&mut rng, &[3, 5, 2], Activation::Tanh, Activation::Identity);
        let mut rng2 = DetRng::seed_from_u64(99);
        let mut b = Mlp::new(
            &mut rng2,
            &[3, 5, 2],
            Activation::Tanh,
            Activation::Identity,
        );
        b.load_flat_params(&a.flat_params());
        let x = [0.1, 0.2, 0.3];
        assert_eq!(a.forward_inference(&x), b.forward_inference(&x));
    }
}
