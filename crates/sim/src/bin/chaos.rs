//! Chaos-suite driver.
//!
//! ```text
//! chaos run [--unhardened] [--json] [--plan FILE]
//! ```
//!
//! `run` drives the standard chaos scenarios (plus the drift-refresh
//! scenario) through the hardened serving path and exits non-zero if
//! any degradation invariant is violated. With `--unhardened` the same
//! fault plans run through the deliberately naive serving loop instead;
//! violations are then *expected*, so CI invokes it inverted
//! (`! chaos run --unhardened`) — if the naive loop ever stops
//! violating, the fault injection itself has rotted. `--plan FILE`
//! replaces the standard plans with one loaded from disk; `--json`
//! emits a machine-readable summary line per scenario.

use eadrl_sim::{
    run_refresh_scenario, run_scenario, run_unhardened, run_warm_refresh_scenario,
    standard_scenarios, FaultPlan, Scenario, ScenarioOutcome,
};
use std::process::ExitCode;

struct Options {
    unhardened: bool,
    json: bool,
    plan: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: chaos run [--unhardened] [--json] [--plan FILE]");
    ExitCode::from(2)
}

fn summarize(outcome: &ScenarioOutcome, json: bool) {
    if json {
        // Tool-output JSON assembled by hand, same as the lint driver:
        // the workspace has no serializer dependency by design.
        let violations: Vec<String> = outcome
            .report
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        println!(
            "{{\"scenario\":\"{}\",\"steps\":{},\"events\":{},\"quarantine_enters\":{},\
             \"quarantine_exits\":{},\"degraded\":{},\"sanitize\":{},\
             \"fingerprint\":\"{:016x}\",\"violations\":[{}]}}",
            outcome.name,
            outcome.report.checked_steps,
            outcome.report.checked_events,
            outcome.quarantine_enters,
            outcome.quarantine_exits,
            outcome.degraded_events,
            outcome.sanitize_events,
            outcome.telemetry_fingerprint(),
            violations.join(",")
        );
    } else {
        println!(
            "scenario {:<28} steps {:>3}  events {:>5}  quarantine {}/{}  degraded {:>3}  \
             sanitize {:>3}  fingerprint {:016x}  {}",
            outcome.name,
            outcome.report.checked_steps,
            outcome.report.checked_events,
            outcome.quarantine_enters,
            outcome.quarantine_exits,
            outcome.degraded_events,
            outcome.sanitize_events,
            outcome.telemetry_fingerprint(),
            if outcome.report.passed() {
                "PASS".to_string()
            } else {
                format!("FAIL ({} violations)", outcome.report.violations.len())
            }
        );
        for violation in &outcome.report.violations {
            println!("  violation: {violation}");
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("run") {
        return usage();
    }
    let mut opts = Options {
        unhardened: false,
        json: false,
        plan: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--unhardened" => opts.unhardened = true,
            "--json" => opts.json = true,
            "--plan" => match args.next() {
                Some(path) => opts.plan = Some(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let scenarios = match &opts.plan {
        None => standard_scenarios(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("chaos: cannot read plan `{path}`: {e}");
                    return ExitCode::from(2);
                }
            };
            match FaultPlan::parse(&text) {
                Ok(plan) => vec![Scenario::new(path, plan, 7)],
                Err(e) => {
                    eprintln!("chaos: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut failed = false;
    for scenario in &scenarios {
        let outcome = if opts.unhardened {
            run_unhardened(scenario)
        } else {
            run_scenario(scenario)
        };
        failed |= !outcome.report.passed();
        summarize(&outcome, opts.json);
    }
    if !opts.unhardened && opts.plan.is_none() {
        // The drift-refresh phase rides along on the hardened suite.
        let mut refresh = Scenario::new(
            "drift-refresh",
            FaultPlan::parse("seed 5\ngap 30 4\n").expect("static plan parses"),
            404,
        );
        refresh.series_len = 300;
        let outcome = run_refresh_scenario(&refresh);
        failed |= !outcome.report.passed();
        summarize(&outcome, opts.json);
        // … as does the warm-start refresh phase with faults landing
        // mid-refresh (ragged buffer rows → quarantined attempts →
        // cold fallback → eventual clean deploy).
        let mut warm_refresh = Scenario::new(
            "warm-start-refresh",
            FaultPlan::parse("seed 6\ngap 50 3\n").expect("static plan parses"),
            505,
        );
        warm_refresh.series_len = 360;
        let outcome = run_warm_refresh_scenario(&warm_refresh);
        failed |= !outcome.report.passed();
        summarize(&outcome, opts.json);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
