//! Real-world deployment workflow on your own data:
//!
//! 1. load a series from CSV (a sample file is written to a temp dir
//!    here so the example is self-contained — point `read_csv_file` at
//!    your own data),
//! 2. fit EA-DRL offline,
//! 3. save the trained policy to disk,
//! 4. restore it in a "fresh process" and forecast.
//!
//! ```text
//! cargo run --release --example custom_data
//! ```

use eadrl::core::{Combiner, EaDrl, EaDrlConfig, EaDrlPolicy, PolicySnapshot};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::quick_pool;
use eadrl::timeseries::metrics::rmse;
use eadrl::timeseries::{read_csv_file, write_csv, Frequency};

fn main() {
    let dir = std::env::temp_dir();
    let data_path = dir.join("my_demand.csv");
    let policy_path = dir.join("my_policy.eadrl");

    // --- 0. Fabricate a CSV so the example runs stand-alone. With real
    //        data you would skip this and point at your file.
    {
        let demo = generate(DatasetId::WaterConsumption, 420, 7);
        let mut f = std::fs::File::create(&data_path).expect("create csv");
        write_csv(&mut f, &demo).expect("write csv");
    }

    // --- 1. Load: column 1 of `index,value` rows, daily cadence.
    let series = read_csv_file(&data_path, 1, Frequency::Daily).expect("read csv");
    println!("loaded {:?}: {} observations", series.name(), series.len());
    let (train, test) = series.split(0.75);

    // --- 2. Fit EA-DRL offline.
    let mut config = EaDrlConfig::default();
    config.episodes = 25;
    let mut model = EaDrl::new(quick_pool(5, 7, 7), config.clone());
    model.fit(train).expect("fit");
    println!("trained over {} models", model.n_models());

    // --- 3. Persist the learned policy. `EaDrl` owns an `EaDrlPolicy`;
    //        for deployment you snapshot the policy and keep the fitted
    //        pool (or refit it at the deployment site).
    let mut deploy_policy = EaDrlPolicy::new(config.clone());
    {
        // Rebuild the same training inputs the model used, purely to show
        // the snapshot workflow end-to-end at the policy level.
        let fit_len = (train.len() as f64 * 0.75).round() as usize;
        let (fit_part, warm_part) = train.split_at(fit_len);
        let mut pool = quick_pool(5, 7, 7);
        pool.retain_mut(|m| m.fit(fit_part).is_ok());
        let preds: Vec<Vec<f64>> = (0..warm_part.len())
            .map(|t| {
                let hist = &train[..fit_len + t];
                pool.iter().map(|m| m.predict_next(hist)).collect()
            })
            .collect();
        deploy_policy.warm_up(&preds, warm_part);
        let snapshot = deploy_policy.snapshot().expect("trained");
        let mut f = std::fs::File::create(&policy_path).expect("create policy file");
        snapshot.write(&mut f).expect("write policy");
        println!(
            "policy saved to {} ({} parameters)",
            policy_path.display(),
            snapshot.params.len()
        );
    }

    // --- 4. "Fresh process": restore and forecast online.
    let file = std::fs::File::open(&policy_path).expect("open policy file");
    let snapshot = PolicySnapshot::read(file).expect("parse policy");
    let mut restored = EaDrlPolicy::restore(config, &snapshot);
    let mut pool = quick_pool(5, 7, 7);
    let fit_len = (train.len() as f64 * 0.75).round() as usize;
    pool.retain_mut(|m| m.fit(&train[..fit_len]).is_ok());

    let mut history = train.to_vec();
    let mut forecasts = Vec::with_capacity(test.len());
    for &actual in test {
        let preds: Vec<f64> = pool.iter().map(|m| m.predict_next(&history)).collect();
        forecasts.push(restored.combine(&preds));
        restored.observe(&preds, actual);
        history.push(actual);
    }
    println!(
        "restored-policy rolling RMSE over {} test steps: {:.4}",
        test.len(),
        rmse(test, &forecasts)
    );

    let _ = std::fs::remove_file(&data_path);
    let _ = std::fs::remove_file(&policy_path);
}
