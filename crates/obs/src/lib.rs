//! # eadrl-obs — zero-dependency telemetry for the EA-DRL workspace
//!
//! Observability primitives used across training, online serving and
//! the bench suite, built on `std` only:
//!
//! * **Metrics** ([`metrics`]) — lock-free counters and gauges, plus
//!   streaming log-bucketed histograms with p50/p90/p99 snapshots, kept
//!   in a process-wide [`metrics::Registry`].
//! * **Spans** ([`mod@span`]) — RAII scoped timers with hierarchical
//!   `/`-joined names (`eadrl.fit/ddpg.episode/ddpg.update`).
//! * **Events & sinks** ([`mod@event`], [`sink`]) — structured events with a
//!   stable JSONL wire format, routed to a no-op sink (default), an
//!   in-memory ring buffer (tests) or a JSONL file/stderr stream.
//!
//! ## Enabling telemetry
//!
//! Telemetry is off by default and costs one relaxed atomic load per
//! guarded call site. Turn it on programmatically:
//!
//! ```
//! use std::sync::Arc;
//! let sink = Arc::new(eadrl_obs::RingSink::new(1024));
//! eadrl_obs::set_sink(sink.clone());
//! eadrl_obs::set_level(Some(eadrl_obs::Level::Debug));
//! ```
//!
//! or through the environment (first telemetry touch reads it once):
//!
//! ```text
//! EADRL_OBS=jsonl                  # JSONL to stderr, debug level
//! EADRL_OBS=jsonl:trace.jsonl@info # JSONL to a file, info level
//! ```
//!
//! ## Event levels used by the workspace
//!
//! | level | what |
//! |-------|------|
//! | warn  | contract violations (`ddpg.episode.empty`) |
//! | info  | fit/episode/refresh-grained progress |
//! | debug | per-step weight vectors, `predict_next` spans |
//! | trace | per-minibatch `ddpg.update` spans |

pub mod config;
pub mod context;
pub mod event;
pub mod json;
pub mod metrics;
pub mod schema;
pub mod sink;
pub mod span;

pub use config::{ObsConfig, SinkTarget};
pub use context::{current_span_path, thread_id, worker_context, WorkerContext};
pub use event::{Event, EventKind, Level, Value};
pub use metrics::{global_registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use schema::ObsSchema;
pub use sink::{EventSink, JsonlSink, NoopSink, RingSink};
pub use span::Span;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

// Packed level: 0 = off, otherwise Level discriminant + 1.
const LEVEL_OFF: u8 = 0;

struct Obs {
    level: AtomicU8,
    sink: RwLock<Arc<dyn EventSink>>,
}

fn level_to_u8(level: Option<Level>) -> u8 {
    match level {
        None => LEVEL_OFF,
        Some(Level::Error) => 1,
        Some(Level::Warn) => 2,
        Some(Level::Info) => 3,
        Some(Level::Debug) => 4,
        Some(Level::Trace) => 5,
    }
}

fn obs() -> &'static Obs {
    static OBS: OnceLock<Obs> = OnceLock::new();
    OBS.get_or_init(|| {
        let state = Obs {
            level: AtomicU8::new(LEVEL_OFF),
            sink: RwLock::new(Arc::new(NoopSink)),
        };
        apply_config(&state, &ObsConfig::from_env());
        state
    })
}

// eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
fn apply_config(state: &Obs, config: &ObsConfig) {
    let sink: Arc<dyn EventSink> = match &config.target {
        SinkTarget::Noop => Arc::new(NoopSink),
        SinkTarget::Stderr => Arc::new(JsonlSink::stderr()),
        SinkTarget::File(path) => match JsonlSink::file(path) {
            Ok(s) => Arc::new(s),
            Err(err) => {
                eprintln!(
                    "eadrl-obs: cannot open {}: {err}; telemetry disabled",
                    path.display()
                );
                Arc::new(NoopSink)
            }
        },
    };
    *state.sink.write().unwrap() = sink;
    state
        .level
        .store(level_to_u8(config.level), Ordering::Release);
}

/// Installs a configuration (sink + level), replacing the current one.
pub fn init(config: &ObsConfig) {
    apply_config(obs(), config);
}

/// Replaces the event sink, leaving the level untouched.
// eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
pub fn set_sink(sink: Arc<dyn EventSink>) {
    *obs().sink.write().unwrap() = sink;
}

/// Sets the maximum emitted level; `None` disables event emission.
pub fn set_level(level: Option<Level>) {
    obs().level.store(level_to_u8(level), Ordering::Release);
}

/// The current maximum emitted level (`None` when off).
pub fn level() -> Option<Level> {
    match obs().level.load(Ordering::Acquire) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// True when events at `level` would currently be emitted. This is the
/// cheap guard to wrap expensive field computation in:
///
/// ```
/// if eadrl_obs::enabled(eadrl_obs::Level::Debug) {
///     // compute gradient norms, emit event ...
/// }
/// ```
#[inline]
pub fn enabled(level: Level) -> bool {
    obs().level.load(Ordering::Relaxed) >= level_to_u8(Some(level))
}

/// Sends an already-built event to the sink if its level is enabled.
/// Inside a buffering [`worker_context`], the event is captured on the
/// current thread instead (the pool replays it via [`emit_batch`]).
// eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
pub fn emit(event: Event) {
    if !enabled(event.level) {
        return;
    }
    if context::buffer_push(&event) {
        return;
    }
    obs().sink.read().unwrap().emit(&event);
}

/// Replays a batch of already-level-checked events (a worker buffer) to
/// the sink, preserving their order. Called by `eadrl-par` after joining
/// its workers, one batch per worker in worker-index order. When the
/// calling thread is itself inside a buffering [`worker_context`] (a
/// nested pool), the batch lands in that outer buffer instead.
// eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
pub fn emit_batch(events: Vec<Event>) {
    if events.is_empty() {
        return;
    }
    if context::buffer_extend(&events) {
        return;
    }
    let sink = obs().sink.read().unwrap();
    for event in &events {
        sink.emit(event);
    }
}

/// Flushes the current sink.
// eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
pub fn flush() {
    obs().sink.read().unwrap().flush();
}

/// Emits a point event with fields, e.g.
/// `eadrl_obs::event("ddpg.episode", Level::Info, &[("reward", r.into())])`.
/// Field values are only cloned when the level is enabled — but prefer
/// [`event_with`] when *computing* the fields is itself expensive.
pub fn event(name: &str, level: Level, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let mut e = Event::new(name, EventKind::Event, level);
    for (k, v) in fields {
        e = e.field(k, v.clone());
    }
    emit(e);
}

/// Emits a point event whose fields are built lazily — the closure runs
/// only when `level` is enabled.
pub fn event_with(name: &str, level: Level, build: impl FnOnce() -> Vec<(String, Value)>) {
    if !enabled(level) {
        return;
    }
    let mut e = Event::new(name, EventKind::Event, level);
    e.fields = build();
    emit(e);
}

/// Emits a warning event (contract violations, degraded behaviour).
pub fn warn(name: &str, fields: &[(&str, Value)]) {
    event(name, Level::Warn, fields);
}

/// Starts an info-level span. Bind it: `let _span = eadrl_obs::span("eadrl.fit");`.
pub fn span(name: &'static str) -> Span {
    Span::enter(name)
}

/// Starts a span at an explicit level.
pub fn span_at(level: Level, name: &'static str) -> Span {
    Span::enter_at(level, name)
}

/// A counter from the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global_registry().counter(name)
}

/// A gauge from the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global_registry().gauge(name)
}

/// A histogram from the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global_registry().histogram(name)
}

/// Snapshots every metric in the global registry as metric-kind events
/// and emits them at info level (useful at the end of a run).
pub fn emit_metrics_snapshot() {
    for e in global_registry().snapshot_events() {
        emit(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global level/sink are process-wide; keep every mutation of them
    // inside this one test to avoid cross-test interference.
    #[test]
    fn global_pipeline_gates_by_level() {
        let sink = Arc::new(RingSink::new(64));
        set_sink(sink.clone());
        set_level(Some(Level::Info));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert_eq!(level(), Some(Level::Info));

        event("lib.test.visible", Level::Info, &[("n", 1u64.into())]);
        event("lib.test.hidden", Level::Debug, &[]);
        let mut ran = false;
        event_with("lib.test.lazy.hidden", Level::Trace, || {
            ran = true;
            vec![]
        });
        assert!(!ran, "lazy fields must not be built when disabled");

        {
            let _outer = span("lib.test.outer");
            let _inner = span_at(Level::Debug, "lib.test.inner");
            assert!(_outer.is_recording());
            assert!(!_inner.is_recording());
        }

        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        assert!(names.contains(&"lib.test.visible".to_string()));
        assert!(names.contains(&"lib.test.outer".to_string()));
        assert!(!names.iter().any(|n| n.contains("hidden")));
        assert!(!names.iter().any(|n| n.contains("inner")));

        // Span duration landed in the global histogram.
        let h = histogram("lib.test.outer.duration_us");
        assert!(h.count() >= 1);

        // Reset so other binaries/tests in this process see the default.
        set_level(None);
        set_sink(Arc::new(NoopSink));
    }
}
