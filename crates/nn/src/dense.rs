//! Fully-connected layer with a fused activation.

use crate::activation::Activation;
use crate::init;
use crate::network::Network;
use eadrl_rng::DetRng;

/// A dense layer `y = act(W x + b)`.
///
/// `W` is stored row-major with shape `(out, in)`. The layer caches its last
/// input and output so [`Dense::backward`] can run without re-computing the
/// forward pass; gradients accumulate into `grad_w`/`grad_b` until
/// [`Network::zero_grad`].
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f64>,
    b: Vec<f64>,
    activation: Activation,
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    cache_input: Vec<f64>,
    cache_output: Vec<f64>,
}

impl Dense {
    /// Creates a layer with activation-appropriate initialization
    /// (He for ReLU, Xavier otherwise) and zero biases.
    pub fn new(rng: &mut DetRng, in_dim: usize, out_dim: usize, activation: Activation) -> Self {
        let n = in_dim * out_dim;
        let w = match activation {
            Activation::Relu => init::he_uniform(rng, in_dim, n),
            _ => init::xavier_uniform(rng, in_dim, out_dim, n),
        };
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            activation,
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_dim],
            cache_input: Vec::new(),
            cache_output: Vec::new(),
        }
    }

    /// Creates a layer whose weights and biases are drawn from
    /// `U(-scale, scale)` — DDPG's near-zero final-layer initialization.
    pub fn new_small(
        rng: &mut DetRng,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        scale: f64,
    ) -> Self {
        let n = in_dim * out_dim;
        Dense {
            in_dim,
            out_dim,
            w: init::small_uniform(rng, scale, n),
            b: init::small_uniform(rng, scale, out_dim),
            activation,
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_dim],
            cache_input: Vec::new(),
            cache_output: Vec::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Mutable access to the bias vector (informed initialization).
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.b
    }

    /// Forward pass; caches input and output for [`Dense::backward`].
    pub fn forward(&mut self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.in_dim, "Dense forward: input dim");
        let mut out = self.b.clone();
        for (o, wrow) in out.iter_mut().zip(self.w.chunks_exact(self.in_dim)) {
            *o += wrow
                .iter()
                .zip(input.iter())
                .map(|(w, x)| w * x)
                .sum::<f64>();
        }
        self.activation.apply_in_place(&mut out);
        self.cache_input = input.to_vec();
        self.cache_output = out.clone();
        out
    }

    /// Forward pass without caching (inference-only; cheaper and leaves the
    /// training caches untouched).
    pub fn forward_inference(&self, input: &[f64]) -> Vec<f64> {
        debug_assert_eq!(input.len(), self.in_dim, "Dense forward: input dim");
        let mut out = self.b.clone();
        for (o, wrow) in out.iter_mut().zip(self.w.chunks_exact(self.in_dim)) {
            *o += wrow
                .iter()
                .zip(input.iter())
                .map(|(w, x)| w * x)
                .sum::<f64>();
        }
        self.activation.apply_in_place(&mut out);
        out
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    /// Debug-panics when called before [`Dense::forward`] or with a
    /// mismatched gradient length.
    pub fn backward(&mut self, grad_output: &[f64]) -> Vec<f64> {
        debug_assert_eq!(grad_output.len(), self.out_dim, "Dense backward: dim");
        debug_assert_eq!(
            self.cache_input.len(),
            self.in_dim,
            "Dense backward called before forward"
        );
        let mut grad_input = vec![0.0; self.in_dim];
        for (j, (&gy, &y)) in grad_output.iter().zip(self.cache_output.iter()).enumerate() {
            // Chain through the activation.
            let dz = gy * self.activation.derivative_from_output(y);
            // eadrl-lint: allow(no-float-eq): activation subgradient — exact zero means no gradient flows, skip is lossless
            if dz == 0.0 {
                continue;
            }
            self.grad_b[j] += dz;
            let wrow = &self.w[j * self.in_dim..(j + 1) * self.in_dim];
            let grow = &mut self.grad_w[j * self.in_dim..(j + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += dz * self.cache_input[i];
                grad_input[i] += dz * wrow[i];
            }
        }
        grad_input
    }
}

impl Network for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(act: Activation) -> Dense {
        let mut rng = DetRng::seed_from_u64(42);
        Dense::new(&mut rng, 3, 2, act)
    }

    #[test]
    fn forward_computes_affine_map() {
        let mut d = layer(Activation::Identity);
        // Overwrite weights with known values.
        d.w = vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0];
        d.b = vec![0.5, -0.5];
        let y = d.forward(&[2.0, 3.0, 4.0]);
        assert_eq!(y, vec![2.5, 6.5]);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut d = layer(Activation::Tanh);
        let x = [0.3, -0.7, 1.1];
        let a = d.forward(&x);
        let b = d.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut d = layer(Activation::Tanh);
        let x = [0.4, -0.2, 0.9];
        // Loss = sum of outputs; grad_output = 1s.
        let y = d.forward(&x);
        let _ = y;
        let gin = d.backward(&[1.0, 1.0]);

        let h = 1e-6;
        // Check dLoss/dw for a few weights.
        for &wi in &[0usize, 2, 4, 5] {
            let orig = d.w[wi];
            d.w[wi] = orig + h;
            let up: f64 = d.forward_inference(&x).iter().sum();
            d.w[wi] = orig - h;
            let dn: f64 = d.forward_inference(&x).iter().sum();
            d.w[wi] = orig;
            let numeric = (up - dn) / (2.0 * h);
            assert!(
                (numeric - d.grad_w[wi]).abs() < 1e-5,
                "w[{wi}]: {numeric} vs {}",
                d.grad_w[wi]
            );
        }
        // Check dLoss/dx.
        for i in 0..3 {
            let mut xp = x;
            xp[i] += h;
            let up: f64 = d.forward_inference(&xp).iter().sum();
            xp[i] -= 2.0 * h;
            let dn: f64 = d.forward_inference(&xp).iter().sum();
            let numeric = (up - dn) / (2.0 * h);
            assert!((numeric - gin[i]).abs() < 1e-5, "x[{i}]");
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut d = layer(Activation::Identity);
        let x = [1.0, 1.0, 1.0];
        d.forward(&x);
        d.backward(&[1.0, 0.0]);
        let g1 = d.grad_w[0];
        d.forward(&x);
        d.backward(&[1.0, 0.0]);
        assert!((d.grad_w[0] - 2.0 * g1).abs() < 1e-12);
        d.zero_grad();
        assert_eq!(d.grad_w[0], 0.0);
        assert_eq!(d.grad_b[0], 0.0);
    }

    #[test]
    fn param_count_and_flat_roundtrip() {
        let mut d = layer(Activation::Relu);
        assert_eq!(d.param_count(), 3 * 2 + 2);
        let flat = d.flat_params();
        let mut d2 = layer(Activation::Relu);
        d2.load_flat_params(&flat);
        assert_eq!(d2.flat_params(), flat);
    }

    #[test]
    fn soft_update_moves_toward_source() {
        let mut d = layer(Activation::Identity);
        let source = vec![1.0; d.param_count()];
        let before = d.flat_params();
        d.soft_update_from(&source, 0.5);
        let after = d.flat_params();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((a - (0.5 * 1.0 + 0.5 * b)).abs() < 1e-12);
        }
    }

    #[test]
    fn clip_grad_norm_bounds_gradients() {
        let mut d = layer(Activation::Identity);
        d.forward(&[10.0, 10.0, 10.0]);
        d.backward(&[100.0, 100.0]);
        d.clip_grad_norm(1.0);
        assert!(d.grad_norm() <= 1.0 + 1e-9);
    }
}
