// Fixture: no-unwrap-in-lib. Linted with the pretend path
// `crates/core/src/fixture.rs`. Tagged lines must produce exactly one
// finding of the named rule on that line.

pub fn positives(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap(); //~ no-unwrap-in-lib
    let b = r.expect("bad"); //~ no-unwrap-in-lib
    if a + b == 3 {
        panic!("boom"); //~ no-unwrap-in-lib
    }
    if a > 9 {
        unreachable!(); //~ no-unwrap-in-lib
    }
    todo!() //~ no-unwrap-in-lib
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // eadrl-lint: allow(no-unwrap-in-lib): fixture demonstrating a well-formed suppression
    v.unwrap()
}

pub fn negatives(v: Option<u32>) -> u32 {
    assert!(v.is_some(), "asserts document invariants and are exempt");
    debug_assert_eq!(v, Some(1));
    v.unwrap_or(7) // unwrap_or is a fallback, not a panic
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_test_code_are_fine() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        v.expect("fine here");
        panic!("also fine");
    }
}
