//! `no-unwrap-in-lib`: forbid panicking escape hatches in library code.
//!
//! A stray panic in `linalg`/`nn`/`models`/`rl`/`core`/`eval`/
//! `timeseries` takes down a whole evaluation sweep (and, in the online
//! phase, the serving process). Library code must propagate `Result` or
//! fall back; only tests may panic freely.

use crate::lexer::TokenKind;
use crate::rules::{Finding, LintContext, Rule, RESULT_CRATES};
use crate::source::SourceFile;

/// Forbidden method calls (matched as `.name(`).
const METHODS: &[&str] = &["unwrap", "expect"];
/// Forbidden macros (matched as `name!`).
const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// See module docs.
pub struct NoUnwrapInLib;

impl Rule for NoUnwrapInLib {
    fn name(&self) -> &'static str {
        "no-unwrap-in-lib"
    }

    fn description(&self) -> &'static str {
        "forbid .unwrap()/.expect()/panic!/unreachable! in non-test library code of the result-producing crates"
    }

    fn check(&self, file: &SourceFile, _ctx: &LintContext, out: &mut Vec<Finding>) {
        if !file.in_any(RESULT_CRATES) {
            return;
        }
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_test_code(t.line) {
                continue;
            }
            let name = t.text.as_str();
            if METHODS.contains(&name) {
                let after_dot = matches!(
                    toks.get(i.wrapping_sub(1)),
                    Some(p) if p.kind == TokenKind::Punct && p.text == "."
                );
                let before_paren = matches!(
                    toks.get(i + 1),
                    Some(n) if n.kind == TokenKind::Punct && n.text == "("
                );
                if after_dot && before_paren {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            ".{name}() can panic — propagate the error (`?`, typed error) or use an explicit fallback"
                        ),
                    });
                }
            } else if MACROS.contains(&name) {
                let is_macro = matches!(
                    toks.get(i + 1),
                    Some(n) if n.kind == TokenKind::Punct && n.text == "!"
                );
                // `assert!`-family is deliberately NOT flagged: asserts
                // document invariants; unwraps hide them. But a bare
                // `panic!` in library code is a forecast-killing bug.
                if is_macro {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "{name}! aborts the computation — return a typed error instead"
                        ),
                    });
                }
            }
        }
    }
}
