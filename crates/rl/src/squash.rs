//! Differentiable output maps applied to the raw actor output.

/// How raw actor outputs are mapped into the environment's action space.
///
/// The EA-DRL paper applies "a standard normalization … to the output of
/// the policy network, so that all the weights are positive and sum to
/// one" — that is [`ActionSquash::Softmax`]. [`ActionSquash::Tanh`] is the
/// classical DDPG bounded-action map and [`ActionSquash::Identity`] leaves
/// actions unbounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActionSquash {
    /// No transformation.
    Identity,
    /// Per-component `tanh` (actions in `(-1, 1)`).
    Tanh,
    /// Softmax onto the probability simplex (positive, sums to one).
    Softmax,
    /// `softmax(scale · tanh(raw))`: softmax over *bounded* logits.
    ///
    /// Plain softmax lets the deterministic policy gradient push one logit
    /// up forever; the action saturates to a one-hot vector, the softmax
    /// Jacobian vanishes, and learning dies. Bounding the logits to
    /// `[-scale, scale]` caps how concentrated the weight vector can get
    /// (max weight ≈ `e^{2·scale} / (e^{2·scale} + m - 1)`) and keeps
    /// gradients alive.
    BoundedSoftmax {
        /// Logit bound; 3.0 allows ≈ 90 % concentration in a 43-model pool.
        scale: f64,
    },
}

impl ActionSquash {
    /// Applies the map to a raw actor output.
    pub fn forward(self, raw: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; raw.len()];
        self.forward_into(raw, &mut out);
        out
    }

    /// Allocation-free [`ActionSquash::forward`]: writes the squashed
    /// action into `out` (e.g. directly into a staged minibatch row).
    /// Identical arithmetic, so results are bitwise equal to `forward`.
    ///
    /// # Panics
    /// Debug-panics when `out.len() != raw.len()`.
    pub fn forward_into(self, raw: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), raw.len(), "squash forward_into: dim");
        match self {
            ActionSquash::Identity => out.copy_from_slice(raw),
            ActionSquash::Tanh => {
                for (o, x) in out.iter_mut().zip(raw.iter()) {
                    *o = x.tanh();
                }
            }
            ActionSquash::Softmax => {
                out.copy_from_slice(raw);
                softmax_in_place(out);
            }
            ActionSquash::BoundedSoftmax { scale } => {
                for (o, x) in out.iter_mut().zip(raw.iter()) {
                    *o = scale * x.tanh();
                }
                softmax_in_place(out);
            }
        }
    }

    /// Vector-Jacobian product: given the raw actor output `raw`, the
    /// squashed output `y` and a gradient `dy` with respect to `y`, returns
    /// the gradient with respect to `raw`. This is what lets the
    /// deterministic policy gradient flow through the squash into the
    /// actor network.
    pub fn backward(self, raw: &[f64], output: &[f64], grad_output: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; raw.len()];
        self.backward_into(raw, output, grad_output, &mut out);
        out
    }

    /// Allocation-free [`ActionSquash::backward`]: writes the raw-output
    /// gradient into `out`. Identical arithmetic, so results are bitwise
    /// equal to `backward`.
    ///
    /// # Panics
    /// Debug-panics when `out.len() != raw.len()`.
    pub fn backward_into(self, raw: &[f64], output: &[f64], grad_output: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), raw.len(), "squash backward_into: dim");
        match self {
            ActionSquash::Identity => out.copy_from_slice(grad_output),
            ActionSquash::Tanh => {
                for (o, (y, g)) in out.iter_mut().zip(output.iter().zip(grad_output.iter())) {
                    *o = g * (1.0 - y * y);
                }
            }
            ActionSquash::Softmax => {
                let dot = simplex_grad_dot(output, grad_output);
                for (o, (p, g)) in out.iter_mut().zip(output.iter().zip(grad_output.iter())) {
                    *o = p * (g - dot);
                }
            }
            ActionSquash::BoundedSoftmax { scale } => {
                // Fused single pass over the softmax VJP and the
                // bounded-logit chain rule: per element the expression
                // tree is identical to materializing the intermediate
                // `gz` vector, so results are bitwise unchanged.
                let dot = simplex_grad_dot(output, grad_output);
                let it = raw.iter().zip(output.iter().zip(grad_output.iter()));
                for (o, (x, (p, g))) in out.iter_mut().zip(it) {
                    let gz = p * (g - dot);
                    let t = x.tanh();
                    *o = gz * scale * (1.0 - t * t);
                }
            }
        }
    }
}

/// The scalar `p·g` of the softmax VJP
/// (`J = diag(p) - p pᵀ  =>  Jᵀ g = p ⊙ (g - p·g)`).
fn simplex_grad_dot(output: &[f64], grad_output: &[f64]) -> f64 {
    output
        .iter()
        .zip(grad_output.iter())
        .map(|(p, g)| p * g)
        .sum()
}

/// Stable softmax computed in one buffer: same max-shift / exp / normalize
/// sequence as the allocating form, just without the intermediate vectors,
/// so every element sees the identical chain of operations.
fn softmax_in_place(a: &mut [f64]) {
    if a.is_empty() {
        return;
    }
    let m = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        a.fill(1.0 / a.len() as f64);
        return;
    }
    for x in a.iter_mut() {
        *x = (*x - m).exp();
    }
    let s: f64 = a.iter().sum();
    for x in a.iter_mut() {
        *x /= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(squash: ActionSquash, raw: &[f64]) {
        let h = 1e-6;
        let y = squash.forward(raw);
        // Loss = Σ c_i y_i with arbitrary coefficients.
        let coeffs: Vec<f64> = (0..raw.len()).map(|i| 1.0 + i as f64 * 0.7).collect();
        let grad = squash.backward(raw, &y, &coeffs);
        for j in 0..raw.len() {
            let mut up = raw.to_vec();
            up[j] += h;
            let mut dn = raw.to_vec();
            dn[j] -= h;
            let lu: f64 = squash
                .forward(&up)
                .iter()
                .zip(coeffs.iter())
                .map(|(a, b)| a * b)
                .sum();
            let ld: f64 = squash
                .forward(&dn)
                .iter()
                .zip(coeffs.iter())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - grad[j]).abs() < 1e-5,
                "{squash:?} dim {j}: {numeric} vs {}",
                grad[j]
            );
        }
    }

    #[test]
    fn identity_is_transparent() {
        let raw = [1.0, -2.0];
        assert_eq!(ActionSquash::Identity.forward(&raw), raw.to_vec());
        finite_diff_check(ActionSquash::Identity, &raw);
    }

    #[test]
    fn tanh_bounds_and_gradient() {
        let raw = [0.3, -1.5, 4.0];
        let y = ActionSquash::Tanh.forward(&raw);
        assert!(y.iter().all(|v| v.abs() < 1.0));
        finite_diff_check(ActionSquash::Tanh, &raw);
    }

    #[test]
    fn softmax_is_simplex_and_gradient() {
        let raw = [0.2, -0.4, 1.1, 0.0];
        let y = ActionSquash::Softmax.forward(&raw);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&v| v > 0.0));
        finite_diff_check(ActionSquash::Softmax, &raw);
    }

    #[test]
    fn softmax_handles_extreme_inputs() {
        let y = ActionSquash::Softmax.forward(&[1e6, 0.0]);
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bounded_softmax_is_simplex_and_gradient() {
        let raw = [0.4, -0.9, 2.0, 0.1];
        let sq = ActionSquash::BoundedSoftmax { scale: 3.0 };
        let y = sq.forward(&raw);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(y.iter().all(|&v| v > 0.0));
        finite_diff_check(sq, &raw);
    }

    #[test]
    fn bounded_softmax_caps_concentration() {
        // Even with an enormous logit, the max weight is bounded by the
        // tanh saturation: e^{2·scale} / (e^{2·scale} + m - 1).
        let sq = ActionSquash::BoundedSoftmax { scale: 3.0 };
        let y = sq.forward(&[1e9, 0.0, 0.0, 0.0]);
        let cap = (6.0_f64).exp() / ((6.0_f64).exp() + 3.0 * (3.0_f64).exp());
        assert!(y[0] <= cap + 1e-9, "y0 = {} cap = {cap}", y[0]);
        assert!(y[0] < 1.0 - 1e-3, "must not fully collapse");
    }
}
