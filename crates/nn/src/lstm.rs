//! LSTM and bidirectional-LSTM sequence layers with full BPTT.

use crate::init;
use crate::network::Network;
use eadrl_rng::DetRng;

/// Per-timestep cache of everything the backward pass needs.
#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    // Not read by the backward pass (it uses `tanh_c`), but kept so the
    // serialized cache stays a complete record of the forward step.
    #[allow(dead_code)]
    c: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// A single-layer LSTM over sequences of input vectors.
///
/// Gate order in the packed weight matrices is `i, f, g, o` (input, forget,
/// candidate, output). `w` maps inputs (shape `4H x in_dim`), `u` maps the
/// previous hidden state (shape `4H x H`), `b` is the bias (`4H`; the
/// forget-gate slice is initialized to 1.0, the standard trick that keeps
/// memory open early in training).
#[derive(Debug, Clone)]
pub struct Lstm {
    in_dim: usize,
    hidden: usize,
    w: Vec<f64>,
    u: Vec<f64>,
    b: Vec<f64>,
    grad_w: Vec<f64>,
    grad_u: Vec<f64>,
    grad_b: Vec<f64>,
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights.
    pub fn new(rng: &mut DetRng, in_dim: usize, hidden: usize) -> Self {
        let w = init::xavier_uniform(rng, in_dim, hidden, 4 * hidden * in_dim);
        let u = init::xavier_uniform(rng, hidden, hidden, 4 * hidden * hidden);
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias = 1.
        for v in b.iter_mut().take(2 * hidden).skip(hidden) {
            *v = 1.0;
        }
        Lstm {
            in_dim,
            hidden,
            grad_w: vec![0.0; 4 * hidden * in_dim],
            grad_u: vec![0.0; 4 * hidden * hidden],
            grad_b: vec![0.0; 4 * hidden],
            w,
            u,
            b,
            cache: Vec::new(),
        }
    }

    /// Input dimension per timestep.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden-state size.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Runs the sequence and returns the final hidden state, caching the
    /// full unrolled pass for [`Lstm::backward_last`].
    pub fn forward_sequence(&mut self, inputs: &[Vec<f64>]) -> Vec<f64> {
        self.cache.clear();
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        for x in inputs {
            let (nh, nc, step) = self.step(x, &h, &c);
            self.cache.push(step);
            h = nh;
            c = nc;
        }
        h
    }

    /// Runs the sequence and returns *every* hidden state (training pass;
    /// caches for [`Lstm::backward_full`]). Used by stacked LSTMs, where
    /// the next layer consumes the full hidden sequence.
    pub fn forward_sequence_full(&mut self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.cache.clear();
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut out = Vec::with_capacity(inputs.len());
        for x in inputs {
            let (nh, nc, step) = self.step(x, &h, &c);
            self.cache.push(step);
            h = nh;
            c = nc;
            out.push(h.clone());
        }
        out
    }

    /// Inference-only pass returning every hidden state.
    pub fn forward_inference_full(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut out = Vec::with_capacity(inputs.len());
        for x in inputs {
            let (nh, nc, _) = self.step_no_cache(x, &h, &c);
            h = nh;
            c = nc;
            out.push(h.clone());
        }
        out
    }

    /// Inference-only pass (no caching); returns the final hidden state.
    pub fn forward_inference(&self, inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        for x in inputs {
            let (nh, nc, _) = self.step_no_cache(x, &h, &c);
            h = nh;
            c = nc;
        }
        h
    }

    fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, StepCache) {
        debug_assert_eq!(x.len(), self.in_dim, "Lstm step: input dim");
        let hsz = self.hidden;
        // z = W x + U h_prev + b, gate blocks [i | f | g | o].
        let mut z = self.b.clone();
        for (row, zv) in z.iter_mut().enumerate() {
            let wrow = &self.w[row * self.in_dim..(row + 1) * self.in_dim];
            let urow = &self.u[row * hsz..(row + 1) * hsz];
            *zv += wrow.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>()
                + urow
                    .iter()
                    .zip(h_prev.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>();
        }
        let sigmoid = |v: f64| 1.0 / (1.0 + (-v).exp());
        let i: Vec<f64> = z[..hsz].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f64> = z[hsz..2 * hsz].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f64> = z[2 * hsz..3 * hsz].iter().map(|&v| v.tanh()).collect();
        let o: Vec<f64> = z[3 * hsz..].iter().map(|&v| sigmoid(v)).collect();
        let c: Vec<f64> = (0..hsz).map(|k| f[k] * c_prev[k] + i[k] * g[k]).collect();
        let tanh_c: Vec<f64> = c.iter().map(|v| v.tanh()).collect();
        let h: Vec<f64> = (0..hsz).map(|k| o[k] * tanh_c[k]).collect();
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c: c.clone(),
            tanh_c,
        };
        (h, c, cache)
    }

    fn step_no_cache(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, ()) {
        let (h, c, _) = self.step(x, h_prev, c_prev);
        (h, c, ())
    }

    /// BPTT from a gradient on the *final* hidden state.
    ///
    /// Accumulates parameter gradients and returns the gradients with
    /// respect to each input vector (same order as the forward inputs).
    ///
    /// # Panics
    /// Panics when called before [`Lstm::forward_sequence`].
    pub fn backward_last(&mut self, grad_h_last: &[f64]) -> Vec<Vec<f64>> {
        assert!(
            !self.cache.is_empty(),
            "Lstm::backward_last called before forward_sequence"
        );
        let steps = self.cache.len();
        let mut grads = vec![vec![0.0; self.hidden]; steps];
        grads[steps - 1].copy_from_slice(grad_h_last);
        self.backward_full(&grads)
    }

    /// BPTT with a gradient on *every* hidden state (stacked-LSTM case).
    ///
    /// `grad_hs[t]` is the gradient flowing into hidden state `h_t` from
    /// above; returns gradients with respect to each input vector.
    ///
    /// # Panics
    /// Panics when called before a forward pass or with a mismatched
    /// number of step gradients.
    pub fn backward_full(&mut self, grad_hs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert!(
            !self.cache.is_empty(),
            "Lstm::backward_full called before forward_sequence"
        );
        let hsz = self.hidden;
        let steps = self.cache.len();
        assert_eq!(grad_hs.len(), steps, "one hidden gradient per step");
        let mut grad_inputs = vec![vec![0.0; self.in_dim]; steps];
        let mut dh = vec![0.0; hsz];
        let mut dc_next = vec![0.0; hsz];

        for t in (0..steps).rev() {
            for (d, g) in dh.iter_mut().zip(grad_hs[t].iter()) {
                *d += g;
            }
            // Move the cache entry out to avoid borrowing issues; restore after.
            let cache = std::mem::take(&mut self.cache[t]);
            let mut dz = vec![0.0; 4 * hsz]; // pre-activation grads [i|f|g|o]
            let mut dc_prev = vec![0.0; hsz];
            for k in 0..hsz {
                let do_k = dh[k] * cache.tanh_c[k];
                let dc =
                    dc_next[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
                let di = dc * cache.g[k];
                let df = dc * cache.c_prev[k];
                let dg = dc * cache.i[k];
                dc_prev[k] = dc * cache.f[k];
                dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                dz[hsz + k] = df * cache.f[k] * (1.0 - cache.f[k]);
                dz[2 * hsz + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
                dz[3 * hsz + k] = do_k * cache.o[k] * (1.0 - cache.o[k]);
            }
            // Parameter gradients and input/hidden gradients.
            let mut dh_prev = vec![0.0; hsz];
            for row in 0..4 * hsz {
                let d = dz[row];
                // eadrl-lint: allow(no-float-eq): subgradient sparsity skip — exact zero contributes nothing to any parameter
                if d == 0.0 {
                    continue;
                }
                self.grad_b[row] += d;
                let gw = &mut self.grad_w[row * self.in_dim..(row + 1) * self.in_dim];
                for (gwi, &xi) in gw.iter_mut().zip(cache.x.iter()) {
                    *gwi += d * xi;
                }
                let gu = &mut self.grad_u[row * hsz..(row + 1) * hsz];
                for (gui, &hi) in gu.iter_mut().zip(cache.h_prev.iter()) {
                    *gui += d * hi;
                }
                let wrow = &self.w[row * self.in_dim..(row + 1) * self.in_dim];
                for (gi, &wv) in grad_inputs[t].iter_mut().zip(wrow.iter()) {
                    *gi += d * wv;
                }
                let urow = &self.u[row * hsz..(row + 1) * hsz];
                for (ghi, &uv) in dh_prev.iter_mut().zip(urow.iter()) {
                    *ghi += d * uv;
                }
            }
            self.cache[t] = cache;
            dh = dh_prev;
            dc_next = dc_prev;
        }
        grad_inputs
    }
}

impl Network for Lstm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.u, &mut self.grad_u);
        f(&mut self.b, &mut self.grad_b);
    }
}

/// A bidirectional LSTM: one LSTM reads the sequence forward, another reads
/// it reversed; the output is the concatenation of both final hidden states
/// (length `2 * hidden`).
#[derive(Debug, Clone)]
pub struct BiLstm {
    forward: Lstm,
    backward: Lstm,
}

impl BiLstm {
    /// Creates a bidirectional LSTM; each direction has `hidden` units.
    pub fn new(rng: &mut DetRng, in_dim: usize, hidden: usize) -> Self {
        BiLstm {
            forward: Lstm::new(rng, in_dim, hidden),
            backward: Lstm::new(rng, in_dim, hidden),
        }
    }

    /// Output dimension (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.forward.hidden_dim()
    }

    /// Training forward pass; returns `[h_fwd ‖ h_bwd]`.
    pub fn forward_sequence(&mut self, inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut out = self.forward.forward_sequence(inputs);
        let reversed: Vec<Vec<f64>> = inputs.iter().rev().cloned().collect();
        out.extend(self.backward.forward_sequence(&reversed));
        out
    }

    /// Inference pass.
    pub fn forward_inference(&self, inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut out = self.forward.forward_inference(inputs);
        let reversed: Vec<Vec<f64>> = inputs.iter().rev().cloned().collect();
        out.extend(self.backward.forward_inference(&reversed));
        out
    }

    /// BPTT from a gradient on the concatenated output; returns per-input
    /// gradients in forward order.
    pub fn backward_last(&mut self, grad_out: &[f64]) -> Vec<Vec<f64>> {
        let h = self.forward.hidden_dim();
        debug_assert_eq!(grad_out.len(), 2 * h);
        let mut grads = self.forward.backward_last(&grad_out[..h]);
        let bwd_grads = self.backward.backward_last(&grad_out[h..]);
        // bwd_grads are in reversed-input order; fold them back.
        for (fwd_idx, g) in bwd_grads.into_iter().rev().enumerate() {
            for (a, b) in grads[fwd_idx].iter_mut().zip(g.iter()) {
                *a += b;
            }
        }
        grads
    }
}

impl Network for BiLstm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.forward.visit_params(f);
        self.backward.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: &[f64]) -> Vec<Vec<f64>> {
        vals.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn forward_matches_inference() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut lstm = Lstm::new(&mut rng, 1, 4);
        let inputs = seq(&[0.1, -0.2, 0.5]);
        let a = lstm.forward_sequence(&inputs);
        let b = lstm.forward_inference(&inputs);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn output_depends_on_order() {
        let mut rng = DetRng::seed_from_u64(2);
        let lstm = Lstm::new(&mut rng, 1, 3);
        let a = lstm.forward_inference(&seq(&[1.0, 0.0, -1.0]));
        let b = lstm.forward_inference(&seq(&[-1.0, 0.0, 1.0]));
        assert_ne!(a, b, "LSTM must be order-sensitive");
    }

    #[test]
    fn bptt_gradcheck_weights() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut lstm = Lstm::new(&mut rng, 2, 3);
        let inputs = vec![vec![0.3, -0.1], vec![0.7, 0.2], vec![-0.5, 0.4]];
        // Loss = sum of final hidden state.
        lstm.forward_sequence(&inputs);
        let ones = vec![1.0; 3];
        lstm.backward_last(&ones);

        let flat = lstm.flat_params();
        let mut grads = Vec::new();
        lstm.visit_params(&mut |_p, g| grads.extend_from_slice(g));
        let h = 1e-6;
        let loss = |l: &Lstm| -> f64 { l.forward_inference(&inputs).iter().sum() };
        for &idx in &[0usize, 7, 20, flat.len() - 2, flat.len() - 1] {
            let mut up = flat.clone();
            up[idx] += h;
            let mut dn = flat.clone();
            dn[idx] -= h;
            lstm.load_flat_params(&up);
            let lu = loss(&lstm);
            lstm.load_flat_params(&dn);
            let ld = loss(&lstm);
            lstm.load_flat_params(&flat);
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - grads[idx]).abs() < 1e-5,
                "param {idx}: {numeric} vs {}",
                grads[idx]
            );
        }
    }

    #[test]
    fn bptt_gradcheck_inputs() {
        let mut rng = DetRng::seed_from_u64(4);
        let mut lstm = Lstm::new(&mut rng, 1, 2);
        let inputs = seq(&[0.5, -0.3, 0.8, 0.1]);
        lstm.forward_sequence(&inputs);
        let gin = lstm.backward_last(&[1.0, 1.0]);
        let h = 1e-6;
        for t in 0..inputs.len() {
            let mut up = inputs.clone();
            up[t][0] += h;
            let mut dn = inputs.clone();
            dn[t][0] -= h;
            let lu: f64 = lstm.forward_inference(&up).iter().sum();
            let ld: f64 = lstm.forward_inference(&dn).iter().sum();
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - gin[t][0]).abs() < 1e-5,
                "input {t}: {numeric} vs {}",
                gin[t][0]
            );
        }
    }

    #[test]
    #[should_panic(expected = "before forward_sequence")]
    fn backward_before_forward_panics() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut lstm = Lstm::new(&mut rng, 1, 2);
        lstm.backward_last(&[1.0, 1.0]);
    }

    #[test]
    fn bilstm_concatenates_directions() {
        let mut rng = DetRng::seed_from_u64(6);
        let mut bi = BiLstm::new(&mut rng, 1, 3);
        let out = bi.forward_sequence(&seq(&[0.1, 0.2, 0.3]));
        assert_eq!(out.len(), 6);
        assert_eq!(bi.out_dim(), 6);
    }

    #[test]
    fn bilstm_gradcheck_inputs() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut bi = BiLstm::new(&mut rng, 1, 2);
        let inputs = seq(&[0.4, -0.6, 0.2]);
        bi.forward_sequence(&inputs);
        let gin = bi.backward_last(&[1.0; 4]);
        let h = 1e-6;
        for t in 0..inputs.len() {
            let mut up = inputs.clone();
            up[t][0] += h;
            let mut dn = inputs.clone();
            dn[t][0] -= h;
            let lu: f64 = bi.forward_inference(&up).iter().sum();
            let ld: f64 = bi.forward_inference(&dn).iter().sum();
            let numeric = (lu - ld) / (2.0 * h);
            assert!(
                (numeric - gin[t][0]).abs() < 1e-5,
                "input {t}: {numeric} vs {}",
                gin[t][0]
            );
        }
    }

    #[test]
    fn full_sequence_matches_stepwise_last() {
        let mut rng = DetRng::seed_from_u64(10);
        let mut lstm = Lstm::new(&mut rng, 1, 3);
        let inputs = seq(&[0.2, -0.4, 0.9]);
        let all = lstm.forward_sequence_full(&inputs);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2], lstm.forward_inference(&inputs));
        assert_eq!(all, lstm.forward_inference_full(&inputs));
    }

    #[test]
    fn backward_full_gradcheck_inputs() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut lstm = Lstm::new(&mut rng, 1, 2);
        let inputs = seq(&[0.3, -0.5, 0.7]);
        // Loss = sum over ALL hidden states of all components.
        lstm.forward_sequence_full(&inputs);
        let grads = vec![vec![1.0; 2]; 3];
        let gin = lstm.backward_full(&grads);
        let loss = |l: &Lstm, inp: &[Vec<f64>]| -> f64 {
            l.forward_inference_full(inp)
                .iter()
                .flat_map(|h| h.iter())
                .sum()
        };
        let h = 1e-6;
        for t in 0..inputs.len() {
            let mut up = inputs.clone();
            up[t][0] += h;
            let mut dn = inputs.clone();
            dn[t][0] -= h;
            let numeric = (loss(&lstm, &up) - loss(&lstm, &dn)) / (2.0 * h);
            assert!(
                (numeric - gin[t][0]).abs() < 1e-5,
                "input {t}: {numeric} vs {}",
                gin[t][0]
            );
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = DetRng::seed_from_u64(8);
        let lstm = Lstm::new(&mut rng, 1, 4);
        assert!(lstm.b[4..8].iter().all(|&v| v == 1.0));
        assert!(lstm.b[..4].iter().all(|&v| v == 0.0));
    }
}
