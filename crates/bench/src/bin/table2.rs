//! Regenerates **Table II**: pairwise Bayesian-correlated-t-test
//! comparison between EA-DRL and every baseline over the 20 datasets,
//! plus the average-rank distribution (ω = 10).
//!
//! ```text
//! cargo run -p eadrl-bench --release --bin table2 [-- --quick]
//! ```

use eadrl_bench::{evaluate_all, json_output, print_json_report, Scale};
use eadrl_eval::{
    average_ranks, friedman_test, nemenyi_critical_difference, pairwise_table, render_table,
};
use eadrl_obs::json::JsonValue;

fn main() {
    let scale = Scale::from_args();
    eprintln!(
        "Running Table II sweep ({} datasets, pool = {}, episodes = {})...",
        20,
        if scale.quick_pool {
            "quick(8)"
        } else {
            "standard(43)"
        },
        scale.episodes
    );
    let evals = evaluate_all(scale);

    // Collect per-method predictions across datasets.
    let method_names: Vec<String> = evals[0].results.iter().map(|r| r.name.clone()).collect();
    let actuals: Vec<Vec<f64>> = evals.iter().map(|e| e.test_actuals.clone()).collect();
    let preds_of = |name: &str| -> Vec<Vec<f64>> {
        evals
            .iter()
            .map(|e| {
                e.result(name)
                    .expect("method in every eval")
                    .predictions
                    .clone()
            })
            .collect()
    };
    let reference = preds_of("EA-DRL");
    let baselines: Vec<(String, Vec<Vec<f64>>)> = method_names
        .iter()
        .filter(|n| n.as_str() != "EA-DRL")
        .map(|n| (n.clone(), preds_of(n)))
        .collect();

    // Rank distribution over all 16 methods.
    let scores: Vec<Vec<f64>> = evals
        .iter()
        .map(|e| {
            method_names
                .iter()
                .map(|n| e.result(n).expect("method").rmse)
                .collect()
        })
        .collect();
    let ranks = average_ranks(&method_names, &scores);
    let rank_of = |name: &str| ranks.iter().find(|r| r.name == name).expect("ranked");

    // Pairwise wins/losses from EA-DRL's perspective. rho ≈ 1/n_test for
    // rolling-origin evaluation.
    let rho = 1.0 / actuals[0].len().max(2) as f64;
    let rows = pairwise_table(&actuals, &reference, &baselines, rho, 0.95);

    if json_output() {
        let methods: Vec<JsonValue> = rows
            .iter()
            .map(|row| {
                let r = rank_of(&row.method);
                JsonValue::Obj(vec![
                    ("method".to_string(), row.method.as_str().into()),
                    ("losses".to_string(), row.losses.into()),
                    (
                        "significant_losses".to_string(),
                        row.significant_losses.into(),
                    ),
                    ("wins".to_string(), row.wins.into()),
                    ("significant_wins".to_string(), row.significant_wins.into()),
                    ("rank_mean".to_string(), r.mean.into()),
                    ("rank_std".to_string(), r.std.into()),
                ])
            })
            .collect();
        let ea = rank_of("EA-DRL");
        let per_dataset: Vec<JsonValue> = evals
            .iter()
            .zip(scores.iter())
            .map(|(e, row)| {
                JsonValue::Obj(vec![
                    ("dataset".to_string(), e.dataset.as_str().into()),
                    ("rmse".to_string(), row.as_slice().into()),
                ])
            })
            .collect();
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("methods".to_string(), JsonValue::Arr(methods)),
            ("eadrl_rank_mean".to_string(), ea.mean.into()),
            ("eadrl_rank_std".to_string(), ea.std.into()),
            (
                "method_names".to_string(),
                JsonValue::Arr(method_names.iter().map(|n| n.as_str().into()).collect()),
            ),
            ("per_dataset".to_string(), JsonValue::Arr(per_dataset)),
        ];
        if let Some(fr) = friedman_test(&scores) {
            fields.push(("friedman_chi2".to_string(), fr.chi_square.into()));
            fields.push(("friedman_p".to_string(), fr.p_value.into()));
        }
        print_json_report("table2", fields);
        return;
    }

    let mut table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let r = rank_of(&row.method);
            vec![
                row.method.clone(),
                format!("{}({})", row.losses, row.significant_losses),
                format!("{}({})", row.wins, row.significant_wins),
                format!("{:.2} ± {:.1}", r.mean, r.std),
            ]
        })
        .collect();
    let ea = rank_of("EA-DRL");
    table_rows.push(vec![
        "EA-DRL".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.2} ± {:.1}", ea.mean, ea.std),
    ]);

    println!(
        "\nTable II - pairwise comparison between EA-DRL and baseline methods\naveraged over all 20 datasets (omega = 10). Looses/Wins are from\nEA-DRL's perspective; parentheses = significant at 95% posterior.\n"
    );
    println!(
        "{}",
        render_table(&["Method", "Looses", "Wins", "Avg. Rank"], &table_rows)
    );

    // Friedman test over the full method × dataset rank matrix (the
    // frequentist companion analysis; Demšar 2006, the paper's [43]).
    if let Some(fr) = friedman_test(&scores) {
        println!(
            "\nFriedman test: chi2 = {:.2}, Iman-Davenport F = {:.2}, p = {:.2e} ({})",
            fr.chi_square,
            fr.f_statistic,
            fr.p_value,
            if fr.rejects_at(0.05) {
                "methods differ significantly"
            } else {
                "no significant differences"
            }
        );
        if let Some(cd) = nemenyi_critical_difference(method_names.len(), evals.len()) {
            println!("Nemenyi critical difference (alpha = 0.05): {cd:.2} average-rank units");
        }
    }

    // Machine-readable results for external plotting.
    let csv_path = std::path::Path::new("target").join("table2_results.csv");
    if let Ok(mut f) = std::fs::File::create(&csv_path) {
        use std::io::Write;
        let _ = writeln!(f, "dataset,{}", method_names.join(","));
        for (e, row) in evals.iter().zip(scores.iter()) {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(f, "{},{}", e.dataset.replace(',', "_"), cells.join(","));
        }
        eprintln!("per-dataset RMSE matrix written to {}", csv_path.display());
    }

    // Per-dataset RMSE appendix (not in the paper's table, but useful).
    println!("\nPer-dataset test RMSE:");
    let mut detail: Vec<Vec<String>> = Vec::new();
    for e in &evals {
        let best = e.ranking()[0].to_string();
        detail.push(vec![
            e.dataset.clone(),
            format!("{:.4}", e.result("EA-DRL").unwrap().rmse),
            format!("{:.4}", e.result("DEMSC").unwrap().rmse),
            format!("{:.4}", e.result("SE").unwrap().rmse),
            best,
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Dataset", "EA-DRL", "DEMSC", "SE", "Best method"],
            &detail
        )
    );
}
