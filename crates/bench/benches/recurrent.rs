//! Benchmarks for the fused stacked-gate recurrent training path:
//! windows-as-matrix LSTM/BiLSTM training epochs and the im2col Conv1d
//! batch pass against their per-sequence predecessors.
//!
//! Flags (combinable):
//! - `--quick`   shrink the measurement budget for CI smoke runs;
//! - `--json`    print a machine-readable `recurrent_bench` report on stdout;
//! - `--out <p>` also write that JSON document to the file `<p>`;
//! - `--check`   exit non-zero if the batched LSTM training epoch is
//!   slower than the per-sequence path at any batch size ≥ 32 (the perf
//!   regression gate wired into CI).
//!
//! Each epoch sample runs [`N_WINDOWS`] synthetic windows through
//! `N_WINDOWS / batch` optimizer steps via `iter_batched` with freshly
//! seeded networks per sample: the two paths are bitwise-identical, so
//! both traverse the same weight trajectory and see the same activation
//! sparsity — a controlled comparison, and every sample deterministic.
//! The measurement protocol is documented in `EXPERIMENTS.md`.

use eadrl_bench::harness::{Harness, Summary};
use eadrl_bench::{json_output, print_json_report};
use eadrl_linalg::Matrix;
use eadrl_nn::{
    mse_loss_grad, Activation, Adam, BiLstm, BiRecurrentWorkspace, Conv1d, ConvWorkspace, Dense,
    Lstm, Network, Optimizer, RecurrentWorkspace,
};
use eadrl_obs::json::JsonValue;
use eadrl_rng::DetRng;
use std::hint::black_box;

/// Windows per training epoch (each sample times one full epoch).
const N_WINDOWS: usize = 128;
/// Forecaster-representative shapes: scalar inputs over a k=12 embedded
/// window, hidden width 8 (the pool members run h ∈ [6, 20]).
const STEPS: usize = 12;
const HIDDEN: usize = 8;

fn dataset(seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = DetRng::seed_from_u64(seed);
    let windows: Vec<Vec<f64>> = (0..N_WINDOWS)
        .map(|i| {
            (0..STEPS)
                .map(|t| {
                    // Structured zeros exercise the kernels' zero-skip
                    // branches at a realistic post-ReLU-like density.
                    if (i + t) % 5 == 0 {
                        0.0
                    } else {
                        rng.random_range(-1.0..1.0)
                    }
                })
                .collect()
        })
        .collect();
    let targets: Vec<f64> = (0..N_WINDOWS)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    (windows, targets)
}

/// Recurrent layer + head as one parameter group (mirrors the models
/// crate wiring) so Adam's positional moments line up across paths.
struct Stack<'a, R: Network>(&'a mut R, &'a mut Dense);

impl<R: Network> Network for Stack<'_, R> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.0.visit_params(f);
        self.1.visit_params(f);
    }
}

fn fresh_lstm() -> (Lstm, Dense, Adam) {
    let mut rng = DetRng::seed_from_u64(21);
    let lstm = Lstm::new(&mut rng, 1, HIDDEN);
    let head = Dense::new(&mut rng, HIDDEN, 1, Activation::Identity);
    (lstm, head, Adam::new(0.01))
}

fn fresh_bilstm() -> (BiLstm, Dense, Adam) {
    let mut rng = DetRng::seed_from_u64(23);
    let bi = BiLstm::new(&mut rng, 1, HIDDEN);
    let head = Dense::new(&mut rng, 2 * HIDDEN, 1, Activation::Identity);
    (bi, head, Adam::new(0.01))
}

/// One `lstm_epoch_batchN` group per batch size; returns
/// `(batch, per_sequence_summary, batched_summary)` rows for the report
/// and the `--check` gate.
fn bench_lstm_epoch(c: &mut Harness, batch_sizes: &[usize]) -> Vec<(usize, Summary, Summary)> {
    let (windows, targets) = dataset(0x5EED);
    let idx: Vec<usize> = (0..N_WINDOWS).collect();
    let mut results = Vec::new();
    for &batch in batch_sizes {
        let mut group = c.benchmark_group(format!("lstm_epoch_batch{batch}"));
        group.bench_function("per_sequence", |b| {
            b.iter_batched(fresh_lstm, |(mut lstm, mut head, mut opt)| {
                for chunk in idx.chunks(batch) {
                    let mut g = Stack(&mut lstm, &mut head);
                    g.zero_grad();
                    for &i in chunk {
                        let seq: Vec<Vec<f64>> = windows[i].iter().map(|&v| vec![v]).collect();
                        let h = g.0.forward_sequence(&seq);
                        let y = g.1.forward(&h);
                        let gr = mse_loss_grad(&y, &[targets[i]]);
                        let gh = g.1.backward(&gr);
                        g.0.backward_last(&gh);
                    }
                    g.clip_grad_norm(5.0);
                    opt.step(&mut g);
                }
                black_box(lstm.flat_params()[0])
            });
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    let nets = fresh_lstm();
                    (
                        nets,
                        RecurrentWorkspace::new(),
                        Matrix::default(),
                        Matrix::default(),
                    )
                },
                |((mut lstm, mut head, mut opt), mut ws, mut hb, mut gb)| {
                    for chunk in idx.chunks(batch) {
                        let mut g = Stack(&mut lstm, &mut head);
                        g.zero_grad();
                        let n = chunk.len();
                        ws.stage(n, STEPS, 1, HIDDEN);
                        for (s, &i) in chunk.iter().enumerate() {
                            for (t, v) in windows[i].iter().enumerate() {
                                ws.set_input(s, t, std::slice::from_ref(v));
                            }
                        }
                        g.0.forward_batch(&mut ws);
                        hb.resize(n, HIDDEN);
                        hb.data_mut().copy_from_slice(ws.h_last());
                        gb.resize(n, 1);
                        {
                            let out = g.1.forward_batch(&hb);
                            for (r, &i) in chunk.iter().enumerate() {
                                let gr = mse_loss_grad(out.row(r), &[targets[i]]);
                                gb.row_mut(r).copy_from_slice(&gr);
                            }
                        }
                        let gh = g.1.backward_batch(&gb);
                        g.0.backward_batch_last(gh.data(), &mut ws, false);
                        g.clip_grad_norm(5.0);
                        opt.step(&mut g);
                    }
                    black_box(lstm.flat_params()[0])
                },
            );
        });
        let summaries = group.finish();
        let get = |id: &str| -> Summary {
            summaries
                .iter()
                .find(|(name, _)| name == id)
                .map(|(_, s)| *s)
                .unwrap_or(Summary {
                    median_ns: f64::NAN,
                    mean_ns: f64::NAN,
                    min_ns: f64::NAN,
                })
        };
        results.push((batch, get("per_sequence"), get("batched")));
    }
    results
}

/// BiLSTM epoch at one representative batch size.
fn bench_bilstm_epoch(c: &mut Harness, batch: usize) -> Vec<(String, Summary)> {
    let (windows, targets) = dataset(0xB15);
    let idx: Vec<usize> = (0..N_WINDOWS).collect();
    let mut group = c.benchmark_group(format!("bilstm_epoch_batch{batch}"));
    group.bench_function("per_sequence", |b| {
        b.iter_batched(fresh_bilstm, |(mut bi, mut head, mut opt)| {
            for chunk in idx.chunks(batch) {
                let mut g = Stack(&mut bi, &mut head);
                g.zero_grad();
                for &i in chunk {
                    let seq: Vec<Vec<f64>> = windows[i].iter().map(|&v| vec![v]).collect();
                    let h = g.0.forward_sequence(&seq);
                    let y = g.1.forward(&h);
                    let gr = mse_loss_grad(&y, &[targets[i]]);
                    let gh = g.1.backward(&gr);
                    g.0.backward_last(&gh);
                }
                g.clip_grad_norm(5.0);
                opt.step(&mut g);
            }
            black_box(bi.flat_params()[0])
        });
    });
    group.bench_function("batched", |b| {
        b.iter_batched(
            || {
                let nets = fresh_bilstm();
                (
                    nets,
                    BiRecurrentWorkspace::new(),
                    Matrix::default(),
                    Matrix::default(),
                )
            },
            |((mut bi, mut head, mut opt), mut ws, mut hb, mut gb)| {
                for chunk in idx.chunks(batch) {
                    let mut g = Stack(&mut bi, &mut head);
                    g.zero_grad();
                    let n = chunk.len();
                    ws.stage(n, STEPS, 1, HIDDEN);
                    for (s, &i) in chunk.iter().enumerate() {
                        for (t, v) in windows[i].iter().enumerate() {
                            ws.set_input(s, t, std::slice::from_ref(v));
                        }
                    }
                    g.0.forward_batch(&mut ws);
                    hb.resize(n, 2 * HIDDEN);
                    hb.data_mut().copy_from_slice(ws.output());
                    gb.resize(n, 1);
                    {
                        let out = g.1.forward_batch(&hb);
                        for (r, &i) in chunk.iter().enumerate() {
                            let gr = mse_loss_grad(out.row(r), &[targets[i]]);
                            gb.row_mut(r).copy_from_slice(&gr);
                        }
                    }
                    let gh = g.1.backward_batch(&gb);
                    g.0.backward_batch_last(gh.data(), &mut ws, false);
                    g.clip_grad_norm(5.0);
                    opt.step(&mut g);
                }
                black_box(bi.flat_params()[0])
            },
        );
    });
    group.finish()
}

/// Conv1d forward+backward over one staged batch: per-sample loops vs
/// the im2col GEMM path (weights-only backward on both sides of the
/// comparison — the CNN-LSTM wiring discards conv input gradients).
fn bench_conv_batch(c: &mut Harness, batch: usize) -> Vec<(String, Summary)> {
    let (windows, _) = dataset(0xC0);
    let (oc, k, in_len) = (4, 3, STEPS);
    let t_out = in_len - k + 1;
    let mut rng = DetRng::seed_from_u64(29);
    let conv_seed = Conv1d::new(&mut rng, 1, oc, k, Activation::Relu);
    let mut group = c.benchmark_group(format!("conv_fwd_bwd_c{oc}_k{k}_batch{batch}"));
    group.bench_function("per_sample", |b| {
        b.iter_batched(
            || conv_seed.clone(),
            |mut conv| {
                conv.zero_grad();
                for w in windows.iter().take(batch) {
                    let y = conv.forward(std::slice::from_ref(w));
                    let g: Vec<Vec<f64>> = y
                        .iter()
                        .map(|ch| ch.iter().map(|v| v - 0.25).collect())
                        .collect();
                    conv.backward(&g);
                }
                black_box(conv.grad_norm())
            },
        );
    });
    group.bench_function("batched", |b| {
        b.iter_batched(
            || (conv_seed.clone(), ConvWorkspace::new()),
            |(mut conv, mut ws)| {
                conv.zero_grad();
                conv.stage_batch(&mut ws, batch, in_len);
                for (s, w) in windows.iter().take(batch).enumerate() {
                    ws.input_mut(s).copy_from_slice(w);
                }
                conv.forward_batch(&mut ws);
                for s in 0..batch {
                    for t in 0..t_out {
                        let y: Vec<f64> = ws.output_row(s, t).to_vec();
                        let grow = ws.grad_output_row_mut(s, t);
                        for (gv, yv) in grow.iter_mut().zip(&y) {
                            *gv = yv - 0.25;
                        }
                    }
                }
                conv.backward_batch_weights_only(&mut ws);
                black_box(conv.grad_norm())
            },
        );
    });
    group.finish()
}

/// `--out <path>` value, when present. Relative paths are resolved
/// against the workspace root (cargo runs bench binaries with the
/// package directory as cwd, which is rarely where the artifact should
/// land).
fn out_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let raw = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))?;
    let path = std::path::PathBuf::from(raw);
    if path.is_absolute() {
        return Some(path);
    }
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Some(std::path::Path::new(&dir).join("../..").join(path)),
        Err(_) => Some(path),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");

    let mut h = if quick {
        Harness::default()
            .measurement_time(std::time::Duration::from_millis(300))
            .warm_up_time(std::time::Duration::from_millis(100))
            .sample_size(10)
    } else {
        Harness::default()
            .measurement_time(std::time::Duration::from_secs(2))
            .warm_up_time(std::time::Duration::from_millis(500))
            .sample_size(20)
    };

    let lstm = bench_lstm_epoch(&mut h, &[16, 32, 64]);
    let bilstm = bench_bilstm_epoch(&mut h, 64);
    let conv = bench_conv_batch(&mut h, 64);

    let pick = |rows: &[(String, Summary)], id: &str| -> f64 {
        rows.iter()
            .find(|(name, _)| name == id)
            .map_or(f64::NAN, |(_, s)| s.median_ns)
    };
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("n_windows".to_string(), N_WINDOWS.into()),
        ("steps".to_string(), STEPS.into()),
        ("hidden".to_string(), HIDDEN.into()),
    ];
    let mut gate_failures = Vec::new();
    for (batch, per, bat) in &lstm {
        let speedup = per.median_ns / bat.median_ns;
        fields.push((
            format!("lstm_epoch_batch{batch}_per_sequence_median_ns"),
            per.median_ns.into(),
        ));
        fields.push((
            format!("lstm_epoch_batch{batch}_batched_median_ns"),
            bat.median_ns.into(),
        ));
        fields.push((
            format!("lstm_epoch_batch{batch}_speedup_batched"),
            speedup.into(),
        ));
        // NaN (e.g. a zero-time fluke) must also trip the gate, hence
        // the negated comparison rather than `speedup < 1.0`.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if *batch >= 32 && !(speedup >= 1.0) {
            gate_failures.push((*batch, speedup));
        }
    }
    let bi_per = pick(&bilstm, "per_sequence");
    let bi_bat = pick(&bilstm, "batched");
    fields.push((
        "bilstm_epoch_batch64_per_sequence_median_ns".to_string(),
        bi_per.into(),
    ));
    fields.push((
        "bilstm_epoch_batch64_batched_median_ns".to_string(),
        bi_bat.into(),
    ));
    fields.push((
        "bilstm_epoch_batch64_speedup_batched".to_string(),
        (bi_per / bi_bat).into(),
    ));
    let cv_per = pick(&conv, "per_sample");
    let cv_bat = pick(&conv, "batched");
    fields.push((
        "conv_fwd_bwd_batch64_per_sample_median_ns".to_string(),
        cv_per.into(),
    ));
    fields.push((
        "conv_fwd_bwd_batch64_batched_median_ns".to_string(),
        cv_bat.into(),
    ));
    fields.push((
        "conv_fwd_bwd_batch64_speedup_batched".to_string(),
        (cv_per / cv_bat).into(),
    ));

    let doc = {
        let mut obj: Vec<(String, JsonValue)> =
            vec![("report".to_string(), "recurrent_bench".into())];
        obj.extend(fields.iter().cloned());
        JsonValue::Obj(obj).to_json()
    };
    if let Some(path) = out_path() {
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if json_output() {
        print_json_report("recurrent_bench", fields);
    }

    if check {
        if gate_failures.is_empty() {
            eprintln!(
                "check passed: batched LSTM epoch at least matches per-sequence at batch >= 32"
            );
        } else {
            for (batch, speedup) in &gate_failures {
                eprintln!(
                    "check FAILED: batched LSTM epoch slower than per-sequence at batch {batch} \
                     (speedup {speedup:.3}x)"
                );
            }
            std::process::exit(1);
        }
    }
}
