//! Exponential-smoothing forecasters (SES, Holt, additive Holt–Winters).

use crate::forecaster::{fallback_forecast, Forecaster, ModelError};

/// The exponential-smoothing variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtsKind {
    /// Simple exponential smoothing (level only).
    Simple,
    /// Holt's linear trend method (level + trend).
    Holt,
    /// Additive Holt–Winters (level + trend + seasonal) with the given
    /// period.
    HoltWinters {
        /// Seasonal period in observations.
        period: usize,
    },
}

/// An ETS forecaster whose smoothing parameters are selected by grid search
/// on one-step-ahead training SSE (the standard automatic-ETS approach at
/// laptop scale).
#[derive(Debug, Clone)]
pub struct Ets {
    name: String,
    kind: EtsKind,
    alpha: f64,
    beta: f64,
    gamma: f64,
    fitted: bool,
}

impl Ets {
    /// Creates an unfitted ETS model.
    ///
    /// # Panics
    /// Panics for a Holt–Winters period < 2.
    pub fn new(kind: EtsKind) -> Self {
        if let EtsKind::HoltWinters { period } = kind {
            assert!(period >= 2, "Holt-Winters period must be >= 2");
        }
        let name = match kind {
            EtsKind::Simple => "ETS(SES)".to_string(),
            EtsKind::Holt => "ETS(Holt)".to_string(),
            EtsKind::HoltWinters { period } => format!("ETS(HW,{period})"),
        };
        Ets {
            name,
            kind,
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.1,
            fitted: false,
        }
    }

    /// Selected `(alpha, beta, gamma)` after fitting.
    pub fn params(&self) -> (f64, f64, f64) {
        (self.alpha, self.beta, self.gamma)
    }

    /// Automatic variant selection: fits SES, Holt, and (when the series
    /// is long enough) additive Holt–Winters with `season`, and returns
    /// the fitted model with the lowest one-step SSE over the training
    /// pass — a miniature `ets()` from R's forecast package.
    pub fn auto(series: &[f64], season: usize) -> Result<Ets, ModelError> {
        let mut kinds = vec![EtsKind::Simple, EtsKind::Holt];
        if season >= 2 && series.len() >= 2 * season {
            kinds.push(EtsKind::HoltWinters { period: season });
        }
        let mut best: Option<(f64, Ets)> = None;
        for kind in kinds {
            let mut model = Ets::new(kind);
            if model.fit(series).is_err() {
                continue;
            }
            let (alpha, beta, gamma) = model.params();
            let (_, sse) = model.run(series, alpha, beta, gamma);
            if best.as_ref().is_none_or(|(b, _)| sse < *b) {
                best = Some((sse, model));
            }
        }
        best.map(|(_, m)| m).ok_or(ModelError::SeriesTooShort {
            needed: 10,
            got: series.len(),
        })
    }

    /// Runs the smoothing recursion over `series` and returns the one-step
    /// forecast for the value after the series, plus the accumulated
    /// one-step SSE over the pass.
    fn run(&self, series: &[f64], alpha: f64, beta: f64, gamma: f64) -> (f64, f64) {
        match self.kind {
            EtsKind::Simple => {
                let mut level = series[0];
                let mut sse = 0.0;
                for &x in &series[1..] {
                    let err = x - level;
                    sse += err * err;
                    level += alpha * err;
                }
                (level, sse)
            }
            EtsKind::Holt => {
                let mut level = series[0];
                let mut trend = if series.len() > 1 {
                    series[1] - series[0]
                } else {
                    0.0
                };
                let mut sse = 0.0;
                for &x in &series[1..] {
                    let forecast = level + trend;
                    let err = x - forecast;
                    sse += err * err;
                    let new_level = alpha * x + (1.0 - alpha) * (level + trend);
                    trend = beta * (new_level - level) + (1.0 - beta) * trend;
                    level = new_level;
                }
                (level + trend, sse)
            }
            EtsKind::HoltWinters { period } => {
                if series.len() < 2 * period {
                    // Too short for seasonal init; degrade to Holt.
                    let holt = Ets {
                        kind: EtsKind::Holt,
                        ..self.clone()
                    };
                    return holt.run(series, alpha, beta, 0.0);
                }
                // Initialize level/trend from the first two seasons and the
                // seasonal terms from first-season deviations.
                let s1: f64 = series[..period].iter().sum::<f64>() / period as f64;
                let s2: f64 = series[period..2 * period].iter().sum::<f64>() / period as f64;
                let mut level = s1;
                let mut trend = (s2 - s1) / period as f64;
                let mut seasonal: Vec<f64> = series[..period].iter().map(|&x| x - s1).collect();
                let mut sse = 0.0;
                for (t, &x) in series.iter().enumerate().skip(period) {
                    let sidx = t % period;
                    let forecast = level + trend + seasonal[sidx];
                    let err = x - forecast;
                    sse += err * err;
                    let new_level = alpha * (x - seasonal[sidx]) + (1.0 - alpha) * (level + trend);
                    trend = beta * (new_level - level) + (1.0 - beta) * trend;
                    seasonal[sidx] = gamma * (x - new_level) + (1.0 - gamma) * seasonal[sidx];
                    level = new_level;
                }
                let next_sidx = series.len() % period;
                (level + trend + seasonal[next_sidx], sse)
            }
        }
    }
}

impl Forecaster for Ets {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
        let needed = match self.kind {
            EtsKind::HoltWinters { period } => (2 * period).max(10),
            _ => 10,
        };
        if series.len() < needed {
            return Err(ModelError::SeriesTooShort {
                needed,
                got: series.len(),
            });
        }
        // Coarse grid search over smoothing parameters.
        let grid = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
        let beta_grid: &[f64] = match self.kind {
            EtsKind::Simple => &[0.0],
            _ => &[0.01, 0.05, 0.1, 0.3],
        };
        let gamma_grid: &[f64] = match self.kind {
            EtsKind::HoltWinters { .. } => &[0.05, 0.1, 0.3],
            _ => &[0.0],
        };
        let mut best = (f64::INFINITY, 0.3, 0.1, 0.1);
        for &a in &grid {
            for &b in beta_grid {
                for &g in gamma_grid {
                    let (_, sse) = self.run(series, a, b, g);
                    if sse < best.0 {
                        best = (sse, a, b, g);
                    }
                }
            }
        }
        self.alpha = best.1;
        self.beta = best.2;
        self.gamma = best.3;
        self.fitted = true;
        Ok(())
    }

    fn predict_next(&self, history: &[f64]) -> f64 {
        if !self.fitted || history.len() < 2 {
            return fallback_forecast(history);
        }
        let (forecast, _) = self.run(history, self.alpha, self.beta, self.gamma);
        if forecast.is_finite() {
            forecast
        } else {
            fallback_forecast(history)
        }
    }

    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ses_on_constant_series_predicts_constant() {
        let s = vec![4.0; 30];
        let mut m = Ets::new(EtsKind::Simple);
        m.fit(&s).unwrap();
        assert!((m.predict_next(&s) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ses_picks_high_alpha_for_random_walk_like_data() {
        // Alternating large jumps: recent value matters most.
        let mut s = vec![0.0];
        let mut state = 11u64;
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let step = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            s.push(s.last().unwrap() + step);
        }
        let mut m = Ets::new(EtsKind::Simple);
        m.fit(&s).unwrap();
        assert!(m.params().0 >= 0.5, "alpha = {}", m.params().0);
    }

    #[test]
    fn holt_extrapolates_linear_trend() {
        let s: Vec<f64> = (0..60).map(|t| 3.0 * t as f64 + 5.0).collect();
        let mut m = Ets::new(EtsKind::Holt);
        m.fit(&s).unwrap();
        let pred = m.predict_next(&s);
        assert!((pred - (3.0 * 60.0 + 5.0)).abs() < 0.5, "pred {pred}");
    }

    #[test]
    fn holt_winters_tracks_seasonal_pattern() {
        let s: Vec<f64> = (0..96)
            .map(|t| 10.0 + [0.0, 5.0, 8.0, 5.0, 0.0, -5.0, -8.0, -5.0][t % 8])
            .collect();
        let mut m = Ets::new(EtsKind::HoltWinters { period: 8 });
        m.fit(&s).unwrap();
        let pred = m.predict_next(&s);
        let truth = 10.0 + 0.0; // t = 96 -> phase 0
        assert!((pred - truth).abs() < 1.0, "pred {pred} truth {truth}");
    }

    #[test]
    fn holt_winters_degrades_gracefully_on_short_history() {
        let mut m = Ets::new(EtsKind::HoltWinters { period: 12 });
        let s: Vec<f64> = (0..40).map(|t| t as f64).collect();
        m.fit(&s).unwrap();
        // Online: history shorter than 2 periods still forecasts.
        let pred = m.predict_next(&s[..20]);
        assert!(pred.is_finite());
    }

    #[test]
    fn auto_selects_holt_winters_on_seasonal_data() {
        let s: Vec<f64> = (0..96)
            .map(|t| 10.0 + [0.0, 6.0, 9.0, 6.0, 0.0, -6.0, -9.0, -6.0][t % 8])
            .collect();
        let m = Ets::auto(&s, 8).unwrap();
        assert!(m.name().starts_with("ETS(HW"), "selected {}", m.name());
    }

    #[test]
    fn auto_selects_holt_on_trending_data() {
        let s: Vec<f64> = (0..80).map(|t| 2.0 * t as f64).collect();
        let m = Ets::auto(&s, 8).unwrap();
        assert!(
            m.name().contains("Holt") || m.name().contains("HW"),
            "selected {}",
            m.name()
        );
        // Either way it must extrapolate the trend.
        assert!((m.predict_next(&s) - 160.0).abs() < 2.0);
    }

    #[test]
    fn auto_on_too_short_series_errors() {
        assert!(Ets::auto(&[1.0; 4], 8).is_err());
    }

    #[test]
    fn fit_length_requirement() {
        let mut m = Ets::new(EtsKind::Simple);
        assert!(m.fit(&[1.0; 5]).is_err());
        let mut hw = Ets::new(EtsKind::HoltWinters { period: 24 });
        assert!(hw.fit(&[1.0; 40]).is_err());
    }

    #[test]
    #[should_panic(expected = "period must be >= 2")]
    fn tiny_period_panics() {
        let _ = Ets::new(EtsKind::HoltWinters { period: 1 });
    }
}
