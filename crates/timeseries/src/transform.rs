//! Scaling and differencing transforms.

/// A fitted, invertible element-wise transform.
pub trait Scaler {
    /// Transforms one value.
    fn transform(&self, value: f64) -> f64;
    /// Inverts the transform.
    fn inverse(&self, value: f64) -> f64;

    /// Transforms a whole slice into a new vector.
    fn transform_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.transform(v)).collect()
    }

    /// Inverts a whole slice into a new vector.
    fn inverse_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.inverse(v)).collect()
    }
}

/// Standardizes to zero mean and unit variance.
///
/// Degenerate (constant) inputs get `std = 1` so the transform stays
/// invertible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZScoreScaler {
    mean: f64,
    std: f64,
}

impl ZScoreScaler {
    /// Fits on the given values.
    pub fn fit(values: &[f64]) -> Self {
        if values.is_empty() {
            return ZScoreScaler {
                mean: 0.0,
                std: 1.0,
            };
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        let std = var.sqrt();
        ZScoreScaler {
            mean,
            std: if std > 1e-12 { std } else { 1.0 },
        }
    }

    /// Fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fitted standard deviation (1.0 when the input was constant).
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Scaler for ZScoreScaler {
    fn transform(&self, value: f64) -> f64 {
        (value - self.mean) / self.std
    }

    fn inverse(&self, value: f64) -> f64 {
        value * self.std + self.mean
    }
}

/// Rescales linearly to `[0, 1]` over the fitted range.
///
/// Constant inputs map to 0.5 (and invert back exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMaxScaler {
    min: f64,
    range: f64,
}

impl MinMaxScaler {
    /// Fits on the given values.
    pub fn fit(values: &[f64]) -> Self {
        if values.is_empty() {
            return MinMaxScaler {
                min: 0.0,
                range: 1.0,
            };
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let range = hi - lo;
        if range > 1e-12 {
            MinMaxScaler { min: lo, range }
        } else {
            // Constant input: shift so that transform(x) = 0.5.
            MinMaxScaler {
                min: lo - 0.5,
                range: 1.0,
            }
        }
    }
}

impl Scaler for MinMaxScaler {
    fn transform(&self, value: f64) -> f64 {
        (value - self.min) / self.range
    }

    fn inverse(&self, value: f64) -> f64 {
        value * self.range + self.min
    }
}

/// First-order differencing with lag `d`: output `y_t = x_t - x_{t-d}`.
/// The result is `d` values shorter than the input. `d == 0` returns the
/// input unchanged.
pub fn difference(values: &[f64], d: usize) -> Vec<f64> {
    if d == 0 {
        return values.to_vec();
    }
    if values.len() <= d {
        return Vec::new();
    }
    (d..values.len())
        .map(|t| values[t] - values[t - d])
        .collect()
}

/// Inverts [`difference`]: given the last `d` original values (`seed`,
/// oldest first) and the differenced tail, reconstructs the original-scale
/// values that follow the seed.
pub fn undifference(seed: &[f64], diffed: &[f64], d: usize) -> Vec<f64> {
    if d == 0 {
        return diffed.to_vec();
    }
    assert!(
        seed.len() >= d,
        "undifference needs at least d={d} seed values, got {}",
        seed.len()
    );
    let mut history: Vec<f64> = seed[seed.len() - d..].to_vec();
    let mut out = Vec::with_capacity(diffed.len());
    for (t, &dv) in diffed.iter().enumerate() {
        let base = history[t]; // value d steps earlier
        let v = base + dv;
        history.push(v);
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_roundtrip_and_moments() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = ZScoreScaler::fit(&v);
        let t = s.transform_all(&v);
        let mean: f64 = t.iter().sum::<f64>() / t.len() as f64;
        assert!(mean.abs() < 1e-12);
        let back = s.inverse_all(&t);
        for (a, b) in v.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn zscore_constant_input_is_safe() {
        let s = ZScoreScaler::fit(&[7.0, 7.0, 7.0]);
        assert_eq!(s.transform(7.0), 0.0);
        assert_eq!(s.inverse(0.0), 7.0);
        assert_eq!(s.std(), 1.0);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let v = [10.0, 20.0, 30.0];
        let s = MinMaxScaler::fit(&v);
        assert_eq!(s.transform(10.0), 0.0);
        assert_eq!(s.transform(30.0), 1.0);
        assert_eq!(s.transform(20.0), 0.5);
        assert_eq!(s.inverse(0.5), 20.0);
    }

    #[test]
    fn minmax_constant_input_maps_to_half() {
        let s = MinMaxScaler::fit(&[3.0, 3.0]);
        assert_eq!(s.transform(3.0), 0.5);
        assert_eq!(s.inverse(0.5), 3.0);
    }

    #[test]
    fn difference_lag_one() {
        let v = [1.0, 3.0, 6.0, 10.0];
        assert_eq!(difference(&v, 1), vec![2.0, 3.0, 4.0]);
        assert_eq!(difference(&v, 0), v.to_vec());
        assert!(difference(&[1.0], 2).is_empty());
    }

    #[test]
    fn difference_seasonal_lag() {
        let v = [1.0, 2.0, 4.0, 5.0]; // lag 2: 4-1=3, 5-2=3
        assert_eq!(difference(&v, 2), vec![3.0, 3.0]);
    }

    #[test]
    fn undifference_roundtrip() {
        let v = [1.0, 3.0, 6.0, 10.0, 15.0];
        for d in 1..=2usize {
            let diffed = difference(&v, d);
            let rebuilt = undifference(&v[..d], &diffed, d);
            assert_eq!(rebuilt, v[d..].to_vec(), "d = {d}");
        }
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn undifference_requires_seed() {
        undifference(&[1.0], &[1.0], 2);
    }
}
