//! Online policy refresh — the paper's first future-work direction.
//!
//! §III-B: *"One potential future research direction would be to
//! investigate the impact of an online update of the policy, for instance
//! in a periodic manner, or in an informed fashion following a
//! drift-detection mechanism in the data and/or the performance of the
//! ensemble."*
//!
//! [`AdaptiveEaDrl`] implements both variants on top of [`EaDrlPolicy`]:
//! it maintains a sliding buffer of recent `(predictions, actual)` pairs
//! and re-runs the offline policy learning on that buffer either every
//! `period` steps ([`RefreshTrigger::Periodic`]) or when a Page–Hinkley
//! test on the ensemble's absolute error signals drift
//! ([`RefreshTrigger::DriftDetected`]).

use crate::combiner::Combiner;
use crate::eadrl::{EaDrlConfig, EaDrlPolicy};
use eadrl_obs::Level;
use eadrl_timeseries::drift::PageHinkley;
use eadrl_timeseries::sanitize::sanitize_series;
use eadrl_timeseries::window::StepRing;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Maximum policy-learning attempts per online refresh (1 initial try +
/// bounded retries with a deterministically bumped seed). A refresh that
/// panics — e.g. a corrupted buffer driving the DDPG training into a
/// numerical edge case — must never take down the serving loop, and a
/// bounded number of re-seeded retries recovers the transient cases.
const REFRESH_ATTEMPTS: u64 = 3;

/// When to re-learn the combination policy online.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshTrigger {
    /// Never refresh — behaves exactly like the paper's frozen EA-DRL.
    Never,
    /// Refresh every `period` online steps.
    Periodic {
        /// Steps between refreshes.
        period: usize,
    },
    /// Refresh when a Page–Hinkley test on the ensemble's absolute error
    /// fires (`delta` tolerance, `lambda` threshold).
    DriftDetected {
        /// Page–Hinkley magnitude tolerance.
        delta: f64,
        /// Page–Hinkley detection threshold.
        lambda: f64,
    },
}

/// How a triggered refresh retrains the policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RefreshStrategy {
    /// Every refresh rebuilds a fresh [`EaDrlPolicy`] and replays the
    /// full multi-restart offline training — the original (and default)
    /// behaviour, byte-identical to earlier releases.
    #[default]
    Cold,
    /// Seed retraining from the deployed policy (via its snapshot) and
    /// run only `episodes` refinement episodes instead of the full
    /// static-candidate/restart sweep — typically several times cheaper
    /// per refresh. A retry after a caught panic falls back to a cold
    /// start with the bumped seed, as does a refresh before any policy
    /// is deployed or after the pool width changes.
    WarmStart {
        /// Refinement episodes per refresh (compare
        /// [`EaDrlConfig::episodes`] for the cold path).
        episodes: usize,
    },
}

/// EA-DRL with online policy refresh.
///
/// Usable anywhere a [`Combiner`] is expected; when no refresh ever
/// triggers it is behaviourally identical to [`EaDrlPolicy`].
pub struct AdaptiveEaDrl {
    config: EaDrlConfig,
    trigger: RefreshTrigger,
    strategy: RefreshStrategy,
    policy: EaDrlPolicy,
    /// Sliding buffer of recent steps used as the refresh training data.
    history: StepRing,
    /// Reusable staging area for the refresh training matrix — the
    /// history rows are copied into these buffers in place instead of
    /// cloning a fresh matrix per refresh.
    staged_preds: Vec<Vec<f64>>,
    staged_actuals: Vec<f64>,
    detector: Option<PageHinkley>,
    steps_since_refresh: usize,
    refreshes: usize,
}

impl AdaptiveEaDrl {
    /// Creates an adaptive EA-DRL.
    ///
    /// `buffer_len` bounds the sliding window of recent observations that
    /// a refresh trains on; it must comfortably exceed
    /// `config.omega + 2` for the refresh to be able to build an
    /// environment (smaller buffers simply skip refreshing).
    pub fn new(config: EaDrlConfig, trigger: RefreshTrigger, buffer_len: usize) -> Self {
        let detector = match trigger {
            RefreshTrigger::DriftDetected { delta, lambda } => {
                Some(PageHinkley::new(delta, lambda))
            }
            _ => None,
        };
        AdaptiveEaDrl {
            policy: EaDrlPolicy::new(config.clone()),
            config,
            trigger,
            strategy: RefreshStrategy::Cold,
            history: StepRing::new(buffer_len.max(8)),
            staged_preds: Vec::new(),
            staged_actuals: Vec::new(),
            detector,
            steps_since_refresh: 0,
            refreshes: 0,
        }
    }

    /// Selects how refreshes retrain (builder style); the default is
    /// [`RefreshStrategy::Cold`].
    pub fn with_strategy(mut self, strategy: RefreshStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured refresh strategy.
    pub fn strategy(&self) -> RefreshStrategy {
        self.strategy
    }

    /// Number of online policy refreshes performed so far.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Forces a policy refresh on the current buffer, outside any
    /// trigger schedule — an operational hook (and the refresh-latency
    /// benchmark's entry point). Subject to the same buffer-size checks,
    /// panic recovery and strategy as a triggered refresh.
    pub fn refresh_now(&mut self) {
        self.refresh("manual");
    }

    /// The currently deployed policy.
    pub fn policy(&self) -> &EaDrlPolicy {
        &self.policy
    }

    fn push_history(&mut self, preds: &[f64], actual: f64) {
        // The ring reuses the evicted slot's row allocation, so a
        // saturated buffer records steps without the old per-step
        // `to_vec` + O(n) shift.
        self.history.record(preds, actual);
    }

    fn refresh(&mut self, cause: &str) {
        if self.history.len() <= self.config.omega + 2 {
            eadrl_obs::warn(
                "eadrl.online.refresh.skipped",
                &[
                    ("cause", cause.into()),
                    ("buffer_len", self.history.len().into()),
                    ("needed", (self.config.omega + 3).into()),
                ],
            );
            return; // Not enough recent data to rebuild the environment.
        }
        let _span = eadrl_obs::span("eadrl.online.refresh");
        // Stage the training matrix into the persistent buffers: row
        // allocations from earlier refreshes are rewritten in place
        // instead of cloning every history row again.
        let mut preds = std::mem::take(&mut self.staged_preds);
        let mut actuals = std::mem::take(&mut self.staged_actuals);
        while preds.len() < self.history.len() {
            preds.push(Vec::new());
        }
        preds.truncate(self.history.len());
        actuals.clear();
        for (row, (p, a)) in preds.iter_mut().zip(self.history.iter()) {
            row.clear();
            row.extend_from_slice(p);
            actuals.push(*a);
        }
        // A live buffer can carry non-finite entries (faulty members, gap
        // bursts); repair it before it reaches policy learning. A buffer
        // with no finite actual at all cannot train anything.
        match sanitize_series(&actuals) {
            None => {}
            Some((fixed, stats)) => {
                eadrl_obs::event(
                    "eadrl.sanitize",
                    Level::Warn,
                    &[
                        ("context", "refresh_buffer".into()),
                        ("replaced", stats.replaced.into()),
                        ("leading", stats.leading.into()),
                        ("len", stats.len.into()),
                    ],
                );
                if stats.replaced == stats.len {
                    eadrl_obs::warn(
                        "eadrl.online.refresh.skipped",
                        &[
                            ("cause", cause.into()),
                            ("buffer_len", self.history.len().into()),
                            ("needed", (self.config.omega + 3).into()),
                        ],
                    );
                    self.staged_preds = preds;
                    self.staged_actuals = actuals;
                    return;
                }
                actuals.clear();
                actuals.extend_from_slice(&fixed);
            }
        }
        crate::experiment::sanitize_predictions(&mut preds, &actuals);
        // Bounded retry: attempt 0 runs with the configured seed (the
        // clean path is unchanged); each retry after a caught panic bumps
        // the DDPG seed deterministically so the re-training explores a
        // different trajectory instead of replaying the same failure.
        // Under `RefreshStrategy::WarmStart` attempt 0 refines the
        // deployed policy from its snapshot; any retry — and any refresh
        // without a deployable snapshot — falls back to a cold start.
        let strategy_name = match self.strategy {
            RefreshStrategy::Cold => "cold",
            RefreshStrategy::WarmStart { .. } => "warm_start",
        };
        let mut deployed = false;
        let mut attempts = 0u64;
        let mut cold_restart = false;
        for attempt in 0..REFRESH_ATTEMPTS {
            attempts = attempt + 1;
            let mut config = self.config.clone();
            config.ddpg.seed = config.ddpg.seed.wrapping_add(7919 * attempt);
            let warm = match self.strategy {
                RefreshStrategy::WarmStart { episodes } if attempt == 0 => {
                    self.policy.snapshot().map(|snapshot| (snapshot, episodes))
                }
                _ => None,
            };
            let was_warm = warm.is_some();
            let outcome = match warm {
                Some((snapshot, episodes)) => catch_unwind(AssertUnwindSafe(|| {
                    let mut next = EaDrlPolicy::restore(config, &snapshot);
                    let trained = next.refine(&preds, &actuals, episodes);
                    (next, trained)
                })),
                None => {
                    if matches!(self.strategy, RefreshStrategy::WarmStart { .. }) {
                        cold_restart = true;
                    }
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut next = EaDrlPolicy::new(config);
                        next.warm_up(&preds, &actuals);
                        let trained = next.is_trained();
                        (next, trained)
                    }))
                }
            };
            match outcome {
                Ok((next, trained)) => {
                    if trained {
                        self.policy = next;
                        self.refreshes += 1;
                        deployed = true;
                        break;
                    }
                    // A warm start that completes but declines (e.g. the
                    // pool width changed under the snapshot) is exactly
                    // the case a cold restart handles — fall through to
                    // the next attempt, which always goes cold. A cold
                    // retraining that declines signals a data-size
                    // problem, not a transient: retrying with a new seed
                    // cannot help, so stop.
                    if !was_warm {
                        break;
                    }
                }
                Err(_) => {
                    eadrl_obs::event(
                        "eadrl.degraded",
                        Level::Warn,
                        &[
                            ("context", "refresh".into()),
                            ("attempt", attempt.into()),
                            ("cause", cause.into()),
                        ],
                    );
                }
            }
        }
        eadrl_obs::event(
            "eadrl.online.refresh",
            Level::Info,
            &[
                ("cause", cause.into()),
                ("buffer_len", self.history.len().into()),
                ("deployed", deployed.into()),
                ("attempts", attempts.into()),
                ("refreshes_total", self.refreshes.into()),
                ("strategy", strategy_name.into()),
                ("restart", cold_restart.into()),
            ],
        );
        self.staged_preds = preds;
        self.staged_actuals = actuals;
        self.steps_since_refresh = 0;
        if let Some(d) = self.detector.as_mut() {
            d.reset();
        }
    }
}

impl Combiner for AdaptiveEaDrl {
    fn name(&self) -> &str {
        match self.trigger {
            RefreshTrigger::Never => "EA-DRL",
            RefreshTrigger::Periodic { .. } => "EA-DRL+periodic",
            RefreshTrigger::DriftDetected { .. } => "EA-DRL+drift",
        }
    }

    fn warm_up(&mut self, preds: &[Vec<f64>], actuals: &[f64]) {
        self.policy.warm_up(preds, actuals);
        // Seed the refresh buffer with the tail of the warm-up stream.
        let start = preds.len().saturating_sub(self.history.capacity());
        for (p, &a) in preds[start..].iter().zip(actuals[start..].iter()) {
            self.history.record(p, a);
        }
    }

    fn weights(&mut self, m: usize) -> Vec<f64> {
        self.policy.weights(m)
    }

    fn observe(&mut self, preds: &[f64], actual: f64) {
        // Error signal for the drift detector uses the current weighting.
        // Only the drift trigger consumes it, so the other triggers skip
        // the actor forward pass (and its weight-vector allocation)
        // entirely. Computed before `policy.observe` advances the window,
        // matching the order the serial implementation used.
        let forecast = match self.trigger {
            RefreshTrigger::DriftDetected { .. } => {
                let w = self.policy.weights(preds.len());
                Some(w.iter().zip(preds.iter()).map(|(w, p)| w * p).sum::<f64>())
            }
            _ => None,
        };
        self.policy.observe(preds, actual);
        self.push_history(preds, actual);
        self.steps_since_refresh += 1;

        let cause = match self.trigger {
            RefreshTrigger::Never => None,
            RefreshTrigger::Periodic { period } => {
                (self.steps_since_refresh >= period.max(1)).then_some("periodic")
            }
            RefreshTrigger::DriftDetected { .. } => {
                let forecast = forecast.unwrap_or(f64::NAN);
                let fired = actual.is_finite()
                    && self
                        .detector
                        .as_mut()
                        .map(|d| d.update((forecast - actual).abs()))
                        .unwrap_or(false);
                if fired {
                    eadrl_obs::event(
                        "eadrl.online.drift",
                        Level::Info,
                        &[
                            ("abs_error", (forecast - actual).abs().into()),
                            ("steps_since_refresh", self.steps_since_refresh.into()),
                        ],
                    );
                }
                fired.then_some("drift")
            }
        };
        if let Some(cause) = cause {
            self.refresh(cause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiner::run_combiner;
    use eadrl_timeseries::metrics::rmse;

    fn quick_config() -> EaDrlConfig {
        let mut config = EaDrlConfig::default();
        config.omega = 6;
        config.episodes = 8;
        config.max_iter = 40;
        config.restarts = 1;
        config
    }

    /// Model 0 accurate before the flip, model 1 after, model 2 never.
    fn regime_stream(n: usize, flip: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let actuals: Vec<f64> = (0..n)
            .map(|t| (t as f64 / 6.0).sin() * 3.0 + 10.0)
            .collect();
        let preds = actuals
            .iter()
            .enumerate()
            .map(|(t, &a)| {
                let w = ((t * 7) % 13) as f64 / 13.0 - 0.5;
                if t < flip {
                    vec![a + 0.1 * w, a + 2.5 + w, a - 7.0]
                } else {
                    vec![a + 2.5 - w, a + 0.1 * w, a - 7.0]
                }
            })
            .collect();
        (preds, actuals)
    }

    #[test]
    fn never_trigger_matches_frozen_policy() {
        let (preds, actuals) = regime_stream(200, 400); // no flip in range
        let (wp, op) = preds.split_at(80);
        let (wa, oa) = actuals.split_at(80);
        let mut frozen = EaDrlPolicy::new(quick_config());
        frozen.warm_up(wp, wa);
        let frozen_out = run_combiner(&mut frozen, op, oa);

        let mut adaptive = AdaptiveEaDrl::new(quick_config(), RefreshTrigger::Never, 60);
        adaptive.warm_up(wp, wa);
        let adaptive_out = run_combiner(&mut adaptive, op, oa);
        assert_eq!(frozen_out, adaptive_out);
        assert_eq!(adaptive.refreshes(), 0);
    }

    #[test]
    fn periodic_refresh_fires_on_schedule() {
        let (preds, actuals) = regime_stream(220, 500);
        let (wp, op) = preds.split_at(80);
        let (wa, oa) = actuals.split_at(80);
        let mut adaptive =
            AdaptiveEaDrl::new(quick_config(), RefreshTrigger::Periodic { period: 40 }, 70);
        adaptive.warm_up(wp, wa);
        run_combiner(&mut adaptive, op, oa);
        // 140 online steps / 40 = 3 refreshes.
        assert_eq!(adaptive.refreshes(), 3);
    }

    #[test]
    fn drift_refresh_recovers_after_regime_flip() {
        let (preds, actuals) = regime_stream(320, 200);
        let (wp, op) = preds.split_at(100);
        let (wa, oa) = actuals.split_at(100);

        let mut frozen = EaDrlPolicy::new(quick_config());
        frozen.warm_up(wp, wa);
        let frozen_out = run_combiner(&mut frozen, op, oa);

        let mut adaptive = AdaptiveEaDrl::new(
            quick_config(),
            RefreshTrigger::DriftDetected {
                delta: 0.05,
                lambda: 6.0,
            },
            80,
        );
        adaptive.warm_up(wp, wa);
        let adaptive_out = run_combiner(&mut adaptive, op, oa);

        assert!(adaptive.refreshes() >= 1, "drift never triggered a refresh");
        // Post-flip segment (flip at absolute 200 = online step 100).
        let frozen_post = rmse(&oa[120..], &frozen_out[120..]);
        let adaptive_post = rmse(&oa[120..], &adaptive_out[120..]);
        assert!(
            adaptive_post < frozen_post,
            "refresh did not help after drift: adaptive {adaptive_post:.3} vs frozen {frozen_post:.3}"
        );
    }

    #[test]
    fn tiny_buffer_skips_refresh_gracefully() {
        let (preds, actuals) = regime_stream(150, 60);
        let (wp, op) = preds.split_at(60);
        let (wa, oa) = actuals.split_at(60);
        let mut adaptive =
            AdaptiveEaDrl::new(quick_config(), RefreshTrigger::Periodic { period: 10 }, 8);
        adaptive.warm_up(wp, wa);
        let out = run_combiner(&mut adaptive, op, oa);
        assert!(out.iter().all(|v| v.is_finite()));
        assert_eq!(
            adaptive.refreshes(),
            0,
            "8-step buffer cannot retrain ω=6 policy"
        );
    }

    #[test]
    fn warm_start_falls_back_to_cold_when_pool_width_changes() {
        let (preds, actuals) = regime_stream(200, 500);
        let (wp, op) = preds.split_at(100);
        let (wa, oa) = actuals.split_at(100);
        let warm_episodes = 4;
        let mut adaptive = AdaptiveEaDrl::new(quick_config(), RefreshTrigger::Never, 30)
            .with_strategy(RefreshStrategy::WarmStart {
                episodes: warm_episodes,
            });
        adaptive.warm_up(wp, wa);
        // The pool shrinks under the deployed 3-model policy: saturate
        // the refresh buffer with 2-model steps, then force a refresh.
        for (p, &a) in op.iter().zip(oa.iter()) {
            adaptive.observe(&p[..2], a);
        }
        adaptive.refresh_now();
        assert_eq!(
            adaptive.refreshes(),
            1,
            "refresh must deploy via the cold fallback"
        );
        // The deployed policy came out of a full cold warm_up (8
        // episodes), not the 4-episode warm refinement the snapshot
        // could no longer support.
        assert_eq!(adaptive.policy().learning_curve().len(), 8);
        let w = adaptive.weights(2);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn corrupted_buffer_quarantines_refresh_and_keeps_serving() {
        let (preds, actuals) = regime_stream(160, 500);
        let (wp, op) = preds.split_at(100);
        let (wa, oa) = actuals.split_at(100);
        let mut adaptive = AdaptiveEaDrl::new(quick_config(), RefreshTrigger::Never, 30)
            .with_strategy(RefreshStrategy::WarmStart { episodes: 4 });
        adaptive.warm_up(wp, wa);
        // Ragged rows survive sanitization and panic inside the
        // environment constructor — on the warm attempt and on every
        // cold retry alike. The refresh must quarantine the failure
        // (no deployment) without taking down serving.
        for (i, (p, &a)) in op.iter().zip(oa.iter()).enumerate() {
            if i % 3 == 0 {
                adaptive.observe(&p[..2], a);
            } else {
                adaptive.observe(p, a);
            }
        }
        adaptive.refresh_now();
        assert_eq!(
            adaptive.refreshes(),
            0,
            "a corrupted buffer must never deploy a policy"
        );
        let w = adaptive.weights(3);
        assert!(w.iter().all(|v| v.is_finite()));
        assert!((adaptive.combine(&[1.0, 2.0, 3.0])).is_finite());
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(
            AdaptiveEaDrl::new(quick_config(), RefreshTrigger::Never, 50).name(),
            "EA-DRL"
        );
        assert_eq!(
            AdaptiveEaDrl::new(quick_config(), RefreshTrigger::Periodic { period: 5 }, 50).name(),
            "EA-DRL+periodic"
        );
        assert_eq!(
            AdaptiveEaDrl::new(
                quick_config(),
                RefreshTrigger::DriftDetected {
                    delta: 0.1,
                    lambda: 5.0
                },
                50
            )
            .name(),
            "EA-DRL+drift"
        );
    }
}
