//! Differential proof that the fused batched recurrent paths are drop-in
//! replacements for the per-sequence reference implementations.
//!
//! Each test trains two identically seeded stacks through full epoch
//! loops with Adam — one through the per-sequence loops, one through the
//! windows-as-matrix workspace paths — and asserts the post-update
//! parameters and subsequent predictions are **bitwise** equal
//! (`assert_eq!` on `f64`, no tolerance). Chunk size 7 exercises odd and
//! ragged minibatches. The suite runs under the CI `EADRL_PAR_THREADS`
//! matrix {1, 4}; nothing here is thread-count sensitive, which is
//! exactly the claim — the batched kernels are sequential-deterministic.

use eadrl_linalg::Matrix;
use eadrl_nn::{
    mse_loss_grad, Activation, Adam, BiLstm, BiLstmInferenceCache, BiRecurrentWorkspace, Conv1d,
    ConvWorkspace, Dense, Lstm, LstmInferenceCache, Network, Optimizer, RecurrentWorkspace,
};
use eadrl_rng::DetRng;

const CHUNK: usize = 7;

/// Deterministic windows with structured zeros (to exercise the
/// zero-skip branches of the kernels) plus scalar targets.
fn dataset(n: usize, len: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = DetRng::seed_from_u64(seed);
    let windows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..len)
                .map(|t| {
                    if (i + t) % 5 == 0 {
                        0.0
                    } else {
                        rng.random_range(-1.0..1.0)
                    }
                })
                .collect()
        })
        .collect();
    let targets: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    (windows, targets)
}

/// Recurrent layer + linear head trained as one parameter group, so the
/// optimizer's positional moment buffers line up between the two paths.
struct Stack<'a, R: Network>(&'a mut R, &'a mut Dense);

impl<R: Network> Network for Stack<'_, R> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.0.visit_params(f);
        self.1.visit_params(f);
    }
}

fn flat<N: Network>(n: &mut N) -> Vec<f64> {
    n.flat_params()
}

#[test]
fn lstm_training_epochs_batched_equals_per_sequence_bitwise() {
    let (windows, targets) = dataset(19, 6, 0xA1);
    let steps = windows[0].len();
    let hidden = 5;

    // Reference: per-sequence loops.
    let mut rng = DetRng::seed_from_u64(7);
    let mut lstm_a = Lstm::new(&mut rng, 1, hidden);
    let mut head_a = Dense::new(&mut rng, hidden, 1, Activation::Identity);
    let mut opt_a = Adam::new(0.01);
    for _ in 0..3 {
        for chunk in (0..windows.len()).collect::<Vec<_>>().chunks(CHUNK) {
            let mut group = Stack(&mut lstm_a, &mut head_a);
            group.zero_grad();
            for &i in chunk {
                let seq: Vec<Vec<f64>> = windows[i].iter().map(|&v| vec![v]).collect();
                let h = group.0.forward_sequence(&seq);
                let y = group.1.forward(&h);
                let g = mse_loss_grad(&y, &[targets[i]]);
                let gh = group.1.backward(&g);
                group.0.backward_last(&gh);
            }
            group.clip_grad_norm(5.0);
            opt_a.step(&mut group);
        }
    }

    // Candidate: fused batched path over the same data and chunking.
    let mut rng = DetRng::seed_from_u64(7);
    let mut lstm_b = Lstm::new(&mut rng, 1, hidden);
    let mut head_b = Dense::new(&mut rng, hidden, 1, Activation::Identity);
    let mut opt_b = Adam::new(0.01);
    let mut ws = RecurrentWorkspace::new();
    let mut hb = Matrix::default();
    let mut gb = Matrix::default();
    for _ in 0..3 {
        for chunk in (0..windows.len()).collect::<Vec<_>>().chunks(CHUNK) {
            let mut group = Stack(&mut lstm_b, &mut head_b);
            group.zero_grad();
            let n = chunk.len();
            ws.stage(n, steps, 1, hidden);
            for (s, &i) in chunk.iter().enumerate() {
                for (t, v) in windows[i].iter().enumerate() {
                    ws.set_input(s, t, std::slice::from_ref(v));
                }
            }
            group.0.forward_batch(&mut ws);
            hb.resize(n, hidden);
            hb.data_mut().copy_from_slice(ws.h_last());
            gb.resize(n, 1);
            {
                let out = group.1.forward_batch(&hb);
                for (r, &i) in chunk.iter().enumerate() {
                    let g = mse_loss_grad(out.row(r), &[targets[i]]);
                    gb.row_mut(r).copy_from_slice(&g);
                }
            }
            let gh = group.1.backward_batch(&gb);
            group.0.backward_batch_last(gh.data(), &mut ws, false);
            group.clip_grad_norm(5.0);
            opt_b.step(&mut group);
        }
    }

    assert_eq!(flat(&mut lstm_a), flat(&mut lstm_b), "LSTM params diverged");
    assert_eq!(flat(&mut head_a), flat(&mut head_b), "head params diverged");

    // Predictions: per-sequence inference vs the strided zero-alloc cache.
    let mut cache = LstmInferenceCache::default();
    for w in &windows {
        let seq: Vec<Vec<f64>> = w.iter().map(|&v| vec![v]).collect();
        let h_ref = lstm_a.forward_inference(&seq);
        let y_ref = head_a.forward_inference(&h_ref);
        let h = lstm_b.forward_inference_cached(w, 1, &mut cache);
        let mut y = [0.0];
        head_b.forward_inference_into(h, &mut y);
        assert_eq!(h_ref.as_slice(), h, "hidden state diverged");
        assert_eq!(y_ref[0], y[0], "prediction diverged");
    }
}

#[test]
fn bilstm_training_epochs_batched_equals_per_sequence_bitwise() {
    let (windows, targets) = dataset(17, 5, 0xB2);
    let steps = windows[0].len();
    let hidden = 4;

    let mut rng = DetRng::seed_from_u64(11);
    let mut bi_a = BiLstm::new(&mut rng, 1, hidden);
    let mut head_a = Dense::new(&mut rng, 2 * hidden, 1, Activation::Identity);
    let mut opt_a = Adam::new(0.01);
    for _ in 0..2 {
        for chunk in (0..windows.len()).collect::<Vec<_>>().chunks(CHUNK) {
            let mut group = Stack(&mut bi_a, &mut head_a);
            group.zero_grad();
            for &i in chunk {
                let seq: Vec<Vec<f64>> = windows[i].iter().map(|&v| vec![v]).collect();
                let h = group.0.forward_sequence(&seq);
                let y = group.1.forward(&h);
                let g = mse_loss_grad(&y, &[targets[i]]);
                let gh = group.1.backward(&g);
                group.0.backward_last(&gh);
            }
            group.clip_grad_norm(5.0);
            opt_a.step(&mut group);
        }
    }

    let mut rng = DetRng::seed_from_u64(11);
    let mut bi_b = BiLstm::new(&mut rng, 1, hidden);
    let mut head_b = Dense::new(&mut rng, 2 * hidden, 1, Activation::Identity);
    let mut opt_b = Adam::new(0.01);
    let mut ws = BiRecurrentWorkspace::new();
    let mut hb = Matrix::default();
    let mut gb = Matrix::default();
    for _ in 0..2 {
        for chunk in (0..windows.len()).collect::<Vec<_>>().chunks(CHUNK) {
            let mut group = Stack(&mut bi_b, &mut head_b);
            group.zero_grad();
            let n = chunk.len();
            ws.stage(n, steps, 1, hidden);
            for (s, &i) in chunk.iter().enumerate() {
                for (t, v) in windows[i].iter().enumerate() {
                    ws.set_input(s, t, std::slice::from_ref(v));
                }
            }
            group.0.forward_batch(&mut ws);
            hb.resize(n, 2 * hidden);
            hb.data_mut().copy_from_slice(ws.output());
            gb.resize(n, 1);
            {
                let out = group.1.forward_batch(&hb);
                for (r, &i) in chunk.iter().enumerate() {
                    let g = mse_loss_grad(out.row(r), &[targets[i]]);
                    gb.row_mut(r).copy_from_slice(&g);
                }
            }
            let gh = group.1.backward_batch(&gb);
            group.0.backward_batch_last(gh.data(), &mut ws, false);
            group.clip_grad_norm(5.0);
            opt_b.step(&mut group);
        }
    }

    assert_eq!(flat(&mut bi_a), flat(&mut bi_b), "BiLSTM params diverged");
    assert_eq!(flat(&mut head_a), flat(&mut head_b), "head params diverged");

    let mut cache = BiLstmInferenceCache::default();
    for w in &windows {
        let seq: Vec<Vec<f64>> = w.iter().map(|&v| vec![v]).collect();
        let h_ref = bi_a.forward_inference(&seq);
        let h = bi_b.forward_inference_cached(w, 1, &mut cache);
        assert_eq!(h_ref.as_slice(), h, "bi-directional output diverged");
    }
}

#[test]
fn conv_training_steps_batched_equals_per_sample_bitwise() {
    let (windows, _) = dataset(13, 8, 0xC3);
    let (oc, k) = (3, 2);
    let t_out = windows[0].len() - k + 1;

    let mut rng = DetRng::seed_from_u64(13);
    let mut conv_a = Conv1d::new(&mut rng, 1, oc, k, Activation::Relu);
    let mut opt_a = Adam::new(0.01);
    let mut rng = DetRng::seed_from_u64(13);
    let mut conv_b = Conv1d::new(&mut rng, 1, oc, k, Activation::Relu);
    let mut opt_b = Adam::new(0.01);
    let mut ws = ConvWorkspace::new();

    for _ in 0..3 {
        for chunk in (0..windows.len()).collect::<Vec<_>>().chunks(CHUNK) {
            // Per-sample reference. The synthetic upstream gradient is a
            // deterministic function of position (structured zeros again).
            conv_a.zero_grad();
            for &i in chunk {
                let y = conv_a.forward(&[windows[i].clone()]);
                let g: Vec<Vec<f64>> = (0..oc)
                    .map(|c| {
                        (0..t_out)
                            .map(|t| {
                                if (c + t + i) % 4 == 0 {
                                    0.0
                                } else {
                                    y[c][t] - 0.25
                                }
                            })
                            .collect()
                    })
                    .collect();
                conv_a.backward(&g);
            }
            conv_a.clip_grad_norm(5.0);
            opt_a.step(&mut conv_a);

            // Batched candidate, same windows and same upstream grads.
            conv_b.zero_grad();
            let n = chunk.len();
            conv_b.stage_batch(&mut ws, n, windows[0].len());
            for (s, &i) in chunk.iter().enumerate() {
                ws.input_mut(s).copy_from_slice(&windows[i]);
            }
            conv_b.forward_batch(&mut ws);
            for (s, &i) in chunk.iter().enumerate() {
                for t in 0..t_out {
                    let row: Vec<f64> = ws.output_row(s, t).to_vec();
                    let grow = ws.grad_output_row_mut(s, t);
                    for (c, g) in grow.iter_mut().enumerate() {
                        *g = if (c + t + i) % 4 == 0 {
                            0.0
                        } else {
                            row[c] - 0.25
                        };
                    }
                }
            }
            conv_b.backward_batch_weights_only(&mut ws);
            conv_b.clip_grad_norm(5.0);
            opt_b.step(&mut conv_b);
        }
    }

    assert_eq!(
        flat(&mut conv_a),
        flat(&mut conv_b),
        "Conv1d params diverged"
    );
}
