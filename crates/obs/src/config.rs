//! Telemetry configuration, including the `EADRL_OBS` environment
//! override.
//!
//! Grammar (case-insensitive level names):
//!
//! ```text
//! EADRL_OBS=off                      # default: no-op sink, zero overhead
//! EADRL_OBS=jsonl                    # JSON lines to stderr at debug level
//! EADRL_OBS=jsonl@info               # ... at info level
//! EADRL_OBS=jsonl:trace.jsonl        # JSON lines to a file
//! EADRL_OBS=jsonl:trace.jsonl@trace  # ... at trace level
//! ```
//!
//! `debug` is the JSONL default because the acceptance-grade trace (per
//! step weight vectors, `predict_next` spans) lives at that level.

use crate::event::Level;
use std::path::PathBuf;

/// Where emitted events go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkTarget {
    /// Discard everything.
    Noop,
    /// JSON lines on standard error.
    Stderr,
    /// JSON lines appended to a file (truncated at init).
    File(PathBuf),
}

/// Full telemetry configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Maximum level that is emitted; `None` disables event emission
    /// entirely (metrics registries still work).
    pub level: Option<Level>,
    /// The sink to install.
    pub target: SinkTarget,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

impl ObsConfig {
    /// Telemetry off: no-op sink, no event construction.
    pub fn off() -> ObsConfig {
        ObsConfig {
            level: None,
            target: SinkTarget::Noop,
        }
    }

    /// JSONL to stderr at the given level.
    pub fn jsonl_stderr(level: Level) -> ObsConfig {
        ObsConfig {
            level: Some(level),
            target: SinkTarget::Stderr,
        }
    }

    /// JSONL to a file at the given level.
    pub fn jsonl_file(path: impl Into<PathBuf>, level: Level) -> ObsConfig {
        ObsConfig {
            level: Some(level),
            target: SinkTarget::File(path.into()),
        }
    }

    /// Parses an `EADRL_OBS` specification.
    pub fn parse(spec: &str) -> Result<ObsConfig, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec.eq_ignore_ascii_case("off") || spec == "0" {
            return Ok(ObsConfig::off());
        }
        // Optional trailing "@level" (split at the last '@' that parses).
        let (body, level) = match spec.rsplit_once('@') {
            Some((body, lvl)) => match Level::parse(&lvl.to_ascii_lowercase()) {
                Some(level) => (body, Some(level)),
                None => return Err(format!("unknown level '{lvl}' in EADRL_OBS")),
            },
            None => (spec, None),
        };
        let (format, path) = match body.split_once(':') {
            Some((fmt, path)) => (fmt, Some(path)),
            None => (body, None),
        };
        if !format.eq_ignore_ascii_case("jsonl") {
            return Err(format!(
                "unknown EADRL_OBS format '{format}' (expected 'off' or 'jsonl')"
            ));
        }
        let level = level.unwrap_or(Level::Debug);
        Ok(match path {
            Some(p) if !p.is_empty() => ObsConfig::jsonl_file(p, level),
            _ => ObsConfig::jsonl_stderr(level),
        })
    }

    /// Reads `EADRL_OBS`; unset means off, malformed values fall back to
    /// off with a one-line complaint on stderr (telemetry must never take
    /// the process down).
    pub fn from_env() -> ObsConfig {
        match std::env::var("EADRL_OBS") {
            Ok(spec) => ObsConfig::parse(&spec).unwrap_or_else(|err| {
                eprintln!("eadrl-obs: {err}; telemetry disabled");
                ObsConfig::off()
            }),
            Err(_) => ObsConfig::off(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_and_empty_disable() {
        assert_eq!(ObsConfig::parse("off").unwrap(), ObsConfig::off());
        assert_eq!(ObsConfig::parse("").unwrap(), ObsConfig::off());
        assert_eq!(ObsConfig::parse("OFF").unwrap(), ObsConfig::off());
    }

    #[test]
    fn jsonl_defaults_to_stderr_debug() {
        let c = ObsConfig::parse("jsonl").unwrap();
        assert_eq!(c.level, Some(Level::Debug));
        assert_eq!(c.target, SinkTarget::Stderr);
    }

    #[test]
    fn jsonl_with_path_and_level() {
        let c = ObsConfig::parse("jsonl:/tmp/t.jsonl@trace").unwrap();
        assert_eq!(c.level, Some(Level::Trace));
        assert_eq!(c.target, SinkTarget::File(PathBuf::from("/tmp/t.jsonl")));
    }

    #[test]
    fn level_only_override() {
        let c = ObsConfig::parse("jsonl@info").unwrap();
        assert_eq!(c.level, Some(Level::Info));
        assert_eq!(c.target, SinkTarget::Stderr);
    }

    #[test]
    fn bad_specs_error() {
        assert!(ObsConfig::parse("csv").is_err());
        assert!(ObsConfig::parse("jsonl@loud").is_err());
    }
}
