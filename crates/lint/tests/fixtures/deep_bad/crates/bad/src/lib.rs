//! Deliberately broken fixture: one violation per deep pass. Never
//! compiled — parsed by `tests/deep_golden.rs` and by the inverted CI
//! step, both of which require every finding below to fire.

/// Panic chain: pub fn -> private helper -> `.unwrap()`.
pub fn entry(v: Option<u32>) -> u32 {
    inner(v)
}

fn inner(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// Hot-path offender, named `hot` in the fixture `DESIGN.md` table.
pub struct Engine {
    out: Vec<f64>,
}

impl Engine {
    /// Grows a Vec on the hot path.
    pub fn update(&mut self, x: f64) {
        self.out.push(x);
    }
}

/// Taint root: a `fit` that reads the wall clock through a helper,
/// with no trace gate and no marker.
pub fn fit() -> u64 {
    stamp()
}

fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
