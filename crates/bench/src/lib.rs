//! Shared experiment harness for the EA-DRL reproduction.
//!
//! The binaries in `src/bin` regenerate the paper's tables and figures;
//! this library holds the pieces they share: experiment scaling, the
//! 20-dataset sweep, method construction (the 16 standalone + combination
//! methods of Table II) and the online-runtime measurement of Table III.

use eadrl_core::baselines::{all_baselines, Demsc};
use eadrl_core::{Combiner, DatasetEvaluation, EaDrlConfig, EaDrlPolicy, EvaluationProtocol};
use eadrl_datasets::{catalog, generate, DatasetId};
use eadrl_models::{
    gradient_boosting, lstm_forecaster, quick_pool, random_forest, stacked_lstm_forecaster,
    standard_pool, Arima, Forecaster,
};
use eadrl_obs::json::JsonValue;
use eadrl_obs::Level;
use eadrl_timeseries::TimeSeries;
use std::time::Instant;

pub mod harness;

/// The combination window used throughout the paper's Table II (ω = 10).
pub const OMEGA: usize = 10;

/// Experiment sizing. `full()` approximates the paper's setup at a scale a
/// single CPU core finishes in minutes; `quick()` is for smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Observations generated per dataset.
    pub series_len: usize,
    /// EA-DRL training episodes (`max.ep`; the paper uses 100).
    pub episodes: usize,
    /// Use the 8-model quick pool instead of the 43-model standard pool.
    pub quick_pool: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Paper-faithful configuration (43-model pool). The episode budget is
    /// 50 rather than the paper's 100: our validation segments are shorter
    /// than theirs, and calibration showed longer training only feeds the
    /// checkpoint-selection winner's curse (see `EXPERIMENTS.md`).
    pub fn full() -> Self {
        Scale {
            series_len: 480,
            episodes: 50,
            quick_pool: false,
            seed: 42,
        }
    }

    /// Reduced configuration for smoke runs (`--quick`).
    pub fn quick() -> Self {
        Scale {
            series_len: 300,
            episodes: 15,
            quick_pool: true,
            seed: 42,
        }
    }

    /// Parses `--quick` from CLI arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::quick()
        } else {
            Scale::full()
        }
    }
}

/// True when `--json` was passed: the experiment binaries then print one
/// machine-readable JSON document on stdout instead of the human tables
/// (progress still goes to stderr either way).
pub fn json_output() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints a one-document JSON report to stdout: `{"report": <kind>,
/// <fields>...}`. The schema rides on the same zero-dependency JSON
/// writer the telemetry layer uses, so reports and traces stay mutually
/// parseable.
pub fn print_json_report(kind: &str, mut fields: Vec<(String, JsonValue)>) {
    let mut obj: Vec<(String, JsonValue)> = vec![("report".to_string(), kind.into())];
    obj.append(&mut fields);
    println!("{}", JsonValue::Obj(obj).to_json());
}

/// Generates all 20 series of Table I at the given scale.
pub fn all_series(scale: Scale) -> Vec<TimeSeries> {
    DatasetId::all()
        .into_iter()
        .map(|id| generate(id, scale.series_len, scale.seed))
        .collect()
}

/// Builds the base-model pool for one dataset.
pub fn build_pool(scale: Scale, season: usize) -> Vec<Box<dyn Forecaster>> {
    if scale.quick_pool {
        quick_pool(5, season, scale.seed)
    } else {
        standard_pool(5, season, scale.seed)
    }
}

/// The individually evaluated forecasters of Table II
/// (ARIMA, RF, GBM, LSTM, StLSTM).
pub fn standalone_models(seed: u64) -> Vec<(String, Box<dyn Forecaster>)> {
    vec![
        (
            "ARIMA".to_string(),
            Box::new(Arima::new(2, 1, 1)) as Box<dyn Forecaster>,
        ),
        (
            "RF".to_string(),
            Box::new(random_forest(5, 30, 8, seed ^ 0x11)),
        ),
        (
            "GBM".to_string(),
            Box::new(gradient_boosting(5, 100, 3, 0.05)),
        ),
        (
            "LSTM".to_string(),
            Box::new(lstm_forecaster(5, 8, 30, seed ^ 0x12)),
        ),
        (
            "StLSTM".to_string(),
            Box::new(stacked_lstm_forecaster(5, 8, 8, 30, seed ^ 0x13)),
        ),
    ]
}

/// The paper's EA-DRL configuration (ω = 10, γ = 0.9, α = 0.01, rank
/// reward, diversity sampling), with the episode budget from `scale`.
pub fn eadrl_config(scale: Scale) -> EaDrlConfig {
    let mut config = EaDrlConfig {
        omega: OMEGA,
        episodes: scale.episodes,
        max_iter: 100,
        ..Default::default()
    };
    config.ddpg.seed = scale.seed;
    config
}

/// All combination methods of Table II: the ten baselines plus EA-DRL.
pub fn all_combiners(scale: Scale) -> Vec<Box<dyn Combiner>> {
    let mut combiners = all_baselines(OMEGA, scale.seed);
    combiners.push(Box::new(EaDrlPolicy::new(eadrl_config(scale))));
    combiners
}

/// Evaluates every Table II method on one dataset.
pub fn evaluate_dataset(id: DatasetId, scale: Scale) -> DatasetEvaluation {
    let series = generate(id, scale.series_len, scale.seed);
    let season = series
        .frequency()
        .default_season()
        .min(scale.series_len / 4);
    EvaluationProtocol::default().evaluate(
        series.name(),
        series.values(),
        build_pool(scale, season),
        standalone_models(scale.seed),
        all_combiners(scale),
    )
}

/// Runs the full 20-dataset sweep, printing progress to stderr and
/// emitting one `bench.dataset` telemetry event per dataset.
///
/// Datasets are independent (each builds its own pool and combiners from
/// `scale`), so the sweep fans out one parallel task per dataset via
/// `eadrl-par`; results come back in Table I order regardless of which
/// dataset finishes first, and the progress lines carry the dataset
/// number because their arrival order is scheduling-dependent.
pub fn evaluate_all(scale: Scale) -> Vec<DatasetEvaluation> {
    let _span = eadrl_obs::span("bench.sweep");
    let sweep = eadrl_par::par_map(DatasetId::all().to_vec(), |id| {
        let start = Instant::now();
        let eval = evaluate_dataset(id, scale);
        let seconds = start.elapsed().as_secs_f64();
        let best = eval.ranking().first().copied().unwrap_or("-").to_string();
        eadrl_obs::event(
            "bench.dataset",
            Level::Info,
            &[
                ("dataset", eval.dataset.as_str().into()),
                ("number", id.number().into()),
                ("pool_size", eval.pool_size.into()),
                ("best_method", best.as_str().into()),
                ("seconds", seconds.into()),
            ],
        );
        eprintln!(
            "  [{:>2}/20] {:<28} pool={} best={} ({seconds:.1}s)",
            id.number(),
            eval.dataset,
            eval.pool_size,
            best,
        );
        eval
    });
    match sweep {
        Ok(evals) => evals,
        Err(err) => {
            // A panicking evaluation is a bug; fall back to the serial
            // sweep so the failing dataset panics visibly in-thread.
            eadrl_obs::warn(
                "par.panic",
                &[("context", format!("{err}").as_str().into())],
            );
            DatasetId::all()
                .into_iter()
                .map(|id| evaluate_dataset(id, scale))
                .collect()
        }
    }
}

/// Wall-clock seconds for the *online* phase of one combination method on
/// one dataset: base-model one-step predictions plus weight computation
/// and combination for every test step — the Table III measurement. The
/// combiner must already be warmed up; the pool must already be fitted.
pub fn time_online(
    combiner: &mut dyn Combiner,
    pool: &[Box<dyn Forecaster>],
    train: &[f64],
    test: &[f64],
) -> f64 {
    let start = Instant::now();
    let mut history = train.to_vec();
    for &actual in test {
        let preds: Vec<f64> = pool.iter().map(|m| m.predict_next(&history)).collect();
        let _forecast = combiner.combine(&preds);
        combiner.observe(&preds, actual);
        history.push(actual);
    }
    start.elapsed().as_secs_f64()
}

/// Wall-clock seconds for the *combination-only* online work of a method:
/// weight computation, combination and state update per test step, with
/// the base-model predictions precomputed outside the timed region. This
/// isolates exactly the work that differs between methods (the pool
/// forecasts are identical for all of them).
pub fn time_combination_only(
    combiner: &mut dyn Combiner,
    preds: &[Vec<f64>],
    actuals: &[f64],
    repeats: usize,
) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats.max(1) {
        for (p, &a) in preds.iter().zip(actuals.iter()) {
            let _forecast = combiner.combine(p);
            combiner.observe(p, a);
        }
    }
    start.elapsed().as_secs_f64() / repeats.max(1) as f64
}

/// Builds a DEMSC combiner with the paper-aligned defaults used in the
/// runtime comparison.
pub fn demsc_combiner(seed: u64) -> Demsc {
    Demsc::new(OMEGA, 0.25, 4, seed)
}

/// Mean and population standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Dataset metadata passthrough for the Table I binary.
pub fn table1_rows() -> Vec<(usize, String, String, String, String)> {
    catalog()
        .into_iter()
        .map(|spec| {
            (
                spec.id.number(),
                spec.name.to_string(),
                spec.source.to_string(),
                format!("{:?}", spec.frequency),
                spec.characteristics.to_string(),
            )
        })
        .collect()
}

/// Fits a pool on `fit_part`, dropping members that cannot fit; returns the
/// fitted pool. Shared by the Table III and Figure 2 binaries. Delegates
/// to the parallel fitter the evaluation protocol itself uses.
pub fn fit_pool(pool: Vec<Box<dyn Forecaster>>, fit_part: &[f64]) -> Vec<Box<dyn Forecaster>> {
    let (kept, _dropped) = eadrl_core::parallel::fit_pool(pool, fit_part);
    kept
}

/// Per-step prediction matrix `preds[t][i]` of a fitted pool over a
/// segment, with the preceding history given by `train`. Delegates to
/// the parallel matrix builder the evaluation protocol itself uses.
pub fn prediction_matrix(
    pool: &[Box<dyn Forecaster>],
    train: &[f64],
    segment: &[f64],
) -> Vec<Vec<f64>> {
    eadrl_core::parallel::prediction_matrix(pool, train, segment)
}

/// A crude ASCII sparkline for learning curves in terminal output.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| BARS[(((v - lo) / range) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_evaluates_one_dataset() {
        let eval = evaluate_dataset(DatasetId::WaterConsumption, Scale::quick());
        // 5 standalone + 11 combiners.
        assert_eq!(eval.results.len(), 16);
        assert!(eval.results.iter().all(|r| r.rmse.is_finite()));
        assert!(eval.result("EA-DRL").is_some());
        assert!(eval.result("DEMSC").is_some());
    }

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn table1_has_twenty_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].1, "Water consumption");
    }
}
