//! Property-based tests for the time-series primitives.

use eadrl_ptest::prelude::*;
use eadrl_timeseries::embedding::{embed, sliding_windows};
use eadrl_timeseries::metrics::{nrmse, rmse, smape};
use eadrl_timeseries::stats::{acf, rolling_mean};
use eadrl_timeseries::transform::{MinMaxScaler, Scaler};
use eadrl_timeseries::{Frequency, TimeSeries};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn embedding_preserves_alignment(
        series in prop::collection::vec(-1e4f64..1e4, 8..80),
        k in 1usize..6,
    ) {
        let e = embed(&series, k);
        prop_assert_eq!(e.len(), series.len().saturating_sub(k));
        for (i, (input, &target)) in e.inputs.iter().zip(e.targets.iter()).enumerate() {
            prop_assert_eq!(input.len(), k);
            // Window i covers series[i..i+k]; the target is series[i+k].
            prop_assert_eq!(input.as_slice(), &series[i..i + k]);
            prop_assert_eq!(target, series[i + k]);
        }
    }

    #[test]
    fn sliding_windows_tile_the_series(
        series in prop::collection::vec(-10.0f64..10.0, 4..40),
        w in 1usize..5,
    ) {
        let count = sliding_windows(&series, w).count();
        if series.len() >= w {
            prop_assert_eq!(count, series.len() - w + 1);
        } else {
            prop_assert_eq!(count, 0);
        }
        for (i, win) in sliding_windows(&series, w).enumerate() {
            prop_assert_eq!(win, &series[i..i + w]);
        }
    }

    #[test]
    fn minmax_maps_into_unit_interval(values in prop::collection::vec(-1e5f64..1e5, 2..50)) {
        let s = MinMaxScaler::fit(&values);
        for &v in &values {
            let t = s.transform(v);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&t), "{t} out of [0,1]");
            prop_assert!((s.inverse(t) - v).abs() < 1e-6 * v.abs().max(1.0));
        }
    }

    #[test]
    fn acf_is_bounded_and_starts_at_one(series in prop::collection::vec(-100.0f64..100.0, 3..60)) {
        let a = acf(&series, 5);
        prop_assert!((a[0] - 1.0).abs() < 1e-9);
        for &v in &a {
            prop_assert!(v.abs() <= 1.0 + 1e-9, "acf {v} out of [-1,1]");
        }
    }

    #[test]
    fn rolling_mean_stays_within_series_bounds(
        series in prop::collection::vec(-1e4f64..1e4, 3..50),
        w in 1usize..6,
    ) {
        let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for m in rolling_mean(&series, w) {
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }

    #[test]
    fn rmse_is_zero_iff_identical(series in prop::collection::vec(-1e4f64..1e4, 1..40)) {
        prop_assert_eq!(rmse(&series, &series), 0.0);
        let shifted: Vec<f64> = series.iter().map(|v| v + 1.0).collect();
        prop_assert!((rmse(&series, &shifted) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nrmse_is_scale_invariant(
        actual in prop::collection::vec(-100.0f64..100.0, 4..30),
        noise in prop::collection::vec(-1.0f64..1.0, 30),
        scale in 0.1f64..100.0,
    ) {
        let predicted: Vec<f64> = actual.iter().zip(noise.iter()).map(|(a, n)| a + n).collect();
        let spread = actual.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - actual.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let base = nrmse(&actual, &predicted);
        let scaled_a: Vec<f64> = actual.iter().map(|v| v * scale).collect();
        let scaled_p: Vec<f64> = predicted.iter().map(|v| v * scale).collect();
        let scaled = nrmse(&scaled_a, &scaled_p);
        prop_assert!((base - scaled).abs() < 1e-6 * base.max(1.0), "{base} vs {scaled}");
    }

    #[test]
    fn smape_is_bounded(
        actual in prop::collection::vec(-1e4f64..1e4, 1..30),
        predicted in prop::collection::vec(-1e4f64..1e4, 30),
    ) {
        let p = &predicted[..actual.len()];
        let v = smape(&actual, p);
        prop_assert!((0.0..=200.0 + 1e-9).contains(&v), "smape {v}");
    }

    #[test]
    fn split_partitions_exactly(
        values in prop::collection::vec(-10.0f64..10.0, 1..60),
        ratio in 0.0f64..1.0,
    ) {
        let ts = TimeSeries::new("p", Frequency::Other, values.clone());
        let (train, test) = ts.split(ratio);
        prop_assert_eq!(train.len() + test.len(), values.len());
        let mut rebuilt = train.to_vec();
        rebuilt.extend_from_slice(test);
        prop_assert_eq!(rebuilt, values);
    }
}
