// Fixture: adversarial lexer inputs. Linted with the pretend path
// `crates/core/src/fixture.rs`; expected finding count: ZERO. Every
// forbidden pattern below is hidden inside a string, char literal, or
// comment, or is a tuple index that must not lex as a float.

/* nested /* block comment with .unwrap() and panic!("x") */ still a comment */

pub fn tricky(n: usize) -> String {
    let s = "contains .unwrap() and == 0.0 and Instant::now()";
    let raw = r#"raw "string" with panic!("boom") and HashMap::new()"#;
    let fenced = r##"outer fence r#"inner"# with .expect("hidden")"##;
    let byte_str = b"bytes with unreachable!()";
    let quote_char = '"';
    let escaped = "escaped \" quote hiding .expect(";
    let lifetime_like: &'static str = "lifetime, not a char literal";
    let nested_tuple = ((1u32, 2u32), 3u32);
    // `nested_tuple.0.1` must lex as tuple indices, not the float `0.1`;
    // if it lexed as a float, the comparison below would be a finding.
    let second = nested_tuple.0.1 == 2;
    let range_not_float = (0..10).len() == n;
    format!("{s}{raw}{fenced}{byte_str:?}{quote_char}{escaped}{lifetime_like}{second}{range_not_float}")
}

/// Raw identifiers: `r#`-prefixed keywords are ordinary identifiers.
/// `r#fn` / `r#loop` must not start a bogus item, `r#match` must not
/// open a match expression, and none of it may produce findings.
pub fn raw_idents() -> usize {
    let r#fn = 1usize;
    let r#loop = 2usize;
    let r#match = r#fn + r#loop;
    struct RawField {
        r#type: usize,
    }
    let s = RawField { r#type: r#match };
    // A raw ident bumping against a raw string: `r#fn` then `r#"…"#`.
    let mix = r#fn + r#"not .unwrap() either"#.len();
    s.r#type + mix
}
