//! Event sinks: where emitted events go.

use crate::event::{Event, EventKind, Level};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Consumes telemetry events. Implementations must be cheap enough to sit
/// on hot paths behind the level check.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards everything — the default sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn emit(&self, _event: &Event) {}
}

/// Bounded in-memory sink for tests: keeps the most recent `capacity`
/// events. Overflow is not silent: evicted events are counted, and
/// [`RingSink::events`] appends a single synthetic `obs.ring.dropped`
/// warn event (carrying the count) so a truncated trace says so itself.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a ring sink holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring sink capacity must be positive");
        RingSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// A copy of the stored events, oldest first. When overflow has
    /// evicted events, one synthetic `obs.ring.dropped` warn event
    /// (field `count`) is appended so consumers see the truncation.
    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    pub fn events(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self.buf.lock().unwrap().iter().cloned().collect();
        let dropped = self.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            events.push(
                Event::new("obs.ring.dropped", EventKind::Event, Level::Warn)
                    .field("count", dropped),
            );
        }
        events
    }

    /// Number of events evicted by overflow since creation (or the last
    /// [`RingSink::clear`]).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stored events whose name (or any span path segment) equals `name`.
    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.name_matches(name))
            .cloned()
            .collect()
    }

    /// Number of stored events.
    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// True when nothing is stored.
    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    pub fn is_empty(&self) -> bool {
        self.buf.lock().unwrap().is_empty()
    }

    /// Drops all stored events and resets the dropped-event counter.
    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    pub fn clear(&self) {
        self.buf.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl EventSink for RingSink {
    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    fn emit(&self, event: &Event) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }
}

/// Streams events as JSON lines to a writer (a file or stderr).
/// Line-buffered: each event is flushed at its newline, so a trace is
/// readable even after a crash.
pub struct JsonlSink {
    out: Mutex<LineWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// A sink writing to the given writer.
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(LineWriter::new(writer)),
        }
    }

    /// A sink appending to (and first truncating) `path`.
    pub fn file(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink::new(Box::new(File::create(path)?)))
    }

    /// A sink writing to standard error.
    pub fn stderr() -> JsonlSink {
        JsonlSink::new(Box::new(io::stderr()))
    }
}

impl EventSink for JsonlSink {
    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    fn emit(&self, event: &Event) {
        let line = event.to_json_line();
        let mut out = self.out.lock().unwrap();
        // A failing sink must never take the computation down with it.
        let _ = writeln!(out, "{line}");
    }

    // eadrl-lint: allow(panic-reachable): lock poisoning requires a prior panic elsewhere; aborting is the correct response
    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Level};

    fn ev(name: &str) -> Event {
        Event::new(name, EventKind::Event, Level::Info)
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let sink = RingSink::new(2);
        sink.emit(&ev("a"));
        sink.emit(&ev("b"));
        sink.emit(&ev("c"));
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c", "obs.ring.dropped"]);
        assert_eq!(sink.len(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_sink_reports_overflow() {
        let sink = RingSink::new(2);
        sink.emit(&ev("a"));
        assert_eq!(sink.dropped(), 0);
        assert!(
            !sink.events().iter().any(|e| e.name == "obs.ring.dropped"),
            "no marker without overflow"
        );
        sink.emit(&ev("b"));
        sink.emit(&ev("c"));
        sink.emit(&ev("d"));
        assert_eq!(sink.dropped(), 2);
        let events = sink.events();
        let marker = events.last().expect("marker present");
        assert_eq!(marker.name, "obs.ring.dropped");
        assert_eq!(marker.level, Level::Warn);
        assert_eq!(marker.get("count"), Some(&crate::Value::from(2u64)));
        assert_eq!(events.len(), 3, "exactly one marker appended");
        sink.clear();
        assert_eq!(sink.dropped(), 0, "clear resets the counter");
    }

    #[test]
    fn ring_sink_filters_by_name() {
        let sink = RingSink::new(8);
        sink.emit(&ev("x"));
        sink.emit(&ev("parent/x"));
        sink.emit(&ev("y"));
        assert_eq!(sink.events_named("x").len(), 2);
        assert_eq!(sink.events_named("y").len(), 1);
        assert_eq!(sink.events_named("z").len(), 0);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(SharedWriter(shared.clone())));
        sink.emit(&ev("one").field("k", 1.5));
        sink.emit(&ev("two"));
        sink.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(Event::from_json_line(line).is_ok(), "bad line: {line}");
        }
    }
}
