//! Declarative fault plans.
//!
//! A [`FaultPlan`] describes, in a line-oriented textual format that can
//! be committed next to the test that replays it, exactly which pool
//! members misbehave and how, plus any gap bursts injected into the
//! observed history stream. Plans are fully deterministic: probabilistic
//! faults draw from a [`eadrl_rng::DetRng`] substream derived from the
//! plan seed and the per-model call index, never from ambient entropy.
//!
//! # Plan format
//!
//! ```text
//! # comment lines and blank lines are ignored
//! seed 7
//! model 1 panic_at 5            # call #5 (0-based) panics
//! model 2 panic_every 4         # every 4th call panics
//! model 3 nonfinite_every 3 nan # every 3rd call returns NaN (inf / -inf)
//! model 8 nonfinite_burst 40 6 inf # calls 40..46 return +Inf, then recover
//! model 4 stale_from 10         # from call #10 on: frozen last-good output
//! model 5 slow_every 2 cost 900 # every 2nd inquiry declares a 900µs cost
//! model 6 flaky 0.25            # NaN with probability 0.25 (plan-seeded)
//! model 7 fail_fit              # fit panics
//! gap 12 3                      # history steps 12..15 observed as NaN
//! ```

use eadrl_rng::DetRng;

/// How one pool member misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Panics on exactly call `call` (0-based call index).
    PanicAtCall {
        /// The offending call index.
        call: u64,
    },
    /// Panics on every `n`-th call (calls `n-1`, `2n-1`, …).
    PanicEveryNth {
        /// Period in calls.
        n: u64,
    },
    /// Returns the given non-finite value on every `n`-th call.
    NonFiniteEveryNth {
        /// Period in calls.
        n: u64,
        /// Which non-finite value to emit.
        value: NonFinite,
    },
    /// Returns the given non-finite value on `len` *consecutive* calls
    /// starting at call `from`, then recovers. Consecutive faults are
    /// what drives a member over the quarantine threshold, and the
    /// recovery afterwards is what earns re-entry — this is the kind
    /// that exercises the full health state machine.
    NonFiniteBurst {
        /// First faulting call index.
        from: u64,
        /// Number of consecutive faulting calls.
        len: u64,
        /// Which non-finite value to emit.
        value: NonFinite,
    },
    /// From call `call` on, returns the last clean output forever — the
    /// "silently wedged model" failure mode (output stays finite, so only
    /// accuracy-level checks can see it; the harness uses it to prove the
    /// guard does NOT fire on merely-stale members).
    StaleFromCall {
        /// First wedged call index.
        call: u64,
    },
    /// Declares a per-call cost of `cost_us` on every `n`-th *cost
    /// inquiry* — a deterministic stand-in for a latency-budget overrun
    /// (the guard compares the declared cost to its configured budget;
    /// no wall clock is involved).
    SlowEveryNth {
        /// Period in cost inquiries.
        n: u64,
        /// Declared cost (µs) on the slow inquiries.
        cost_us: u64,
    },
    /// Returns NaN with probability `p` per call, drawn from a plan-seeded
    /// `DetRng` substream keyed by the call index (deterministic across
    /// runs and thread counts).
    Flaky {
        /// Per-call fault probability in `[0, 1]`.
        p: f64,
    },
    /// `fit` panics; the member never joins the pool.
    FailFit,
}

/// The non-finite value an injected fault emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonFinite {
    /// `f64::NAN`.
    Nan,
    /// `f64::INFINITY`.
    Inf,
    /// `f64::NEG_INFINITY`.
    NegInf,
}

impl NonFinite {
    /// The injected value.
    pub fn value(self) -> f64 {
        match self {
            NonFinite::Nan => f64::NAN,
            NonFinite::Inf => f64::INFINITY,
            NonFinite::NegInf => f64::NEG_INFINITY,
        }
    }

    fn label(self) -> &'static str {
        match self {
            NonFinite::Nan => "nan",
            NonFinite::Inf => "inf",
            NonFinite::NegInf => "-inf",
        }
    }
}

/// A fault assignment for one pool member.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelFault {
    /// Pool index of the member this fault attaches to.
    pub model: usize,
    /// The misbehaviour.
    pub kind: FaultKind,
}

/// A burst of missing observations in the served history stream: the
/// scenario runner replaces `len` consecutive actuals starting at online
/// step `at_step` with NaN before they reach the forecaster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapBurst {
    /// First online step observed as NaN (0-based).
    pub at_step: usize,
    /// Number of consecutive NaN observations.
    pub len: usize,
}

impl GapBurst {
    /// True when online step `step` falls inside this burst.
    pub fn covers(&self, step: usize) -> bool {
        step >= self.at_step && step < self.at_step + self.len
    }
}

/// A complete declarative fault plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's deterministic substreams (flaky faults).
    pub seed: u64,
    /// Per-member fault assignments.
    pub model_faults: Vec<ModelFault>,
    /// Gap bursts in the observed history stream.
    pub gaps: Vec<GapBurst>,
}

/// A malformed plan line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// The fault assigned to pool member `model`, if any.
    pub fn fault_for(&self, model: usize) -> Option<FaultKind> {
        self.model_faults
            .iter()
            .find(|f| f.model == model)
            .map(|f| f.kind)
    }

    /// The deterministic substream for member `model` (flaky faults key
    /// their per-call draws off this, combined with the call index).
    pub fn substream(&self, model: usize) -> DetRng {
        DetRng::seed_from_u64(self.seed).substream(model as u64)
    }

    /// True when online step `step` is covered by any gap burst.
    pub fn gapped(&self, step: usize) -> bool {
        self.gaps.iter().any(|g| g.covers(step))
    }

    /// Parses the textual plan format (see the module docs).
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| PlanParseError {
                line: line_no,
                message,
            };
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens[0] {
                "seed" => {
                    plan.seed = parse_num(&tokens, 1, "seed value").map_err(&err)?;
                }
                "gap" => {
                    plan.gaps.push(GapBurst {
                        at_step: parse_num(&tokens, 1, "gap start step").map_err(&err)?,
                        len: parse_num(&tokens, 2, "gap length").map_err(&err)?,
                    });
                }
                "model" => {
                    let model: usize = parse_num(&tokens, 1, "model index").map_err(&err)?;
                    let verb = *tokens
                        .get(2)
                        .ok_or_else(|| err("missing fault kind".into()))?;
                    let kind = match verb {
                        "panic_at" => FaultKind::PanicAtCall {
                            call: parse_num(&tokens, 3, "call index").map_err(&err)?,
                        },
                        "panic_every" => FaultKind::PanicEveryNth {
                            n: parse_period(&tokens, 3).map_err(&err)?,
                        },
                        "nonfinite_every" => FaultKind::NonFiniteEveryNth {
                            n: parse_period(&tokens, 3).map_err(&err)?,
                            value: match tokens.get(4).copied().unwrap_or("nan") {
                                "nan" => NonFinite::Nan,
                                "inf" => NonFinite::Inf,
                                "-inf" => NonFinite::NegInf,
                                other => {
                                    return Err(err(format!("unknown non-finite value `{other}`")))
                                }
                            },
                        },
                        "nonfinite_burst" => FaultKind::NonFiniteBurst {
                            from: parse_num(&tokens, 3, "burst start call").map_err(&err)?,
                            len: parse_period(&tokens, 4).map_err(&err)?,
                            value: match tokens.get(5).copied().unwrap_or("nan") {
                                "nan" => NonFinite::Nan,
                                "inf" => NonFinite::Inf,
                                "-inf" => NonFinite::NegInf,
                                other => {
                                    return Err(err(format!("unknown non-finite value `{other}`")))
                                }
                            },
                        },
                        "stale_from" => FaultKind::StaleFromCall {
                            call: parse_num(&tokens, 3, "call index").map_err(&err)?,
                        },
                        "slow_every" => {
                            if tokens.get(4) != Some(&"cost") {
                                return Err(err("expected `slow_every N cost MICROS`".into()));
                            }
                            FaultKind::SlowEveryNth {
                                n: parse_period(&tokens, 3).map_err(&err)?,
                                cost_us: parse_num(&tokens, 5, "cost (µs)").map_err(&err)?,
                            }
                        }
                        "flaky" => {
                            let p: f64 = tokens
                                .get(3)
                                .ok_or("missing probability".to_string())
                                .and_then(|t| {
                                    t.parse().map_err(|_| format!("bad probability `{t}`"))
                                })
                                .map_err(&err)?;
                            if !(0.0..=1.0).contains(&p) {
                                return Err(err(format!("probability {p} outside [0, 1]")));
                            }
                            FaultKind::Flaky { p }
                        }
                        "fail_fit" => FaultKind::FailFit,
                        other => return Err(err(format!("unknown fault kind `{other}`"))),
                    };
                    if plan.fault_for(model).is_some() {
                        return Err(err(format!("model {model} already has a fault")));
                    }
                    plan.model_faults.push(ModelFault { model, kind });
                }
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    /// Writes the plan back in its textual format; `parse` round-trips it.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "seed {}", self.seed)?;
        for mf in &self.model_faults {
            write!(f, "model {} ", mf.model)?;
            match mf.kind {
                FaultKind::PanicAtCall { call } => writeln!(f, "panic_at {call}")?,
                FaultKind::PanicEveryNth { n } => writeln!(f, "panic_every {n}")?,
                FaultKind::NonFiniteEveryNth { n, value } => {
                    writeln!(f, "nonfinite_every {n} {}", value.label())?
                }
                FaultKind::NonFiniteBurst { from, len, value } => {
                    writeln!(f, "nonfinite_burst {from} {len} {}", value.label())?
                }
                FaultKind::StaleFromCall { call } => writeln!(f, "stale_from {call}")?,
                FaultKind::SlowEveryNth { n, cost_us } => {
                    writeln!(f, "slow_every {n} cost {cost_us}")?
                }
                FaultKind::Flaky { p } => writeln!(f, "flaky {p}")?,
                FaultKind::FailFit => writeln!(f, "fail_fit")?,
            }
        }
        for g in &self.gaps {
            writeln!(f, "gap {} {}", g.at_step, g.len)?;
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(tokens: &[&str], idx: usize, what: &str) -> Result<T, String> {
    tokens
        .get(idx)
        .ok_or(format!("missing {what}"))
        .and_then(|t| t.parse().map_err(|_| format!("bad {what} `{t}`")))
}

fn parse_period(tokens: &[&str], idx: usize) -> Result<u64, String> {
    let n: u64 = parse_num(tokens, idx, "period")?;
    if n == 0 {
        return Err("period must be >= 1".into());
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# sample plan
seed 42
model 0 panic_at 5
model 1 panic_every 4
model 2 nonfinite_every 3 inf
model 3 stale_from 10
model 4 slow_every 2 cost 900
model 5 flaky 0.25
model 6 fail_fit
model 7 nonfinite_burst 40 6 -inf
gap 12 3
";

    #[test]
    fn parses_every_fault_kind() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.model_faults.len(), 8);
        assert_eq!(plan.fault_for(0), Some(FaultKind::PanicAtCall { call: 5 }));
        assert_eq!(
            plan.fault_for(2),
            Some(FaultKind::NonFiniteEveryNth {
                n: 3,
                value: NonFinite::Inf
            })
        );
        assert_eq!(plan.fault_for(6), Some(FaultKind::FailFit));
        assert_eq!(
            plan.fault_for(7),
            Some(FaultKind::NonFiniteBurst {
                from: 40,
                len: 6,
                value: NonFinite::NegInf
            })
        );
        assert_eq!(plan.fault_for(8), None);
        assert_eq!(
            plan.gaps,
            vec![GapBurst {
                at_step: 12,
                len: 3
            }]
        );
        assert!(plan.gapped(13));
        assert!(!plan.gapped(15));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let plan = FaultPlan::parse(SAMPLE).unwrap();
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, needle) in [
            ("model x panic_at 1", "model index"),
            ("model 0 warp 3", "unknown fault kind"),
            ("model 0 panic_every 0", "period"),
            ("model 0 flaky 1.5", "outside"),
            ("model 0 slow_every 2 price 5", "cost"),
            ("teleport 9", "unknown directive"),
            ("model 0 panic_at 1\nmodel 0 fail_fit", "already has"),
        ] {
            let e = FaultPlan::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "`{text}` → `{e}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let plan = FaultPlan::parse("\n# nothing\n   \nseed 3 # trailing\n").unwrap();
        assert_eq!(plan.seed, 3);
        assert!(plan.model_faults.is_empty());
    }

    #[test]
    fn substreams_are_distinct_and_reproducible() {
        let plan = FaultPlan {
            seed: 9,
            ..FaultPlan::default()
        };
        let mut s0 = plan.substream(0);
        let mut s0b = plan.substream(0);
        let mut s1 = plan.substream(1);
        let x0 = s0.next_u64();
        assert_eq!(x0, s0b.next_u64(), "same substream, same stream");
        assert_ne!(x0, s1.next_u64(), "distinct substreams diverge");
    }
}
