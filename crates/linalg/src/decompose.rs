//! Matrix factorizations: LU with partial pivoting, Cholesky, Householder QR.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// LU decomposition with partial pivoting: `P * A = L * U`.
///
/// `L` and `U` are packed into a single matrix (unit diagonal of `L`
/// implicit); `perm` records the row permutation.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation, used for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Factorizes a square matrix. Returns [`LinalgError::Singular`] when a
    /// pivot is (numerically) zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!("LU requires a square matrix, got {}x{}", a.rows(), a.cols()),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        for k in 0..n {
            // Partial pivot: pick the largest |entry| in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let upd = factor * lu[(k, j)];
                    lu[(i, j)] -= upd;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!("LU solve: rhs length {} vs dimension {n}", b.len()),
            });
        }
        // Forward substitution with permuted rhs (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for j in 0..i {
                s -= self.lu[(i, j)] * y[j];
            }
            y[i] = s;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).fold(self.perm_sign, |acc, i| acc * self.lu[(i, i)])
    }

    /// Inverse of the factorized matrix (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is
    /// non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!(
                    "Cholesky requires a square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!("Cholesky solve: rhs length {} vs dimension {n}", b.len()),
            });
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (= 2 Σ log L_ii), cheap and overflow-free.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Householder QR factorization `A = Q R` for `rows >= cols`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors packed below the diagonal; R on and above it.
    qr: Matrix,
    /// Diagonal of R (stored separately for numerical convenience).
    r_diag: Vec<f64>,
}

impl Qr {
    /// Factorizes a tall (or square) matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                context: format!("QR requires rows >= cols, got {m}x{n}"),
            });
        }
        let mut qr = a.clone();
        let mut r_diag = vec![0.0; n];
        for k in 0..n {
            // Norm of the k-th column below (and including) the diagonal.
            let mut norm = 0.0_f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            // eadrl-lint: allow(no-float-eq): zero-pivot guard — only an exactly-zero column norm makes the Householder reflector undefined
            if norm == 0.0 {
                return Err(LinalgError::Singular);
            }
            if qr[(k, k)] < 0.0 {
                norm = -norm;
            }
            for i in k..m {
                qr[(i, k)] /= norm;
            }
            qr[(k, k)] += 1.0;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s = -s / qr[(k, k)];
                for i in k..m {
                    let upd = s * qr[(i, k)];
                    qr[(i, j)] += upd;
                }
            }
            r_diag[k] = -norm;
        }
        Ok(Qr { qr, r_diag })
    }

    /// Solves the least-squares problem `min ||A x - b||₂`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                context: format!("QR solve: rhs length {} vs {m} rows", b.len()),
            });
        }
        let mut y = b.to_vec();
        // Apply Qᵀ.
        for k in 0..n {
            let mut s = 0.0;
            for i in k..m {
                s += self.qr[(i, k)] * y[i];
            }
            s = -s / self.qr[(k, k)];
            for i in k..m {
                y[i] += s * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            if self.r_diag[i].abs() < 1e-300 {
                return Err(LinalgError::Singular);
            }
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            x[i] = s / self.r_diag[i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn lu_solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let lu = Lu::new(&a).unwrap();
        approx(&lu.solve(&[5.0, 10.0]).unwrap(), &[1.0, 3.0], 1e-12);
        assert!((lu.det() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let lu = Lu::new(&a).unwrap();
        approx(&lu.solve(&[2.0, 3.0]).unwrap(), &[3.0, 2.0], 1e-12);
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn lu_inverse_roundtrip() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 1.0, 2.0, 5.0, 3.0, 1.0, 3.0, 6.0]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(3);
        assert!(prod.sub(&eye).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 1.0, 2.0, 5.0, 3.0, 1.0, 3.0, 6.0]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn cholesky_solve_matches_lu() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 1.0, 2.0, 5.0, 3.0, 1.0, 3.0, 6.0]).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x1 = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x2 = Lu::new(&a).unwrap().solve(&b).unwrap();
        approx(&x1, &x2, 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn cholesky_log_det_matches_lu_det() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let ld = Cholesky::new(&a).unwrap().log_det();
        let det = Lu::new(&a).unwrap().det();
        assert!((ld - det.ln()).abs() < 1e-10);
    }

    #[test]
    fn qr_solves_square_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = Qr::new(&a).unwrap().solve(&[5.0, 10.0]).unwrap();
        approx(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn qr_least_squares_fits_line() {
        // Fit y = 2x + 1 exactly through three collinear points.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let x = Qr::new(&a).unwrap().solve(&[1.0, 3.0, 5.0]).unwrap();
        approx(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn qr_least_squares_minimizes_residual() {
        // Overdetermined noisy system: residual must be orthogonal to columns.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ])
        .unwrap();
        let b = [0.9, 3.2, 4.8, 7.1];
        let x = Qr::new(&a).unwrap().solve(&b).unwrap();
        let pred = a.matvec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(pred.iter()).map(|(y, p)| y - p).collect();
        let ortho = a.tr_matvec(&resid).unwrap();
        assert!(ortho.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::new(&a).is_err());
    }
}
