//! `eadrl-lint` — project-specific static analysis for the EA-DRL
//! workspace.
//!
//! A reproduction of EA-DRL (Saadallah et al., ICDE 2021) lives or dies
//! on numeric and run-to-run determinism: rank rewards (`r_t = m + 1 −
//! rank`) and Bayesian sign-rank comparisons are meaningless if a
//! panicking `.unwrap()`, an accidental float `==`, or a
//! `HashMap`-ordered iteration corrupts one of the compared methods.
//! This crate is a zero-dependency (std-only) lint tool with a
//! hand-rolled Rust lexer and a pluggable rule engine, run in CI as a
//! blocking step:
//!
//! ```text
//! cargo run -p eadrl-lint -- [--json] [--design DESIGN.md] [paths…]
//! ```
//!
//! Rules (see `CONTRIBUTING.md` for the full contract):
//!
//! * `no-unwrap-in-lib` — no panicking escape hatches in library code;
//! * `no-float-eq` — exact float comparison must be annotated;
//! * `determinism` — no wall-clock reads outside obs/bench, no hash
//!   collections in result-producing crates;
//! * `obs-event-schema` — telemetry names validate against `DESIGN.md`;
//! * `doc-header` — public linalg/timeseries items carry doc comments.
//!
//! Findings are suppressed line-by-line with
//! `// eadrl-lint: allow(<rule>): <justification>`; a marker without a
//! justification is itself a finding.

pub mod ast;
pub mod callgraph;
pub mod deep;
pub mod lexer;
pub mod rules;
pub mod source;

pub use rules::{
    default_rules, lint_file, lint_source, Finding, LintContext, LintReport, ObsSchema, Rule,
};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `root`, sorted for
/// deterministic output. Directories named `target`, `fixtures` or
/// `.git` are skipped (fixtures contain *intentional* findings).
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            if path.is_dir() {
                if name != "target" && name != "fixtures" && name != ".git" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under the given roots with the default rules.
pub fn lint_paths(roots: &[PathBuf], ctx: &LintContext) -> io::Result<LintReport> {
    let rules = default_rules();
    let mut report = LintReport::default();
    for root in roots {
        for path in collect_rs_files(root)? {
            let text = fs::read_to_string(&path)?;
            let rel = path.to_string_lossy().replace('\\', "/");
            let (active, suppressed) = lint_source(&rules, ctx, &rel, &text);
            report.findings.extend(active);
            report.suppressed.extend(suppressed);
            report.files += 1;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Minimal JSON string escaping for report output (the crate is
/// std-only by design, mirroring `eadrl-obs`'s hand-rolled codec).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a report as a JSON object (findings, suppressed count, file
/// count) — the artifact CI uploads.
pub fn report_to_json(report: &LintReport) -> String {
    let mut s = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
        ));
    }
    s.push_str(&format!(
        "],\"suppressed\":{},\"files\":{}}}",
        report.suppressed.len(),
        report.files
    ));
    s
}
