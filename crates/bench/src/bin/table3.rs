//! Regenerates **Table III**: empirical online-runtime comparison between
//! EA-DRL and DEMSC. The measured phase is the real-time prediction loop
//! only (base-model one-step forecasts + weight computation + combination);
//! EA-DRL's policy training and DEMSC's warm-up are excluded, exactly as
//! in the paper.
//!
//! ```text
//! cargo run -p eadrl-bench --release --bin table3 [-- --quick]
//! ```

use eadrl_bench::{
    build_pool, demsc_combiner, eadrl_config, fit_pool, mean_std, prediction_matrix,
    time_combination_only, time_online, Scale,
};
use eadrl_core::experiment::sanitize_predictions;
use eadrl_core::{Combiner, EaDrlPolicy};
use eadrl_datasets::{generate, DatasetId};
use eadrl_eval::render_table;

fn main() {
    let scale = Scale::from_args();
    let mut eadrl_times = Vec::new();
    let mut demsc_times = Vec::new();
    let mut eadrl_comb = Vec::new();
    let mut demsc_comb = Vec::new();

    for id in DatasetId::all() {
        let series = generate(id, scale.series_len, scale.seed);
        let n = series.len();
        let cut = (n as f64 * 0.75).round() as usize;
        let (train, test) = series.values().split_at(cut);
        let fit_len = (train.len() as f64 * 0.75).round() as usize;
        let (fit_part, warm_part) = train.split_at(fit_len);
        let season = series.frequency().default_season().min(n / 4);

        let pool = fit_pool(build_pool(scale, season), fit_part);
        let mut warm_preds = prediction_matrix(&pool, fit_part, warm_part);
        sanitize_predictions(&mut warm_preds, fit_part);

        // EA-DRL: policy trained offline (untimed), online loop timed.
        let mut eadrl = EaDrlPolicy::new(eadrl_config(scale));
        eadrl.warm_up(&warm_preds, warm_part);
        eadrl_times.push(time_online(&mut eadrl, &pool, train, test));

        // DEMSC: committee selection warm-started (untimed), online loop
        // (including drift-triggered re-selection) timed.
        let mut demsc = demsc_combiner(scale.seed);
        demsc.warm_up(&warm_preds, warm_part);
        demsc_times.push(time_online(&mut demsc, &pool, train, test));

        // Combination-only timing (pool predictions precomputed): this is
        // where the two methods actually differ.
        let mut online_preds = prediction_matrix(&pool, train, test);
        sanitize_predictions(&mut online_preds, train);
        let mut eadrl2 = EaDrlPolicy::new(eadrl_config(scale));
        eadrl2.warm_up(&warm_preds, warm_part);
        eadrl_comb.push(time_combination_only(&mut eadrl2, &online_preds, test, 20));
        let mut demsc2 = demsc_combiner(scale.seed);
        demsc2.warm_up(&warm_preds, warm_part);
        demsc_comb.push(time_combination_only(&mut demsc2, &online_preds, test, 20));

        eprintln!(
            "  [{:>2}/20] {:<28} EA-DRL {:.3}s  DEMSC {:.3}s",
            id.number(),
            series.name(),
            eadrl_times.last().unwrap(),
            demsc_times.last().unwrap(),
        );
    }

    let (ea_mean, ea_std) = mean_std(&eadrl_times);
    let (de_mean, de_std) = mean_std(&demsc_times);
    let (eac_mean, eac_std) = mean_std(&eadrl_comb);
    let (dec_mean, dec_std) = mean_std(&demsc_comb);
    println!("\nTable III - empirical online runtime comparison (per dataset)\n");
    println!(
        "{}",
        render_table(
            &["Method", "Online incl. pool (s)", "Combination only (s)"],
            &[
                vec![
                    "EA-DRL".to_string(),
                    format!("{ea_mean:.4} ± {ea_std:.4}"),
                    format!("{eac_mean:.6} ± {eac_std:.6}"),
                ],
                vec![
                    "DEMSC".to_string(),
                    format!("{de_mean:.4} ± {de_std:.4}"),
                    format!("{dec_mean:.6} ± {dec_std:.6}"),
                ],
            ],
        )
    );
    println!(
        "DEMSC / EA-DRL ratio: end-to-end {:.2}x, combination-only {:.2}x\n(paper, end-to-end on their testbed: 67.97 / 37.93 = 1.79x; the pool\nforecasts dominate our end-to-end loop, so the method difference shows\nin the combination-only column)",
        de_mean / ea_mean.max(1e-12),
        dec_mean / eac_mean.max(1e-12)
    );
}
