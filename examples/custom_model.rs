//! Extending the library: plug a *custom* base forecaster into the EA-DRL
//! pool. Anything implementing `Forecaster` (or `TabularModel` + the
//! `Windowed` adapter) can join the ensemble.
//!
//! ```text
//! cargo run --release --example custom_model
//! ```

use eadrl::core::{EaDrl, EaDrlConfig};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::{quick_pool, Forecaster, ModelError, TabularModel, Windowed};
use eadrl::timeseries::metrics::rmse;

/// A custom tabular regressor: predicts the median of the window — robust
/// to the bursty outliers in the precipitation series.
#[derive(Debug, Clone, Default)]
struct WindowMedian;

impl TabularModel for WindowMedian {
    fn fit(&mut self, _inputs: &[Vec<f64>], _targets: &[f64]) -> Result<(), ModelError> {
        Ok(()) // nothing to learn
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let mut v = input.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }
    }
}

/// A custom direct `Forecaster`: exponentially decaying mean with a fixed
/// rate (no fitting, pure recursion over the history).
#[derive(Debug, Clone)]
struct DecayingMean {
    alpha: f64,
}

impl Forecaster for DecayingMean {
    fn name(&self) -> &str {
        "DecayingMean"
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
        if series.is_empty() {
            return Err(ModelError::SeriesTooShort { needed: 1, got: 0 });
        }
        Ok(())
    }

    fn predict_next(&self, history: &[f64]) -> f64 {
        let mut level = history.first().copied().unwrap_or(0.0);
        for &x in &history[1..] {
            level += self.alpha * (x - level);
        }
        level
    }

    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

fn main() {
    let series = generate(DatasetId::Precipitation, 480, 42);
    let (train, test) = series.split(0.75);

    // Standard quick pool, extended with the two custom members.
    let mut pool = quick_pool(5, 24, 42);
    pool.push(Box::new(Windowed::new("WindowMedian", 5, WindowMedian)));
    pool.push(Box::new(DecayingMean { alpha: 0.25 }));

    let mut config = EaDrlConfig::default();
    config.episodes = 25;
    let mut model = EaDrl::new(pool, config);
    model.fit(train).expect("fit");

    println!(
        "pool with custom members ({} models): {:?}",
        model.n_models(),
        model.model_names()
    );
    let weights = model.current_weights();
    for (name, w) in model.model_names().iter().zip(weights.iter()) {
        println!("  {name:<22} weight {w:.3}");
    }

    let mut history = train.to_vec();
    let mut preds = Vec::with_capacity(test.len());
    for &actual in test {
        preds.push(model.predict_next(&history));
        history.push(actual);
    }
    println!(
        "\n{}: rolling one-step RMSE = {:.4} over {} test steps",
        series.name(),
        rmse(test, &preds),
        test.len()
    );
}
