//! Bayesian model-comparison tests (Benavoli, Corani, Demšar & Zaffalon,
//! "Time for a change", JMLR 2017) — the tests the paper uses for Table II.

use crate::special::student_t_cdf;
use eadrl_rng::DetRng;

/// Posterior probabilities of the three hypotheses about a difference
/// `B − A` in loss: A better (`p_left`), practically equivalent
/// (`p_rope`), B better (`p_right`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// P(difference < -rope): the *first* method loses more — i.e. the
    /// second method is better.
    pub p_left: f64,
    /// P(|difference| ≤ rope): practical equivalence.
    pub p_rope: f64,
    /// P(difference > rope).
    pub p_right: f64,
}

impl Posterior {
    /// True when `p_left` exceeds the significance threshold.
    pub fn left_significant(&self, threshold: f64) -> bool {
        self.p_left > threshold
    }

    /// True when `p_right` exceeds the significance threshold.
    pub fn right_significant(&self, threshold: f64) -> bool {
        self.p_right > threshold
    }
}

/// Bayesian correlated t-test on paired loss differences from a single
/// dataset.
///
/// `diffs[i]` is the loss of method B minus the loss of method A at
/// evaluation point `i` (so `p_left` = P(B's expected loss is lower by
/// more than `rope`) — careful: left means the difference is negative,
/// i.e. **B better**). `rho` is the correlation between evaluation points
/// introduced by overlapping training data (`n_test / n_total` in k-fold
/// CV; use a small value such as `1/n` for rolling-origin evaluation).
/// `rope` is the region of practical equivalence in loss units.
///
/// The posterior of the mean difference is Student-t with `n - 1` degrees
/// of freedom, location `mean(diffs)` and scale
/// `sqrt((1/n + rho/(1-rho)) * var(diffs))`.
pub fn correlated_t_test(diffs: &[f64], rho: f64, rope: f64) -> Posterior {
    let n = diffs.len();
    if n < 2 {
        return Posterior {
            p_left: 1.0 / 3.0,
            p_rope: 1.0 / 3.0,
            p_right: 1.0 / 3.0,
        };
    }
    let nf = n as f64;
    let mean = diffs.iter().sum::<f64>() / nf;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (nf - 1.0);
    let rho = rho.clamp(0.0, 0.999);
    let scale2 = (1.0 / nf + rho / (1.0 - rho)) * var;
    if scale2 <= 1e-300 {
        // Degenerate: all differences identical.
        return if mean > rope {
            Posterior {
                p_left: 0.0,
                p_rope: 0.0,
                p_right: 1.0,
            }
        } else if mean < -rope {
            Posterior {
                p_left: 1.0,
                p_rope: 0.0,
                p_right: 0.0,
            }
        } else {
            Posterior {
                p_left: 0.0,
                p_rope: 1.0,
                p_right: 0.0,
            }
        };
    }
    let scale = scale2.sqrt();
    let dof = nf - 1.0;
    // P(diff ≤ x) = T_dof((x - mean) / scale).
    let cdf = |x: f64| student_t_cdf((x - mean) / scale, dof);
    let p_left = cdf(-rope);
    let p_right = 1.0 - cdf(rope);
    Posterior {
        p_left,
        p_rope: (1.0 - p_left - p_right).max(0.0),
        p_right,
    }
}

/// Number of independent Monte-Carlo chains the sign test's sampling is
/// split into. Fixed (never derived from the worker count) so the draws
/// — each chain runs on its own [`DetRng::substream`] — are a pure
/// function of `(seed, samples)` at every `EADRL_PAR_THREADS` setting.
const SIGN_TEST_CHAINS: usize = 8;

/// Bayesian sign test across multiple datasets.
///
/// `diffs[d]` is method B's mean loss minus method A's mean loss on
/// dataset `d`. Each dataset votes left (< -rope), rope, or right
/// (> rope); the posterior over the three probabilities is
/// Dirichlet(prior + counts) with the standard prior pseudo-count of 1 on
/// the rope, and the returned probabilities are Monte-Carlo estimates of
/// which region has the largest posterior mass.
///
/// The Monte-Carlo work is split over `SIGN_TEST_CHAINS` (8) chains run
/// in parallel; chain `c` draws from `DetRng::seed_from_u64(seed)`'s
/// substream `c`, so the estimate depends only on `(diffs, rope,
/// samples, seed)` — not on the thread count.
pub fn bayes_sign_test(diffs: &[f64], rope: f64, samples: usize, seed: u64) -> Posterior {
    let mut counts = [0.0_f64; 3]; // [left, rope, right]
    counts[1] += 1.0; // prior pseudo-count on the ROPE
    for &d in diffs {
        if d < -rope {
            counts[0] += 1.0;
        } else if d > rope {
            counts[2] += 1.0;
        } else {
            counts[1] += 1.0;
        }
    }
    let samples = samples.max(100);
    let parent = DetRng::seed_from_u64(seed);
    let run_chain = |chain: usize, draws: usize| -> [usize; 3] {
        let mut rng = parent.substream(chain as u64);
        let mut wins = [0usize; 3];
        for _ in 0..draws {
            // Dirichlet draw via normalized Gamma(αᵢ, 1) variables.
            let g: Vec<f64> = counts.iter().map(|&a| gamma_sample(a, &mut rng)).collect();
            let total: f64 = g.iter().sum();
            let theta: Vec<f64> = g.iter().map(|x| x / total).collect();
            let argmax = if theta[0] >= theta[1] && theta[0] >= theta[2] {
                0
            } else if theta[1] >= theta[2] {
                1
            } else {
                2
            };
            wins[argmax] += 1;
        }
        wins
    };
    // Chain c gets its deterministic share of the draw budget.
    let base = samples / SIGN_TEST_CHAINS;
    let extra = samples % SIGN_TEST_CHAINS;
    let chain_draws: Vec<usize> = (0..SIGN_TEST_CHAINS)
        .map(|c| base + usize::from(c < extra))
        .collect();
    let per_chain = eadrl_par::par_map_indexed(chain_draws.clone(), run_chain)
        // A chain cannot panic; if a worker is somehow lost, redo the
        // whole estimate serially — same substreams, same result.
        .unwrap_or_else(|_| {
            chain_draws
                .iter()
                .enumerate()
                .map(|(c, &draws)| run_chain(c, draws))
                .collect()
        });
    let mut wins = [0usize; 3];
    for chain in per_chain {
        wins[0] += chain[0];
        wins[1] += chain[1];
        wins[2] += chain[2];
    }
    Posterior {
        p_left: wins[0] as f64 / samples as f64,
        p_rope: wins[1] as f64 / samples as f64,
        p_right: wins[2] as f64 / samples as f64,
    }
}

/// Gamma(shape, 1) sampler (Marsaglia & Tsang, with the shape < 1 boost).
fn gamma_sample(shape: f64, rng: &mut DetRng) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.random::<f64>().max(1e-300);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn standard_normal(rng: &mut DetRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_test_detects_clear_winner() {
        // B consistently loses ~1 more than A → diff positive → p_right.
        let diffs: Vec<f64> = (0..50).map(|i| 1.0 + 0.01 * (i % 5) as f64).collect();
        let p = correlated_t_test(&diffs, 0.01, 0.0);
        assert!(p.p_right > 0.99, "{p:?}");
        assert!(p.right_significant(0.95));
        assert!(!p.left_significant(0.95));
    }

    #[test]
    fn t_test_symmetric_under_negation() {
        let diffs: Vec<f64> = (0..30)
            .map(|i| 0.5 + 0.1 * ((i % 7) as f64 - 3.0))
            .collect();
        let neg: Vec<f64> = diffs.iter().map(|d| -d).collect();
        let p = correlated_t_test(&diffs, 0.02, 0.0);
        let q = correlated_t_test(&neg, 0.02, 0.0);
        assert!((p.p_right - q.p_left).abs() < 1e-10);
    }

    #[test]
    fn t_test_rope_captures_small_differences() {
        let diffs: Vec<f64> = (0..40).map(|i| 0.001 * ((i % 3) as f64 - 1.0)).collect();
        let p = correlated_t_test(&diffs, 0.02, 0.1);
        assert!(p.p_rope > 0.95, "{p:?}");
    }

    #[test]
    fn t_test_correlation_widens_posterior() {
        let diffs: Vec<f64> = (0..30)
            .map(|i| 0.3 + 0.1 * ((i % 5) as f64 - 2.0))
            .collect();
        let tight = correlated_t_test(&diffs, 0.0, 0.0);
        let wide = correlated_t_test(&diffs, 0.5, 0.0);
        assert!(
            wide.p_right < tight.p_right,
            "correlation must reduce certainty: {wide:?} vs {tight:?}"
        );
    }

    #[test]
    fn t_test_degenerate_inputs() {
        let p = correlated_t_test(&[1.0], 0.0, 0.0);
        assert!((p.p_left - 1.0 / 3.0).abs() < 1e-12);
        // All-identical positive diffs → certain right.
        let q = correlated_t_test(&[2.0; 10], 0.0, 0.0);
        assert_eq!(q.p_right, 1.0);
    }

    #[test]
    fn sign_test_detects_dominance_across_datasets() {
        // B worse on 18 of 20 datasets.
        let diffs: Vec<f64> = (0..20).map(|i| if i < 18 { 1.0 } else { -1.0 }).collect();
        let p = bayes_sign_test(&diffs, 0.0, 5000, 42);
        assert!(p.p_right > 0.95, "{p:?}");
    }

    #[test]
    fn sign_test_balanced_is_uncertain() {
        let diffs: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let p = bayes_sign_test(&diffs, 0.0, 5000, 7);
        assert!(p.p_right < 0.9 && p.p_left < 0.9, "{p:?}");
    }

    #[test]
    fn sign_test_rope_votes() {
        // Everything inside the rope → rope dominates.
        let diffs = vec![0.01; 15];
        let p = bayes_sign_test(&diffs, 0.1, 5000, 3);
        assert!(p.p_rope > 0.95, "{p:?}");
    }

    #[test]
    fn sign_test_is_seed_deterministic() {
        let diffs = vec![0.5, -0.2, 0.7, 0.9, -0.1];
        let a = bayes_sign_test(&diffs, 0.0, 2000, 11);
        let b = bayes_sign_test(&diffs, 0.0, 2000, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn gamma_sampler_mean_matches_shape() {
        let mut rng = DetRng::seed_from_u64(5);
        for &shape in &[0.5, 1.0, 3.0, 10.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma_sample(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }
}
