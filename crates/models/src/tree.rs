//! CART regression trees and random forests.

use crate::forecaster::ModelError;
use crate::tabular::{TabularModel, Windowed};
use eadrl_rng::DetRng;

/// One node of a regression tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART regression tree: greedy variance-reduction splits, mean leaves.
#[derive(Debug, Clone)]
pub struct TreeRegressor {
    max_depth: usize,
    min_samples_leaf: usize,
    /// Number of features considered per split; `0` means all (plain CART).
    mtry: usize,
    seed: u64,
    root: Option<Node>,
}

impl TreeRegressor {
    /// Creates a full-featured CART tree (all features at every split).
    pub fn new(max_depth: usize, min_samples_leaf: usize) -> Self {
        TreeRegressor {
            max_depth: max_depth.max(1),
            min_samples_leaf: min_samples_leaf.max(1),
            mtry: 0,
            seed: 0,
            root: None,
        }
    }

    /// Creates a randomized tree considering `mtry` features per split
    /// (random-forest member).
    pub fn randomized(max_depth: usize, min_samples_leaf: usize, mtry: usize, seed: u64) -> Self {
        TreeRegressor {
            max_depth: max_depth.max(1),
            min_samples_leaf: min_samples_leaf.max(1),
            mtry,
            seed,
            root: None,
        }
    }

    /// Tree depth (longest root-to-leaf path, 0 for a stump/unfitted tree).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map_or(0, d)
    }

    fn build(
        inputs: &[Vec<f64>],
        targets: &[f64],
        indices: &mut [usize],
        depth: usize,
        cfg: &TreeRegressor,
        rng: &mut DetRng,
    ) -> Node {
        let mean = indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64;
        if depth >= cfg.max_depth || indices.len() < 2 * cfg.min_samples_leaf {
            return Node::Leaf { value: mean };
        }
        let n_features = inputs[0].len();
        // Candidate features for this split.
        let features: Vec<usize> = if cfg.mtry == 0 || cfg.mtry >= n_features {
            (0..n_features).collect()
        } else {
            // Sample cfg.mtry distinct features.
            let mut all: Vec<usize> = (0..n_features).collect();
            for i in 0..cfg.mtry {
                let j = rng.random_range(i..all.len());
                all.swap(i, j);
            }
            all.truncate(cfg.mtry);
            all
        };

        // Greedy best split by SSE reduction.
        let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| targets[i] * targets[i]).sum();
        let n = indices.len() as f64;
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let mut sorted = indices.to_vec();
        for &feat in &features {
            sorted.sort_by(|&a, &b| {
                inputs[a][feat]
                    .partial_cmp(&inputs[b][feat])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for pos in 0..sorted.len() - 1 {
                let y = targets[sorted[pos]];
                left_sum += y;
                left_sq += y * y;
                let nl = (pos + 1) as f64;
                let nr = n - nl;
                if (pos + 1) < cfg.min_samples_leaf
                    || (sorted.len() - pos - 1) < cfg.min_samples_leaf
                {
                    continue;
                }
                // Skip ties: can't split between equal feature values.
                let v_here = inputs[sorted[pos]][feat];
                let v_next = inputs[sorted[pos + 1]][feat];
                if (v_next - v_here).abs() < 1e-12 {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((feat, 0.5 * (v_here + v_next), sse));
                }
            }
        }

        match best {
            Some((feature, threshold, sse)) if sse < parent_sse - 1e-12 => {
                let (mut li, mut ri): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| inputs[i][feature] <= threshold);
                if li.is_empty() || ri.is_empty() {
                    return Node::Leaf { value: mean };
                }
                let left = Self::build(inputs, targets, &mut li, depth + 1, cfg, rng);
                let right = Self::build(inputs, targets, &mut ri, depth + 1, cfg, rng);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            _ => Node::Leaf { value: mean },
        }
    }
}

impl TabularModel for TreeRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let mut indices: Vec<usize> = (0..inputs.len()).collect();
        let cfg = self.clone();
        let mut rng = DetRng::seed_from_u64(self.seed);
        self.root = Some(TreeRegressor::build(
            inputs,
            targets,
            &mut indices,
            0,
            &cfg,
            &mut rng,
        ));
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        let mut node = match &self.root {
            Some(n) => n,
            None => return 0.0,
        };
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if input.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

/// Bagged ensemble of randomized [`TreeRegressor`]s.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    n_trees: usize,
    max_depth: usize,
    min_samples_leaf: usize,
    seed: u64,
    trees: Vec<TreeRegressor>,
}

impl RandomForestRegressor {
    /// Creates an unfitted forest.
    pub fn new(n_trees: usize, max_depth: usize, min_samples_leaf: usize, seed: u64) -> Self {
        RandomForestRegressor {
            n_trees: n_trees.max(1),
            max_depth,
            min_samples_leaf,
            seed,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn n_fitted_trees(&self) -> usize {
        self.trees.len()
    }
}

impl TabularModel for RandomForestRegressor {
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError> {
        if inputs.is_empty() || inputs.len() != targets.len() {
            return Err(ModelError::SeriesTooShort {
                needed: 1,
                got: inputs.len(),
            });
        }
        let n = inputs.len();
        let n_features = inputs[0].len();
        // Standard regression-forest default: mtry = max(1, p / 3).
        let mtry = (n_features / 3).max(1);
        let mut rng = DetRng::seed_from_u64(self.seed);
        self.trees.clear();
        for t in 0..self.n_trees {
            // Bootstrap sample.
            let mut boot_x = Vec::with_capacity(n);
            let mut boot_y = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.random_range(0..n);
                boot_x.push(inputs[i].clone());
                boot_y.push(targets[i]);
            }
            let mut tree = TreeRegressor::randomized(
                self.max_depth,
                self.min_samples_leaf,
                mtry,
                self.seed.wrapping_add(t as u64 + 1),
            );
            tree.fit(&boot_x, &boot_y)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, input: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict(input)).sum::<f64>() / self.trees.len() as f64
    }
}

/// A decision-tree forecaster over embedded windows (paper family **DT**).
pub fn decision_tree(
    k: usize,
    max_depth: usize,
    min_samples_leaf: usize,
) -> Windowed<TreeRegressor> {
    Windowed::new(
        format!("DT(d={max_depth})"),
        k,
        TreeRegressor::new(max_depth, min_samples_leaf),
    )
}

/// A random-forest forecaster over embedded windows (paper family **RFR**).
pub fn random_forest(
    k: usize,
    n_trees: usize,
    max_depth: usize,
    seed: u64,
) -> Windowed<RandomForestRegressor> {
    Windowed::new(
        format!("RFR(n={n_trees},d={max_depth})"),
        k,
        RandomForestRegressor::new(n_trees, max_depth, 2, seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecaster::Forecaster;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 if x0 > 0.5 else 0; the second feature mirrors the first so
        // randomized trees (mtry = 1) always see an informative feature.
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 / 39.0, i as f64 / 39.0])
            .collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|x| if x[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        (inputs, targets)
    }

    #[test]
    fn tree_learns_step_function() {
        let (x, y) = step_data();
        let mut tree = TreeRegressor::new(3, 1);
        tree.fit(&x, &y).unwrap();
        assert_eq!(tree.predict(&[0.1, 0.1]), 0.0);
        assert_eq!(tree.predict(&[0.9, 0.9]), 1.0);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn depth_limit_is_respected() {
        let inputs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        let mut tree = TreeRegressor::new(2, 1);
        tree.fit(&inputs, &targets).unwrap();
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let (x, y) = step_data();
        let mut tree = TreeRegressor::new(10, 20);
        tree.fit(&x, &y).unwrap();
        // With min leaf 20 of 40 samples only the root split is possible.
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 20];
        let mut tree = TreeRegressor::new(5, 1);
        tree.fit(&x, &y).unwrap();
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[3.0]), 5.0);
    }

    #[test]
    fn unfitted_tree_predicts_zero() {
        let tree = TreeRegressor::new(3, 1);
        assert_eq!(tree.predict(&[1.0]), 0.0);
    }

    #[test]
    fn forest_averages_trees_and_is_deterministic() {
        let (x, y) = step_data();
        let mut f1 = RandomForestRegressor::new(10, 4, 1, 42);
        let mut f2 = RandomForestRegressor::new(10, 4, 1, 42);
        f1.fit(&x, &y).unwrap();
        f2.fit(&x, &y).unwrap();
        assert_eq!(f1.n_fitted_trees(), 10);
        assert_eq!(f1.predict(&[0.2, 0.2]), f2.predict(&[0.2, 0.2]));
        assert!(f1.predict(&[0.9, 0.9]) > 0.7);
        assert!(f1.predict(&[0.1, 0.1]) < 0.3);
    }

    #[test]
    fn forest_forecaster_tracks_seasonal_series() {
        let series: Vec<f64> = (0..200)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 5.0 + 10.0)
            .collect();
        let mut m = random_forest(5, 15, 6, 7);
        m.fit(&series).unwrap();
        let pred = m.predict_next(&series);
        let truth = (2.0 * std::f64::consts::PI * 200.0 / 12.0).sin() * 5.0 + 10.0;
        assert!((pred - truth).abs() < 2.0, "pred {pred} truth {truth}");
    }

    #[test]
    fn empty_fit_is_error() {
        let mut tree = TreeRegressor::new(3, 1);
        assert!(tree.fit(&[], &[]).is_err());
        let mut forest = RandomForestRegressor::new(5, 3, 1, 0);
        assert!(forest.fit(&[], &[]).is_err());
    }
}
