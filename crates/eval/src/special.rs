//! Special functions: log-gamma, regularized incomplete beta, Student-t CDF.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` by Lentz's continued
/// fraction, accurate to ~1e-14 for moderate a, b.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if !(0.0..=1.0).contains(&x) {
        return f64::NAN;
    }
    // eadrl-lint: allow(no-float-eq): domain boundary — I_0(a,b) = 0 exactly, and the continued fraction needs x > 0
    if x == 0.0 {
        return 0.0;
    }
    // eadrl-lint: allow(no-float-eq): domain boundary — I_1(a,b) = 1 exactly
    if x == 1.0 {
        return 1.0;
    }
    // Symmetry: use the fast-converging side.
    if x > (a + 1.0) / (a + b + 2.0) {
        return 1.0 - incomplete_beta(b, a, 1.0 - x);
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() + ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = ln_front.exp() / a;

    // Lentz's algorithm for the continued fraction.
    let tiny = 1e-300;
    let mut f = 1.0_f64;
    let mut c = 1.0_f64;
    let mut d = 0.0_f64;
    for i in 0..200 {
        let m = i / 2;
        let numerator: f64 = if i == 0 {
            1.0
        } else if i % 2 == 0 {
            let m = m as f64;
            (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m))
        } else {
            let m = m as f64;
            -((a + m) * (a + b + m) * x) / ((a + 2.0 * m) * (a + 2.0 * m + 1.0))
        };
        d = 1.0 + numerator * d;
        if d.abs() < tiny {
            d = tiny;
        }
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if c.abs() < tiny {
            c = tiny;
        }
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-14 {
            break;
        }
    }
    front * (f - 1.0)
}

/// CDF of the Student-t distribution with `dof` degrees of freedom.
pub fn student_t_cdf(t: f64, dof: f64) -> f64 {
    if dof <= 0.0 {
        return f64::NAN;
    }
    // eadrl-lint: allow(no-float-eq): symmetry point — the CDF at exactly t = 0 is 1/2 by definition
    if t == 0.0 {
        return 0.5;
    }
    let x = dof / (dof + t * t);
    let p = 0.5 * incomplete_beta(0.5 * dof, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-10, "Γ({})", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - (std::f64::consts::PI.sqrt()).ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_symmetry_and_bounds() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = incomplete_beta(2.5, 1.5, 0.3);
        let w = 1.0 - incomplete_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.35, 0.82] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn student_t_cdf_known_values() {
        // dof = 1 is the Cauchy distribution: CDF(1) = 3/4.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        // Symmetry.
        let p = student_t_cdf(1.7, 8.0);
        let q = student_t_cdf(-1.7, 8.0);
        assert!((p + q - 1.0).abs() < 1e-12);
        // Large dof approaches the normal: CDF(1.96, 1e6) ≈ 0.975.
        assert!((student_t_cdf(1.96, 1e6) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn student_t_cdf_monotone() {
        let mut prev = 0.0;
        for i in -30..=30 {
            let p = student_t_cdf(i as f64 / 5.0, 7.0);
            assert!(p >= prev);
            prev = p;
        }
    }
}
