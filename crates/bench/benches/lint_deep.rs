//! Benchmarks the deep lint analysis end-to-end over the real
//! workspace: parse + call-graph construction, the three
//! interprocedural passes on a prebuilt analysis, and one cold
//! everything-included run.
//!
//! The analyzer is a blocking CI step, so its latency is a developer-
//! facing budget, not a curiosity. The gate: a cold end-to-end run
//! (collect + lex + parse + graph + all passes) must finish in under
//! [`COLD_BUDGET`] on one core.
//!
//! Flags (combinable):
//! - `--quick`   shrink the measurement budget for CI smoke runs;
//! - `--json`    print a machine-readable `lint_deep_bench` report;
//! - `--out <p>` also write that JSON document to the file `<p>`;
//! - `--check`   exit non-zero if the cold run exceeds the budget (the
//!   latency regression gate wired into CI).

use eadrl_bench::harness::Harness;
use eadrl_bench::{json_output, print_json_report};
use eadrl_lint::deep::{self, Analysis, HotPathConfig};
use eadrl_lint::source::SourceFile;
use eadrl_obs::json::JsonValue;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Hard ceiling for one cold end-to-end deep run on one core.
const COLD_BUDGET: Duration = Duration::from_secs(5);

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// Reads and lexes every workspace source file with workspace-relative
/// paths (the path-scoped rules key off `crates/…/src/` prefixes).
fn parse_workspace(root: &Path) -> Vec<SourceFile> {
    let mut files = Vec::new();
    for dir in ["crates", "src", "examples"] {
        let p = root.join(dir);
        if !p.exists() {
            continue;
        }
        for path in eadrl_lint::collect_rs_files(&p).expect("walk workspace") {
            let rel = path
                .strip_prefix(root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path).expect("read source");
            files.push(SourceFile::parse(&rel, &text));
        }
    }
    files
}

fn hot_config(root: &Path) -> HotPathConfig {
    let md = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    HotPathConfig::from_design_md(&md).expect("hot-path table parses")
}

/// One cold run, everything included: I/O, lexing, parsing, call-graph
/// construction, all three passes. This is what a CI invocation costs.
fn cold_run(root: &Path, hot: &HotPathConfig) -> (Duration, usize, usize) {
    let start = Instant::now();
    let analysis = Analysis::from_files(parse_workspace(root), root);
    let report = deep::run_deep(&analysis, Some(hot));
    let elapsed = start.elapsed();
    let fns = analysis.graph.nodes.len();
    black_box(&report);
    (elapsed, fns, analysis.files.len())
}

fn out_path() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let raw = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))?;
    let path = PathBuf::from(raw);
    if path.is_absolute() {
        return Some(path);
    }
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Some(Path::new(&dir).join("../..").join(path)),
        Err(_) => Some(path),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");

    let root = workspace_root();
    let hot = hot_config(&root);

    // Gate measurement first, while caches are coldest this process
    // will ever have them.
    let (cold, graph_fns, file_count) = cold_run(&root, &hot);
    println!(
        "lint_deep/cold_end_to_end    {:.1} ms  ({} files, {} fns in graph)",
        cold.as_secs_f64() * 1e3,
        file_count,
        graph_fns,
    );

    let mut h = if quick {
        Harness::default()
            .measurement_time(Duration::from_millis(300))
            .warm_up_time(Duration::from_millis(100))
            .sample_size(10)
    } else {
        Harness::default()
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(500))
            .sample_size(20)
    };

    // Phase split: construction (lex + parse + graph) vs the passes.
    let mut group = h.benchmark_group("lint_deep");
    group.bench_function("parse_and_graph", |b| {
        b.iter(|| black_box(Analysis::from_files(parse_workspace(&root), &root)))
    });
    let analysis = Analysis::from_files(parse_workspace(&root), &root);
    group.bench_function("deep_passes", |b| {
        b.iter(|| black_box(deep::run_deep(&analysis, Some(&hot))))
    });
    let summaries = group.finish();
    let median = |id: &str| -> f64 {
        summaries
            .iter()
            .find(|(name, _)| name == id)
            .map_or(f64::NAN, |(_, s)| s.median_ns)
    };

    let fields: Vec<(String, JsonValue)> = vec![
        ("files".to_string(), file_count.into()),
        ("graph_fns".to_string(), graph_fns.into()),
        (
            "cold_end_to_end_ms".to_string(),
            (cold.as_secs_f64() * 1e3).into(),
        ),
        (
            "budget_ms".to_string(),
            (COLD_BUDGET.as_secs_f64() * 1e3).into(),
        ),
        (
            "parse_and_graph_median_ns".to_string(),
            median("parse_and_graph").into(),
        ),
        (
            "deep_passes_median_ns".to_string(),
            median("deep_passes").into(),
        ),
    ];
    let doc = {
        let mut obj: Vec<(String, JsonValue)> =
            vec![("report".to_string(), "lint_deep_bench".into())];
        obj.extend(fields.iter().cloned());
        JsonValue::Obj(obj).to_json()
    };
    if let Some(path) = out_path() {
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if json_output() {
        print_json_report("lint_deep_bench", fields);
    }

    if check {
        if cold > COLD_BUDGET {
            eprintln!(
                "lint_deep check FAILED: cold end-to-end run took {:.1} ms (budget {:.0} ms)",
                cold.as_secs_f64() * 1e3,
                COLD_BUDGET.as_secs_f64() * 1e3,
            );
            std::process::exit(1);
        }
        eprintln!(
            "lint_deep check passed: {:.1} ms cold (budget {:.0} ms)",
            cold.as_secs_f64() * 1e3,
            COLD_BUDGET.as_secs_f64() * 1e3,
        );
    }
}
