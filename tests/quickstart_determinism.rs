//! Determinism smoke test through the telemetry layer: running the
//! quickstart-style pipeline twice with the same seed must produce
//! byte-identical predictions AND byte-identical `eadrl.weights` event
//! payloads (the convex weight vectors the actor emits per prediction).
//! This is the end-to-end counterpart of the `determinism` lint rule:
//! if nondeterminism (clock reads, hash iteration, uninitialized state)
//! leaks into the forecast path, the bit patterns diverge here.

use eadrl::core::{EaDrl, EaDrlConfig};
use eadrl::datasets::{generate, DatasetId};
use eadrl::models::quick_pool;
use eadrl::obs::{Level, RingSink, Value};
use std::sync::Arc;

/// Runs the pipeline once and returns (prediction bits, weight-vector
/// bits per `eadrl.weights` event).
fn run_once(seed: u64) -> (Vec<u64>, Vec<Vec<u64>>) {
    let sink = Arc::new(RingSink::new(4096));
    eadrl::obs::set_sink(sink.clone());
    eadrl::obs::set_level(Some(Level::Debug));

    let series = generate(DatasetId::TaxiDemand2, 360, seed);
    let (train, test) = series.split(0.75);
    let mut config = EaDrlConfig::default();
    config.omega = 8;
    config.episodes = 6;
    config.restarts = 1;
    config.ddpg.seed = seed;
    let mut model = EaDrl::new(quick_pool(5, 48, seed), config);
    model.fit(train).expect("fit");

    let mut history = train.to_vec();
    let mut pred_bits = Vec::new();
    for &actual in test.iter().take(15) {
        pred_bits.push(model.predict_next(&history).to_bits());
        history.push(actual);
    }

    let weight_bits: Vec<Vec<u64>> = sink
        .events_named("eadrl.weights")
        .iter()
        .filter_map(|e| {
            e.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("weights", Value::F64s(w)) => Some(w.iter().map(|x| x.to_bits()).collect()),
                _ => None,
            })
        })
        .collect();
    assert!(
        !weight_bits.is_empty(),
        "expected eadrl.weights events at debug level"
    );
    (pred_bits, weight_bits)
}

#[test]
fn quickstart_pipeline_is_bitwise_deterministic_including_telemetry() {
    let (preds_a, weights_a) = run_once(11);
    let (preds_b, weights_b) = run_once(11);
    assert_eq!(preds_a, preds_b, "predictions must be byte-identical");
    assert_eq!(
        weights_a, weights_b,
        "weight-vector telemetry must be byte-identical"
    );
}
