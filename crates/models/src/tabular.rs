//! Window-to-forecaster adapter shared by all regression-family models.
//!
//! The paper turns each series into a supervised problem by time-delay
//! embedding with dimension k ("Regression models are … applied after using
//! time series embedding to dimension k"). [`Windowed`] packages that
//! recipe once: fit a [`TabularModel`] on embedded, z-scored windows and
//! forecast from the most recent window, so every tree/kernel/neural
//! regressor in this crate only implements plain tabular fit/predict.

use crate::forecaster::{fallback_forecast, Forecaster, ModelError};
use eadrl_timeseries::embedding::embed;
use eadrl_timeseries::transform::{Scaler, ZScoreScaler};

/// A tabular regressor mapping fixed-length feature vectors to a scalar.
pub trait TabularModel: Send + Sync + Clone {
    /// Fits on rows of features with aligned targets.
    fn fit(&mut self, inputs: &[Vec<f64>], targets: &[f64]) -> Result<(), ModelError>;

    /// Predicts the target for one feature vector.
    fn predict(&self, input: &[f64]) -> f64;
}

/// Adapts a [`TabularModel`] into a [`Forecaster`] via time-delay embedding.
///
/// On `fit`, the training series is z-scored, embedded with dimension `k`,
/// and handed to the inner model. On `predict_next`, the last `k` history
/// values are scaled, fed through the model, and the output is un-scaled.
/// Histories shorter than `k` fall back to the last observed value.
#[derive(Debug, Clone)]
pub struct Windowed<M: TabularModel> {
    name: String,
    k: usize,
    scaler: Option<ZScoreScaler>,
    model: M,
    fitted: bool,
}

impl<M: TabularModel> Windowed<M> {
    /// Wraps `model` with embedding dimension `k`.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(name: impl Into<String>, k: usize, model: M) -> Self {
        assert!(k > 0, "embedding dimension must be positive");
        Windowed {
            name: name.into(),
            k,
            scaler: None,
            model,
            fitted: false,
        }
    }

    /// Embedding dimension.
    pub fn embedding(&self) -> usize {
        self.k
    }

    /// Immutable access to the inner model (post-fit inspection in tests).
    pub fn inner(&self) -> &M {
        &self.model
    }
}

impl<M: TabularModel + 'static> Forecaster for Windowed<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, series: &[f64]) -> Result<(), ModelError> {
        // Require a handful of supervised examples beyond the window.
        let needed = self.k + 8;
        if series.len() < needed {
            return Err(ModelError::SeriesTooShort {
                needed,
                got: series.len(),
            });
        }
        let scaler = ZScoreScaler::fit(series);
        let scaled = scaler.transform_all(series);
        let emb = embed(&scaled, self.k);
        self.model.fit(&emb.inputs, &emb.targets)?;
        self.scaler = Some(scaler);
        self.fitted = true;
        Ok(())
    }

    fn predict_next(&self, history: &[f64]) -> f64 {
        let (Some(scaler), true) = (self.scaler.as_ref(), self.fitted) else {
            return fallback_forecast(history);
        };
        if history.len() < self.k {
            return fallback_forecast(history);
        }
        let window: Vec<f64> = history[history.len() - self.k..]
            .iter()
            .map(|&v| scaler.transform(v))
            .collect();
        let pred = self.model.predict(&window);
        let out = scaler.inverse(pred);
        if out.is_finite() {
            out
        } else {
            fallback_forecast(history)
        }
    }

    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Predicts the mean of the window (for adapter-level tests).
    #[derive(Debug, Clone, Default)]
    struct WindowMean;

    impl TabularModel for WindowMean {
        fn fit(&mut self, _inputs: &[Vec<f64>], _targets: &[f64]) -> Result<(), ModelError> {
            Ok(())
        }

        fn predict(&self, input: &[f64]) -> f64 {
            input.iter().sum::<f64>() / input.len() as f64
        }
    }

    #[test]
    fn fit_requires_enough_data() {
        let mut w = Windowed::new("wm", 5, WindowMean);
        assert!(w.fit(&[1.0; 10]).is_err());
        assert!(w.fit(&[1.0; 13]).is_ok());
    }

    #[test]
    fn unfitted_model_falls_back() {
        let w = Windowed::new("wm", 3, WindowMean);
        assert_eq!(w.predict_next(&[1.0, 2.0, 3.0, 4.0]), 4.0);
    }

    #[test]
    fn short_history_falls_back() {
        let mut w = Windowed::new("wm", 5, WindowMean);
        w.fit(&(0..30).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(w.predict_next(&[7.0]), 7.0);
    }

    #[test]
    fn scaling_roundtrips_through_prediction() {
        // WindowMean on a constant series must predict that constant.
        let series = vec![42.0; 40];
        let mut w = Windowed::new("wm", 5, WindowMean);
        w.fit(&series).unwrap();
        let p = w.predict_next(&series);
        assert!((p - 42.0).abs() < 1e-9, "got {p}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_embedding_panics() {
        let _ = Windowed::new("wm", 0, WindowMean);
    }
}
