//! `determinism`: keep nondeterminism out of forecast-producing code.
//!
//! Two sub-checks, both motivated by the paper's evaluation protocol
//! (rank rewards and Bayesian sign-rank tests are only meaningful when a
//! rerun reproduces the exact same 16-method comparison):
//!
//! 1. **Wall-clock reads** — `SystemTime::now` / `Instant::now` are
//!    confined to `crates/obs` (timestamps are telemetry's job) and
//!    `crates/bench` (runtime *is* the measured quantity there). A
//!    timing read anywhere else either leaks into results or belongs in
//!    a span.
//! 2. **Hash collections** — `HashMap`/`HashSet` iteration order is
//!    randomized per process; in the result-producing crates an
//!    iteration that feeds a forecast, a rank, or a report makes runs
//!    unreproducible. Use `BTreeMap`/`BTreeSet`.

use crate::lexer::TokenKind;
use crate::rules::{Finding, LintContext, Rule, RESULT_CRATES};
use crate::source::SourceFile;

/// Crates allowed to read the wall clock.
const CLOCK_ALLOWED: &[&str] = &["crates/obs/", "crates/bench/", "crates/lint/"];

/// See module docs.
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "forbid wall-clock reads outside obs/bench and HashMap/HashSet in result-producing crates"
    }

    fn check(&self, file: &SourceFile, _ctx: &LintContext, out: &mut Vec<Finding>) {
        let in_crates = file.rel_path.starts_with("crates/");
        let clock_banned = in_crates && !file.in_any(CLOCK_ALLOWED);
        let hash_banned = file.in_any(RESULT_CRATES);
        if !clock_banned && !hash_banned {
            return;
        }
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_test_code(t.line) {
                continue;
            }
            match t.text.as_str() {
                "SystemTime" | "Instant" if clock_banned => {
                    // `Instant::now` — the `now` must follow `::`.
                    let coloncolon = matches!(
                        toks.get(i + 1),
                        Some(n) if n.kind == TokenKind::Op && n.text == "::"
                    );
                    let now = matches!(
                        toks.get(i + 2),
                        Some(n) if n.kind == TokenKind::Ident && n.text == "now"
                    );
                    if coloncolon && now {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "{}::now() outside crates/obs + crates/bench — route timing through eadrl_obs spans or annotate why wall-clock belongs here",
                                t.text
                            ),
                        });
                    }
                }
                "HashMap" | "HashSet" if hash_banned => {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        message: format!(
                            "{} iteration order is nondeterministic and can leak into forecasts — use BTree{} instead",
                            t.text,
                            t.text.trim_start_matches("Hash")
                        ),
                    });
                }
                _ => {}
            }
        }
    }
}
