//! # EA-DRL — Actor-Critic Ensemble Aggregation for Time-Series Forecasting
//!
//! A from-scratch Rust reproduction of *"An Actor-Critic Ensemble
//! Aggregation Model for Time-Series Forecasting"* (Saadallah, Tavakol &
//! Morik, ICDE 2021).
//!
//! EA-DRL treats the weighting of a linear forecast ensemble as a
//! continuous-control reinforcement-learning problem: a DDPG actor-critic
//! learns, offline, which convex combination of 43 heterogeneous base
//! forecasters to use given a window of the ensemble's own recent outputs;
//! online, predicting the weights is a single actor forward pass.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`linalg`] — dense linear algebra (LU/Cholesky/QR, Jacobi eigen, PCA,
//!   PLS),
//! * [`timeseries`] — series containers, embedding, metrics, drift
//!   detection,
//! * [`datasets`] — seeded synthetic versions of the paper's 20 series,
//! * [`nn`] — a minimal neural-network library (dense, LSTM, conv1d, Adam),
//! * [`models`] — the 16 base-forecaster families and the 43-model pool,
//! * [`rl`] — replay buffers (uniform & diversity sampling), DDPG,
//! * [`rng`] — the repo-owned deterministic RNG behind every seed,
//! * [`par`] — the deterministic std-only thread pool behind every
//!   parallel hot path (`EADRL_PAR_THREADS`),
//! * [`core`] — EA-DRL itself plus every baseline combiner,
//! * [`eval`] — Bayesian correlated t-test, Bayes sign test, rank tables,
//! * [`obs`] — zero-dependency telemetry (spans, metrics, JSONL events),
//! * [`prof`] — trace-driven profiler over `obs` traces (span-tree
//!   attribution, flamegraph export, worker utilization, latency diff).
//!
//! ## Quickstart
//!
//! ```
//! use eadrl::core::{EaDrl, EaDrlConfig};
//! use eadrl::models::quick_pool;
//! use eadrl::datasets::{generate, DatasetId};
//!
//! // A synthetic half-hourly taxi-demand series (Table I, dataset 9).
//! let series = generate(DatasetId::TaxiDemand1, 400, 42);
//! let (train, test) = series.split(0.75);
//!
//! // Small pool + short training schedule so the doc-test stays fast.
//! let mut config = EaDrlConfig::default();
//! config.omega = 6;
//! config.episodes = 5;
//! config.max_iter = 30;
//! let mut model = EaDrl::new(quick_pool(5, 48, 7), config);
//! model.fit(train).unwrap();
//!
//! let forecast = model.forecast(train, test.len());
//! assert_eq!(forecast.len(), test.len());
//! assert!(forecast.iter().all(|v| v.is_finite()));
//! ```

pub use eadrl_core as core;
pub use eadrl_datasets as datasets;
pub use eadrl_eval as eval;
pub use eadrl_linalg as linalg;
pub use eadrl_models as models;
pub use eadrl_nn as nn;
pub use eadrl_obs as obs;
pub use eadrl_par as par;
pub use eadrl_prof as prof;
pub use eadrl_rl as rl;
pub use eadrl_rng as rng;
pub use eadrl_timeseries as timeseries;
