//! RAII scoped timers with hierarchical names.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop. Nested spans build `/`-joined paths through a thread-local
//! stack, so a DDPG update inside an episode inside a fit shows up as
//! `eadrl.fit/ddpg.episode/ddpg.update`. On drop the span
//!
//! 1. records the duration into the histogram `<leaf>.duration_us`
//!    (leaf name, so nesting depth does not fragment the metric), and
//! 2. emits an [`EventKind::Span`] event under the full path.
//!
//! When the span's level is not enabled, construction is a single atomic
//! load and nothing else happens.

use crate::event::{Event, EventKind, Level, Value};
use crate::metrics::global_registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// The stack of open span paths on this thread. `crate::context`
    /// pushes a worker's inherited parent path as the base entry.
    pub(crate) static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A live scoped timer; finishes (and reports) on drop.
#[must_use = "a span measures the scope it is bound to; use `let _span = ...`"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    leaf: &'static str,
    path: String,
    level: Level,
    start: Instant,
    fields: Vec<(String, Value)>,
}

impl Span {
    /// Starts a span at [`Level::Info`]. Prefer [`fn@crate::span`].
    pub fn enter(name: &'static str) -> Span {
        Span::enter_at(Level::Info, name)
    }

    /// Starts a span at an explicit level. Disabled levels cost one
    /// atomic load and allocate nothing.
    // eadrl-lint: allow(panic-reachable): last() is guarded by the is_empty branch; lock-free otherwise
    pub fn enter_at(level: Level, name: &'static str) -> Span {
        if !crate::enabled(level) {
            return Span { inner: None };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}/{}", stack.last().unwrap(), name)
            };
            stack.push(path.clone());
            path
        });
        Span {
            inner: Some(SpanInner {
                leaf: name,
                path,
                level,
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }

    /// Attaches a payload field to the span's completion event (no-op on
    /// a disabled span): `span.record("items", n.into())`. Fields follow
    /// `duration_us` on the wire, in recording order.
    pub fn record(&mut self, key: &str, value: Value) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key.to_string(), value));
        }
    }

    /// Elapsed microseconds so far (0 when the span is disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|s| s.start.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }

    /// True when the span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let duration_us = inner.start.elapsed().as_micros() as u64;
        global_registry()
            .histogram(&format!("{}.duration_us", inner.leaf))
            .record(duration_us as f64);
        let mut event =
            Event::new(inner.path, EventKind::Span, inner.level).field("duration_us", duration_us);
        event.fields.extend(inner.fields);
        crate::emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        // The global default is off; a span is inert then.
        let s = Span::enter_at(Level::Trace, "never.enabled.test");
        assert!(!s.is_recording());
        assert_eq!(s.elapsed_us(), 0);
    }
}
