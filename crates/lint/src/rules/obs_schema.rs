//! `obs-event-schema`: the telemetry contract in `DESIGN.md` is
//! machine-checked.
//!
//! PR 1 introduced a documented schema for every `eadrl_obs` event and
//! span name ("Telemetry event schema" table in `DESIGN.md`). This rule
//! extracts the string literal passed to `eadrl_obs::{event, event_with,
//! warn, span, span_at}` call-sites and validates the dotted name
//! against that table, so adding an event without documenting it — or
//! typo-ing `eadrl.onlien.drift` — fails CI instead of silently
//! producing a trace `obs_validate` can't account for.

use crate::lexer::TokenKind;
use crate::rules::{Finding, LintContext, Rule};
use crate::source::SourceFile;

// The schema parser/matcher itself lives in `eadrl-obs` (`eadrl_obs::schema`)
// so the trace-side tools (`obs_validate --schema`, `obs_report check`)
// share it without depending on the linter; this rule consumes it.
pub use eadrl_obs::schema::ObsSchema;

/// Functions in `eadrl_obs` whose first string-literal argument is an
/// event/span name.
const EMITTERS: &[&str] = &["event", "event_with", "warn", "span", "span_at"];

/// See module docs.
pub struct ObsEventSchema;

impl Rule for ObsEventSchema {
    fn name(&self) -> &'static str {
        "obs-event-schema"
    }

    fn description(&self) -> &'static str {
        "event names passed to eadrl_obs emitters must appear in DESIGN.md's telemetry schema table"
    }

    fn check(&self, file: &SourceFile, ctx: &LintContext, out: &mut Vec<Finding>) {
        // The obs crate itself builds arbitrary names (tests, validator);
        // the contract binds the *emitting* crates.
        if file.in_any(&["crates/obs/", "crates/lint/"]) {
            return;
        }
        let Some(schema) = &ctx.schema else {
            return;
        };
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || t.text != "eadrl_obs" || file.in_test_code(t.line) {
                continue;
            }
            let coloncolon = matches!(
                toks.get(i + 1),
                Some(n) if n.kind == TokenKind::Op && n.text == "::"
            );
            let Some(func) = toks.get(i + 2) else {
                continue;
            };
            if !coloncolon || func.kind != TokenKind::Ident {
                continue;
            }
            if !EMITTERS.contains(&func.text.as_str()) {
                continue;
            }
            if !matches!(
                toks.get(i + 3),
                Some(p) if p.kind == TokenKind::Punct && p.text == "("
            ) {
                continue;
            }
            // First string literal at argument depth 1 is the name (for
            // span_at it follows the Level argument).
            let mut depth = 1usize;
            let mut j = i + 4;
            let mut found = None;
            while let Some(tok) = toks.get(j) {
                match (tok.kind, tok.text.as_str()) {
                    (TokenKind::Punct, "(" | "[" | "{") => depth += 1,
                    (TokenKind::Punct, ")" | "]" | "}") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (TokenKind::Str, _) if depth == 1 => {
                        found = Some(tok);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(name_tok) = found {
                if !schema.matches(&name_tok.text) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: name_tok.line,
                        message: format!(
                            "event name \"{}\" is not in DESIGN.md's telemetry schema table — document it there or fix the typo",
                            name_tok.text
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Parser/matcher behaviour is tested where the type lives
    // (`eadrl_obs::schema`); this pins the re-export.
    #[test]
    fn reexported_schema_type_works() {
        let s = ObsSchema::from_patterns(&["a.b", "x.*.skipped"]);
        assert!(s.matches("a.b"));
        assert!(s.matches("x.two.deep.skipped"));
        assert!(!s.matches("a.b.c"));
    }
}
