//! Exploration-noise processes for continuous actions.

use eadrl_rng::DetRng;

/// A stateful noise process producing one perturbation vector per call.
pub trait Noise {
    /// Next noise vector.
    fn sample(&mut self, rng: &mut DetRng) -> Vec<f64>;

    /// Resets any internal state (called at episode boundaries).
    fn reset(&mut self);

    /// Dimensionality of the produced vectors.
    fn dim(&self) -> usize;
}

/// Ornstein–Uhlenbeck process — the temporally correlated noise DDPG uses
/// for exploration in physical-control tasks:
/// `x ← x + θ (μ - x) + σ N(0, 1)`.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    mu: f64,
    theta: f64,
    sigma: f64,
    state: Vec<f64>,
}

impl OrnsteinUhlenbeck {
    /// Standard DDPG parameters are `theta = 0.15`, `sigma = 0.2`.
    pub fn new(dim: usize, mu: f64, theta: f64, sigma: f64) -> Self {
        OrnsteinUhlenbeck {
            mu,
            theta,
            sigma,
            state: vec![mu; dim],
        }
    }
}

impl Noise for OrnsteinUhlenbeck {
    fn sample(&mut self, rng: &mut DetRng) -> Vec<f64> {
        for x in self.state.iter_mut() {
            *x += self.theta * (self.mu - *x) + self.sigma * gaussian(rng);
        }
        self.state.clone()
    }

    fn reset(&mut self) {
        for x in self.state.iter_mut() {
            *x = self.mu;
        }
    }

    fn dim(&self) -> usize {
        self.state.len()
    }
}

/// Uncorrelated Gaussian noise `N(0, σ²)` per component, with optional
/// multiplicative decay per sample (annealed exploration).
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    dim: usize,
    sigma: f64,
    initial_sigma: f64,
    decay: f64,
}

impl GaussianNoise {
    /// Constant-scale Gaussian noise.
    pub fn new(dim: usize, sigma: f64) -> Self {
        GaussianNoise {
            dim,
            sigma,
            initial_sigma: sigma,
            decay: 1.0,
        }
    }

    /// Gaussian noise whose σ is multiplied by `decay` after every sample.
    pub fn with_decay(dim: usize, sigma: f64, decay: f64) -> Self {
        GaussianNoise {
            dim,
            sigma,
            initial_sigma: sigma,
            decay: decay.clamp(0.0, 1.0),
        }
    }

    /// Current σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Noise for GaussianNoise {
    fn sample(&mut self, rng: &mut DetRng) -> Vec<f64> {
        let out = (0..self.dim).map(|_| self.sigma * gaussian(rng)).collect();
        self.sigma *= self.decay;
        out
    }

    fn reset(&mut self) {
        self.sigma = self.initial_sigma;
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

fn gaussian(rng: &mut DetRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ou_reverts_to_mean() {
        let mut ou = OrnsteinUhlenbeck::new(1, 0.0, 0.15, 0.0); // no noise
        ou.state[0] = 10.0;
        let mut rng = DetRng::seed_from_u64(0);
        for _ in 0..100 {
            ou.sample(&mut rng);
        }
        assert!(ou.state[0].abs() < 0.01, "state = {}", ou.state[0]);
    }

    #[test]
    fn ou_is_temporally_correlated() {
        let mut ou = OrnsteinUhlenbeck::new(1, 0.0, 0.15, 0.2);
        let mut rng = DetRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..500).map(|_| ou.sample(&mut rng)[0]).collect();
        // Lag-1 autocorrelation of OU with theta = 0.15 is ≈ 0.85.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum();
        let cov: f64 = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        assert!(cov / var > 0.6, "autocorr = {}", cov / var);
    }

    #[test]
    fn ou_reset_restores_mean() {
        let mut ou = OrnsteinUhlenbeck::new(3, 0.5, 0.15, 0.2);
        let mut rng = DetRng::seed_from_u64(2);
        ou.sample(&mut rng);
        ou.reset();
        assert_eq!(ou.state, vec![0.5; 3]);
        assert_eq!(ou.dim(), 3);
    }

    #[test]
    fn gaussian_noise_has_requested_scale() {
        let mut g = GaussianNoise::new(1, 2.0);
        let mut rng = DetRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..2000).map(|_| g.sample(&mut rng)[0]).collect();
        let var: f64 = samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std = {}", var.sqrt());
    }

    #[test]
    fn noise_vectors_have_requested_dimension() {
        let mut rng = DetRng::seed_from_u64(8);
        let mut ou = OrnsteinUhlenbeck::new(7, 0.0, 0.15, 0.2);
        assert_eq!(ou.sample(&mut rng).len(), 7);
        let mut g = GaussianNoise::new(5, 1.0);
        assert_eq!(g.sample(&mut rng).len(), 5);
        assert_eq!(g.dim(), 5);
    }

    #[test]
    fn decay_shrinks_sigma_and_reset_restores() {
        let mut g = GaussianNoise::with_decay(2, 1.0, 0.9);
        let mut rng = DetRng::seed_from_u64(4);
        for _ in 0..10 {
            g.sample(&mut rng);
        }
        assert!((g.sigma() - 0.9_f64.powi(10)).abs() < 1e-12);
        g.reset();
        assert_eq!(g.sigma(), 1.0);
    }
}
