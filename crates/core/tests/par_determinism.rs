//! Differential proof that parallelism never changes results: the full
//! training + online-forecast pipeline and the multi-method evaluation
//! protocol are run at `EADRL_PAR_THREADS` ∈ {1, 2, 8} and every run
//! must be bitwise identical — predictions, the `eadrl.weights`
//! telemetry payloads, and the whole metric table. The serial run
//! (1 thread) is the reference; any scheduling, chunking, or
//! merge-order bug in `eadrl-par` or its call sites diverges here.
//!
//! Everything lives in ONE `#[test]` because the thread count comes
//! from an environment variable: tests in one binary may run
//! concurrently, and `set_var` must not race another assertion.

use eadrl_core::baselines::{SlidingWindowEnsemble, StaticEnsemble};
use eadrl_core::{Combiner, EaDrl, EaDrlConfig, EvaluationProtocol};
use eadrl_datasets::{generate, DatasetId};
use eadrl_models::{auto_regressive, quick_pool, Forecaster, Naive, SeasonalNaive};
use eadrl_obs::{Level, RingSink, Value};
use std::sync::Arc;

/// One pipeline run: EA-DRL fit + 15 online predictions, capturing the
/// prediction bits and the actor's `eadrl.weights` payload bits.
fn run_pipeline(seed: u64) -> (Vec<u64>, Vec<Vec<u64>>) {
    let sink = Arc::new(RingSink::new(4096));
    eadrl_obs::set_sink(sink.clone());
    eadrl_obs::set_level(Some(Level::Debug));

    let series = generate(DatasetId::TaxiDemand2, 360, seed);
    let (train, test) = series.split(0.75);
    let mut config = EaDrlConfig::default();
    config.omega = 8;
    config.episodes = 6;
    config.restarts = 1;
    config.ddpg.seed = seed;
    let mut model = EaDrl::new(quick_pool(5, 48, seed), config);
    model.fit(train).expect("fit");

    let mut history = train.to_vec();
    let mut pred_bits = Vec::new();
    for &actual in test.iter().take(15) {
        pred_bits.push(model.predict_next(&history).to_bits());
        history.push(actual);
    }

    let weight_bits: Vec<Vec<u64>> = sink
        .events_named("eadrl.weights")
        .iter()
        .filter_map(|e| {
            e.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("weights", Value::F64s(w)) => Some(w.iter().map(|x| x.to_bits()).collect()),
                _ => None,
            })
        })
        .collect();
    assert!(
        !weight_bits.is_empty(),
        "expected eadrl.weights events at debug level"
    );
    (pred_bits, weight_bits)
}

/// One evaluation-protocol run over a small pool, two combiners and one
/// standalone model: per-method (name, rmse bits, prediction bits,
/// dropped members). Timings are excluded — wall-clock is the one field
/// the determinism contract does not cover.
fn run_evaluation(seed: u64) -> Vec<(String, u64, Vec<u64>)> {
    let series = generate(DatasetId::WaterConsumption, 320, seed);
    let pool: Vec<Box<dyn Forecaster>> = vec![
        Box::new(Naive),
        Box::new(SeasonalNaive::new(24)),
        Box::new(auto_regressive(5, 1e-3)),
        // A member the series cannot support: the dropped-model report
        // must also be thread-count-independent.
        Box::new(SeasonalNaive::new(100_000)),
    ];
    let standalone: Vec<(String, Box<dyn Forecaster>)> =
        vec![("AR".to_string(), Box::new(auto_regressive(5, 1e-3)))];
    let combiners: Vec<Box<dyn Combiner>> = vec![
        Box::new(StaticEnsemble::new()),
        Box::new(SlidingWindowEnsemble::new(10)),
    ];
    let eval = EvaluationProtocol::default().evaluate(
        "par-differential",
        series.values(),
        pool,
        standalone,
        combiners,
    );
    assert_eq!(eval.dropped_models, vec!["SeasonalNaive".to_string()]);
    eval.results
        .into_iter()
        .map(|r| {
            (
                r.name,
                r.rmse.to_bits(),
                r.predictions.iter().map(|p| p.to_bits()).collect(),
            )
        })
        .collect()
}

#[test]
fn pipeline_and_metric_table_are_bitwise_identical_at_1_2_and_8_threads() {
    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var(eadrl_par::THREADS_ENV, threads);
        runs.push((threads, run_pipeline(11), run_evaluation(11)));
    }
    std::env::remove_var(eadrl_par::THREADS_ENV);

    let (_, (ref_preds, ref_weights), ref_table) = &runs[0];
    assert_eq!(
        ref_table.len(),
        3,
        "1 standalone + 2 combiners must all report"
    );
    for (threads, (preds, weights), table) in &runs[1..] {
        assert_eq!(
            preds, ref_preds,
            "predictions diverged from serial at {threads} threads"
        );
        assert_eq!(
            weights, ref_weights,
            "eadrl.weights telemetry diverged from serial at {threads} threads"
        );
        assert_eq!(
            table, ref_table,
            "metric table diverged from serial at {threads} threads"
        );
    }
}
