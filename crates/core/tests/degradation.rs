//! Graceful-degradation regression suite for the hardened serving path.
//!
//! The load-bearing regression here is NaN poisoning: before the guard,
//! a single pool member returning NaN made `dot(weights, predictions)`
//! NaN — and since the served value feeds back into the policy's
//! history, every later forecast too. These tests drive `EaDrl` with
//! deliberately misbehaving in-process members (no `eadrl-sim`
//! dependency: core must prove its own contract) and pin the documented
//! behaviour: finite output, quarantine entry and re-entry, weight
//! renormalization over survivors, and fit-time panic containment.
//!
//! Fault schedules key off `history.len()`, not call counters: fit-time
//! probes only ever see histories shorter than the training series, so
//! a threshold at the training length cleanly — and deterministically —
//! scopes the fault to the serving phase.

use eadrl_core::{EaDrl, EaDrlConfig};
use eadrl_models::{auto_regressive, Forecaster, ModelError, Naive, SeasonalNaive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Serializes the tests that install a process-global telemetry sink.
static SINK_LOCK: Mutex<()> = Mutex::new(());

const TRAIN_LEN: usize = 240;

fn seasonal_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 5.0 + 20.0)
        .collect()
}

fn healthy_pool() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(Naive),
        Box::new(SeasonalNaive::new(12)),
        Box::new(auto_regressive(5, 1e-3)),
    ]
}

fn fast_config() -> EaDrlConfig {
    let mut config = EaDrlConfig {
        omega: 8,
        episodes: 5,
        restarts: 1,
        ..EaDrlConfig::default()
    };
    config.ddpg.seed = 23;
    config.guard.quarantine_after = 2;
    config.guard.reentry_clean_calls = 4;
    config
}

/// Returns NaN on every serve-phase call (clean during fit).
#[derive(Debug, Clone)]
struct NanFromLen {
    from_len: usize,
}

impl Forecaster for NanFromLen {
    fn name(&self) -> &str {
        "NanFromLen"
    }
    fn fit(&mut self, _series: &[f64]) -> Result<(), ModelError> {
        Ok(())
    }
    fn predict_next(&self, history: &[f64]) -> f64 {
        if history.len() >= self.from_len {
            f64::NAN
        } else {
            history.last().copied().unwrap_or(0.0)
        }
    }
    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Panics while `from_len <= history.len() < from_len + burst`, clean
/// otherwise — a transient outage that should quarantine and then earn
/// re-entry.
#[derive(Debug, Clone)]
struct PanicBurst {
    from_len: usize,
    burst: usize,
}

impl Forecaster for PanicBurst {
    fn name(&self) -> &str {
        "PanicBurst"
    }
    fn fit(&mut self, _series: &[f64]) -> Result<(), ModelError> {
        Ok(())
    }
    fn predict_next(&self, history: &[f64]) -> f64 {
        if history.len() >= self.from_len && history.len() < self.from_len + self.burst {
            panic!("degradation-test injected panic");
        }
        history.last().copied().unwrap_or(0.0)
    }
    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Panics in `fit` — the member must be dropped without sinking the pool.
#[derive(Debug, Clone)]
struct FitBomb;

impl Forecaster for FitBomb {
    fn name(&self) -> &str {
        "FitBomb"
    }
    fn fit(&mut self, _series: &[f64]) -> Result<(), ModelError> {
        panic!("degradation-test injected fit panic");
    }
    fn predict_next(&self, history: &[f64]) -> f64 {
        history.last().copied().unwrap_or(0.0)
    }
    fn box_clone(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Swallows the expected panic reports so the suite's output stays
/// readable; real panics still reach the default hook via the payload
/// filter.
fn quiet_expected_panics() {
    use std::sync::Once;
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
            if message.is_some_and(|m| m.contains("degradation-test injected")) {
                return;
            }
            previous(info);
        }));
    });
}

#[test]
fn nan_member_no_longer_poisons_the_ensemble() {
    let series = seasonal_series(TRAIN_LEN + 20);
    let mut pool = healthy_pool();
    pool.push(Box::new(NanFromLen {
        from_len: TRAIN_LEN,
    }));
    let nan_index = pool.len() - 1;

    let mut model = EaDrl::new(pool, fast_config());
    model.fit(&series[..TRAIN_LEN]).expect("fit");

    let mut history = series[..TRAIN_LEN].to_vec();
    for &actual in &series[TRAIN_LEN..] {
        let forecast = model.predict_next(&history);
        assert!(
            forecast.is_finite(),
            "NaN member poisoned the ensemble at step {}",
            history.len() - TRAIN_LEN
        );
        history.push(actual);
    }

    // Every serve-phase call faulted, so the member must be quarantined…
    assert_eq!(model.quarantined_models(), vec![nan_index]);
    // …and the effective weights renormalized over the survivors.
    let weights = model.current_weights();
    assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0));
    assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn panic_burst_quarantines_then_reenters() {
    quiet_expected_panics();
    let series = seasonal_series(TRAIN_LEN + 20);
    let mut pool = healthy_pool();
    pool.push(Box::new(PanicBurst {
        from_len: TRAIN_LEN,
        burst: 3,
    }));
    let bomb_index = pool.len() - 1;

    let mut model = EaDrl::new(pool, fast_config());
    model.fit(&series[..TRAIN_LEN]).expect("fit");

    let mut history = series[..TRAIN_LEN].to_vec();
    let mut was_quarantined = false;
    for &actual in &series[TRAIN_LEN..] {
        let forecast = model.predict_next(&history);
        assert!(forecast.is_finite(), "panic leaked a non-finite forecast");
        was_quarantined |= model.quarantined_models().contains(&bomb_index);
        history.push(actual);
    }
    assert!(
        was_quarantined,
        "three consecutive panics never tripped quarantine"
    );
    assert!(
        model.quarantined_models().is_empty(),
        "member did not re-enter after the burst ended: {:?}",
        model.quarantined_models()
    );
    assert!(model.guard().total_faults(bomb_index) >= 3);
}

#[test]
fn non_finite_history_is_sanitized_with_telemetry() {
    let _serialize = SINK_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let sink = std::sync::Arc::new(eadrl_obs::RingSink::new(4096));
    eadrl_obs::set_sink(sink.clone());
    eadrl_obs::set_level(Some(eadrl_obs::Level::Warn));

    let series = seasonal_series(TRAIN_LEN);
    let mut model = EaDrl::new(healthy_pool(), fast_config());
    model.fit(&series).expect("fit");

    let mut history = series.clone();
    history[40] = f64::NAN;
    history[41] = f64::INFINITY;
    let forecast = model.predict_next(&history);

    eadrl_obs::set_level(None);
    eadrl_obs::set_sink(std::sync::Arc::new(eadrl_obs::NoopSink));

    assert!(
        forecast.is_finite(),
        "gap in history leaked into the output"
    );
    let sanitize_events = sink.events_named("eadrl.sanitize");
    assert!(
        !sanitize_events.is_empty(),
        "history repair must be visible in telemetry"
    );
}

#[test]
fn fit_panic_drops_the_offender_and_keeps_serving() {
    quiet_expected_panics();
    let series = seasonal_series(TRAIN_LEN + 10);
    let mut pool = healthy_pool();
    pool.push(Box::new(FitBomb));

    let mut model = EaDrl::new(pool, fast_config());
    model
        .fit(&series[..TRAIN_LEN])
        .expect("fit survives a member's panic");
    assert_eq!(model.n_models(), 3, "only the bomb is dropped");
    assert!(
        model
            .dropped_models()
            .iter()
            .any(|name| name.contains("FitBomb")),
        "drop report must name the panicking member: {:?}",
        model.dropped_models()
    );

    let mut history = series[..TRAIN_LEN].to_vec();
    for &actual in &series[TRAIN_LEN..] {
        assert!(model.predict_next(&history).is_finite());
        history.push(actual);
    }
}

#[test]
fn total_member_outage_falls_back_instead_of_crashing() {
    quiet_expected_panics();
    let series = seasonal_series(TRAIN_LEN + 6);
    // Every member dead during serving: the documented behaviour is the
    // history fallback, not a panic and not NaN.
    let pool: Vec<Box<dyn Forecaster>> = vec![
        Box::new(NanFromLen {
            from_len: TRAIN_LEN,
        }),
        Box::new(PanicBurst {
            from_len: TRAIN_LEN,
            burst: 100,
        }),
    ];
    let mut model = EaDrl::new(pool, fast_config());
    model.fit(&series[..TRAIN_LEN]).expect("fit");

    let mut history = series[..TRAIN_LEN].to_vec();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut forecasts = Vec::new();
        for &actual in &series[TRAIN_LEN..] {
            forecasts.push(model.predict_next(&history));
            history.push(actual);
        }
        forecasts
    }));
    let forecasts = outcome.expect("total outage must not escape as a panic");
    assert!(
        forecasts.iter().all(|f| f.is_finite()),
        "outage fallback leaked non-finite forecasts: {forecasts:?}"
    );
}
